//! Axis-aligned bounding boxes (the paper's "3D cuboid objects").

use crate::{Vec3, EPSILON};

/// An axis-aligned box, RABIT's canonical device shape.
///
/// The paper models "each device on the experiment deck as a 3D cuboid
/// object" (Fig. 3). The pilot-study participant noted this is a
/// simplification (a centrifuge resembles a hemisphere); RABIT errs on the
/// side of safety by using a bounding cuboid.
///
/// # Example
///
/// ```
/// use rabit_geometry::{Aabb, Vec3};
///
/// let hotplate = Aabb::new(Vec3::new(0.3, 0.3, 0.0), Vec3::new(0.5, 0.5, 0.15));
/// assert!(hotplate.contains_point(Vec3::new(0.4, 0.4, 0.1)));
/// assert!(!hotplate.contains_point(Vec3::new(0.4, 0.4, 0.2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from two opposite corners. Corners may be given in any
    /// order; they are normalized so `min ≤ max` component-wise.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box from its center and half-extents.
    ///
    /// # Panics
    ///
    /// Panics if any half-extent is negative.
    pub fn from_center_half_extents(center: Vec3, half: Vec3) -> Self {
        assert!(
            half.x >= 0.0 && half.y >= 0.0 && half.z >= 0.0,
            "half-extents must be non-negative, got {half}"
        );
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half-extents along each axis.
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Full size along each axis.
    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Returns `true` if the two boxes overlap (touching counts).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Returns `true` if `other` lies entirely inside `self` (shared
    /// boundary counts as contained).
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.min.z <= other.min.z
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
            && self.max.z >= other.max.z
    }

    /// The closest point inside the box to `p` (is `p` itself when
    /// `p` is inside).
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Euclidean distance from `p` to the box (0 when inside).
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        (p - self.closest_point(p)).norm()
    }

    /// Euclidean gap between two boxes (0 when they overlap or touch).
    ///
    /// A lower bound on the distance between any shapes the boxes
    /// enclose, which makes it a cheap prefilter before exact
    /// narrow-phase distance evaluations.
    pub fn distance_to(&self, other: &Aabb) -> f64 {
        let gap = |lo_a: f64, hi_a: f64, lo_b: f64, hi_b: f64| (lo_b - hi_a).max(lo_a - hi_b);
        let dx = gap(self.min.x, self.max.x, other.min.x, other.max.x).max(0.0);
        let dy = gap(self.min.y, self.max.y, other.min.y, other.max.y).max(0.0);
        let dz = gap(self.min.z, self.max.z, other.min.z, other.max.z).max(0.0);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Returns this box grown by `margin` on every side.
    ///
    /// The held-object extension from the paper (§IV, category 4 — after
    /// Bug D, RABIT was "modified to account that a robot arm's dimensions
    /// may change if it is holding an object") is implemented by inflating
    /// link/box geometry by the held object's extent.
    ///
    /// # Panics
    ///
    /// Panics if `margin` would make the box inside-out
    /// (i.e. `margin < -min(half_extents)`).
    pub fn inflated(&self, margin: f64) -> Aabb {
        let half = self.half_extents() + Vec3::splat(margin);
        assert!(
            half.x >= 0.0 && half.y >= 0.0 && half.z >= 0.0,
            "inflation margin {margin} makes the box inside-out"
        );
        Aabb::from_center_half_extents(self.center(), half)
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Intersects a parametric ray/segment `origin + t * dir`, `t ∈ [0, t_max]`,
    /// with the box (slab method). Returns the entry parameter `t` if the
    /// segment hits the box.
    pub fn intersect_segment(&self, origin: Vec3, dir: Vec3, t_max: f64) -> Option<f64> {
        let mut t_enter: f64 = 0.0;
        let mut t_exit: f64 = t_max;
        for axis in 0..3 {
            let o = origin[axis];
            let d = dir[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d.abs() < EPSILON {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut t0, mut t1) = ((lo - o) * inv, (hi - o) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_enter = t_enter.max(t0);
                t_exit = t_exit.min(t1);
                if t_enter > t_exit {
                    return None;
                }
            }
        }
        Some(t_enter)
    }

    /// The eight corner points of the box.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

impl rabit_util::ToJson for Aabb {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::obj([
            ("min", rabit_util::ToJson::to_json(&self.min)),
            ("max", rabit_util::ToJson::to_json(&self.max)),
        ])
    }
}

impl rabit_util::FromJson for Aabb {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        Ok(Aabb::new(
            rabit_util::json::field(json, "min")?,
            rabit_util::json::field(json, "max")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(1.0))
    }

    #[test]
    fn box_to_box_distance() {
        let a = unit_box();
        // Overlapping and touching boxes have zero gap.
        assert_eq!(a.distance_to(&a), 0.0);
        let touching = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert_eq!(a.distance_to(&touching), 0.0);
        // Axis-aligned gap.
        let along_x = Aabb::new(Vec3::new(3.0, 0.0, 0.0), Vec3::new(4.0, 1.0, 1.0));
        assert!((a.distance_to(&along_x) - 2.0).abs() < 1e-12);
        // Diagonal gap of (1, 1, 1) between nearest corners.
        let diagonal = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!((a.distance_to(&diagonal) - 3.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.distance_to(&diagonal), diagonal.distance_to(&a));
    }

    #[test]
    fn corner_order_is_normalized() {
        let a = Aabb::new(Vec3::splat(1.0), Vec3::ZERO);
        assert_eq!(a.min(), Vec3::ZERO);
        assert_eq!(a.max(), Vec3::splat(1.0));
    }

    #[test]
    fn center_and_extents() {
        let a = Aabb::from_center_half_extents(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(a.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(a.half_extents(), Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(a.size(), Vec3::new(1.0, 2.0, 3.0));
        assert!((a.volume() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_half_extents_panic() {
        let _ = Aabb::from_center_half_extents(Vec3::ZERO, Vec3::new(-0.1, 0.1, 0.1));
    }

    #[test]
    fn point_containment() {
        let b = unit_box();
        assert!(b.contains_point(Vec3::splat(0.5)));
        assert!(b.contains_point(Vec3::ZERO)); // boundary
        assert!(!b.contains_point(Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn box_intersection() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        let c = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching faces count as intersecting.
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn aabb_containment() {
        let a = unit_box();
        assert!(a.contains_aabb(&a)); // boundary counts
        assert!(a.contains_aabb(&Aabb::new(Vec3::splat(0.2), Vec3::splat(0.8))));
        // Overlapping but poking out on one axis.
        assert!(!a.contains_aabb(&Aabb::new(Vec3::splat(0.5), Vec3::new(0.9, 1.2, 0.9))));
        assert!(!a.contains_aabb(&Aabb::new(Vec3::splat(-0.1), Vec3::splat(0.5))));
        assert!(!a.contains_aabb(&Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0))));
    }

    #[test]
    fn closest_point_and_distance() {
        let b = unit_box();
        assert_eq!(b.closest_point(Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(
            b.closest_point(Vec3::new(2.0, 0.5, 0.5)),
            Vec3::new(1.0, 0.5, 0.5)
        );
        assert!((b.distance_to_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-12);
        assert_eq!(b.distance_to_point(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn inflation_grows_box() {
        let b = unit_box().inflated(0.1);
        assert!((b.min() - Vec3::splat(-0.1)).norm() < 1e-12);
        assert!((b.max() - Vec3::splat(1.1)).norm() < 1e-12);
        // Deflation is allowed while it keeps the box valid.
        let s = unit_box().inflated(-0.25);
        assert!((s.size() - Vec3::splat(0.5)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inside-out")]
    fn over_deflation_panics() {
        let _ = unit_box().inflated(-0.6);
    }

    #[test]
    fn union_covers_both() {
        let a = unit_box();
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert_eq!(u.min(), Vec3::ZERO);
        assert_eq!(u.max(), Vec3::splat(3.0));
    }

    #[test]
    fn segment_intersection_hits_and_misses() {
        let b = unit_box();
        // Straight through the middle along X.
        let t = b
            .intersect_segment(Vec3::new(-1.0, 0.5, 0.5), Vec3::X, 3.0)
            .unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        // Starting inside: entry at t = 0.
        let t = b.intersect_segment(Vec3::splat(0.5), Vec3::X, 3.0).unwrap();
        assert_eq!(t, 0.0);
        // Parallel miss.
        assert!(b
            .intersect_segment(Vec3::new(-1.0, 2.0, 0.5), Vec3::X, 3.0)
            .is_none());
        // Too short to reach.
        assert!(b
            .intersect_segment(Vec3::new(-1.0, 0.5, 0.5), Vec3::X, 0.5)
            .is_none());
    }

    #[test]
    fn corners_are_all_distinct_and_contained() {
        let b = unit_box();
        let cs = b.corners();
        for (i, c) in cs.iter().enumerate() {
            assert!(b.contains_point(*c));
            for other in cs.iter().skip(i + 1) {
                assert_ne!(c, other);
            }
        }
    }
}
