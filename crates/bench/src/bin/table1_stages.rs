//! Regenerates Table I: "Comparing the capabilities of RABIT's three
//! stages" — quantified on the reference workflow and the 16-bug suite,
//! measured through the `table1_speed`/`table1_risk`/`table1_placement`
//! campaign plans (see `rabit_campaign::plans`).

use rabit_bench::report::render_table;
use rabit_bench::stages::profile_all;

fn main() {
    println!("Table I — capabilities of RABIT's three stages (measured analog)");
    println!("(campaign plans: table1_speed, table1_risk, table1_placement)\n");
    let profiles = profile_all();
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            vec![
                p.stage.name().to_string(),
                format!("{:.2}", p.commands_per_second),
                format!("{:.1}", p.precision_sigma_m * 1000.0),
                format!("{:.1}", p.measured_placement_error_m * 1000.0),
                format!("{:.3}", p.timing_fidelity),
                format!("{:.0}", p.unguarded_risk_cost),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Stage",
                "Exploration speed (cmd/s)",
                "Arm repeatability σ (mm)",
                "Measured placement error (mm)",
                "Timing fidelity (×prod)",
                "Unguarded damage risk (cost)",
            ],
            &rows,
        )
    );
    println!("Paper's qualitative row → measured column:");
    println!("  Speed of exploration  High/Medium/Low  → cmd/s decreasing down the table");
    println!(
        "  Device precision      Low/Medium/High  → σ: 0 is idealised, production best physical"
    );
    println!("  Accuracy of results   Low/Medium/High  → timing fidelity approaching 1.0");
    println!("  Risk of damage        Low/Medium/High  → damage cost increasing down the table");
}
