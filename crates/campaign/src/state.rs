//! Per-trial persistent state: the explicit lifecycle state machine and
//! its on-disk JSON representation.
//!
//! Every trial advances `Pending → Running → Done | Failed`, or
//! `Pending → Skipped` when the plan's skip list excludes it. The
//! runner persists one state file per trial; a resumed campaign reads
//! them back, keeps `Done`/`Skipped` trials, and resets anything else
//! (including corrupt files) to `Pending`.
//!
//! Determinism contract: [`TrialResult`] holds *only* fields that are a
//! pure function of the plan — simulated clocks, alerts, damage, cache
//! counters. Real wall-clock timing lives in [`TrialState::wall_ms`],
//! outside the result, and is excluded from merged artifacts so
//! kill-and-resume runs stay bit-identical.
//!
//! Trial seeds are full-width `u64`s but this JSON layer carries
//! numbers as `f64`, so seeds are serialized as fixed-width hex strings
//! to survive the round trip exactly.

use rabit_util::json::field;
use rabit_util::{Json, JsonError, ToJson};

/// The schema tag carried by serialized trial states.
pub const TRIAL_SCHEMA: &str = "rabit.campaign.trial/v1";

/// A trial's lifecycle position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialStatus {
    /// Materialized, not yet started.
    Pending,
    /// Claimed by a worker; a run that dies here was interrupted.
    Running,
    /// Finished with a result.
    Done,
    /// The trial's job panicked.
    Failed,
    /// Excluded by the plan's skip list.
    Skipped,
}

impl TrialStatus {
    /// The canonical string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            TrialStatus::Pending => "pending",
            TrialStatus::Running => "running",
            TrialStatus::Done => "done",
            TrialStatus::Failed => "failed",
            TrialStatus::Skipped => "skipped",
        }
    }

    /// Parses the canonical string form.
    ///
    /// # Errors
    ///
    /// Returns a decode error for an unrecognized status string.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        match text {
            "pending" => Ok(TrialStatus::Pending),
            "running" => Ok(TrialStatus::Running),
            "done" => Ok(TrialStatus::Done),
            "failed" => Ok(TrialStatus::Failed),
            "skipped" => Ok(TrialStatus::Skipped),
            other => Err(JsonError::decode(format!("unknown trial status '{other}'"))),
        }
    }

    /// Whether the state machine permits `self → next`.
    ///
    /// `Pending` may start (`Running`) or be excluded (`Skipped`);
    /// `Running` may finish (`Done`/`Failed`). `Done`, `Failed`, and
    /// `Skipped` are terminal — a resumed campaign re-runs a `Failed`
    /// or interrupted trial by resetting it to `Pending` with a fresh
    /// attempt count, never by mutating a terminal state in place.
    pub fn can_transition(&self, next: TrialStatus) -> bool {
        matches!(
            (self, next),
            (TrialStatus::Pending, TrialStatus::Running)
                | (TrialStatus::Pending, TrialStatus::Skipped)
                | (TrialStatus::Running, TrialStatus::Done)
                | (TrialStatus::Running, TrialStatus::Failed)
        )
    }

    /// Whether this status survives a resume untouched.
    pub fn is_terminal_success(&self) -> bool {
        matches!(self, TrialStatus::Done | TrialStatus::Skipped)
    }
}

/// The deterministic outcome of one executed trial — every field is a
/// pure function of the campaign plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The workflow spec string (`fig5_safe`, `bug:<id>`, …).
    pub workflow: String,
    /// The instantiated substrate's name.
    pub substrate: String,
    /// The deployment stage name.
    pub stage: String,
    /// The execution mode (`guarded`/`unguarded`).
    pub mode: String,
    /// The fault variant string (`none`/`fault:<family>`).
    pub fault: String,
    /// `completed` or `blocked` (halted by an alert).
    pub outcome: String,
    /// The alert headline that halted the run, if any.
    pub alert: Option<String>,
    /// Whether the alert was a RABIT detection (vs. a device fault).
    pub detected: bool,
    /// Whether the run surfaced a device fault instead of a detection.
    pub device_fault: bool,
    /// Commands the lab actually executed.
    pub executed: usize,
    /// Simulated lab time (seconds) — virtual clock, deterministic.
    pub lab_time_s: f64,
    /// RABIT's simulated checking overhead (seconds).
    pub rabit_overhead_s: f64,
    /// Severity labels of the ground-truth damage log, in event order.
    pub damage: Vec<String>,
    /// Faults the lab's fault runtime actually injected.
    pub faults_injected: u64,
    /// Validator verdict-cache hits.
    pub cache_hits: u64,
    /// Validator verdict-cache misses.
    pub cache_misses: u64,
    /// Trajectory grid samples collision-checked.
    pub samples_checked: u64,
    /// Grid samples the adaptive sweep kernel skipped.
    pub samples_skipped: u64,
    /// Signed-distance evaluations issued for skip decisions.
    pub distance_queries: u64,
    /// Distance (m) between commanded and achieved arm pose, for
    /// placement-precision trials.
    pub placement_error_m: Option<f64>,
}

impl ToJson for TrialResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("workflow", Json::Str(self.workflow.clone())),
            ("substrate", Json::Str(self.substrate.clone())),
            ("stage", Json::Str(self.stage.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("fault", Json::Str(self.fault.clone())),
            ("outcome", Json::Str(self.outcome.clone())),
            ("alert", self.alert.to_json()),
            ("detected", Json::Bool(self.detected)),
            ("device_fault", Json::Bool(self.device_fault)),
            ("executed", self.executed.to_json()),
            ("lab_time_s", Json::Num(self.lab_time_s)),
            ("rabit_overhead_s", Json::Num(self.rabit_overhead_s)),
            ("damage", self.damage.to_json()),
            ("faults_injected", self.faults_injected.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("samples_checked", self.samples_checked.to_json()),
            ("samples_skipped", self.samples_skipped.to_json()),
            ("distance_queries", self.distance_queries.to_json()),
            ("placement_error_m", self.placement_error_m.to_json()),
        ])
    }
}

impl rabit_util::FromJson for TrialResult {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TrialResult {
            workflow: field(json, "workflow")?,
            substrate: field(json, "substrate")?,
            stage: field(json, "stage")?,
            mode: field(json, "mode")?,
            fault: field(json, "fault")?,
            outcome: field(json, "outcome")?,
            alert: field(json, "alert")?,
            detected: field(json, "detected")?,
            device_fault: field(json, "device_fault")?,
            executed: field(json, "executed")?,
            lab_time_s: field(json, "lab_time_s")?,
            rabit_overhead_s: field(json, "rabit_overhead_s")?,
            damage: field(json, "damage")?,
            faults_injected: field(json, "faults_injected")?,
            cache_hits: field(json, "cache_hits")?,
            cache_misses: field(json, "cache_misses")?,
            samples_checked: field(json, "samples_checked")?,
            samples_skipped: field(json, "samples_skipped")?,
            distance_queries: field(json, "distance_queries")?,
            placement_error_m: field(json, "placement_error_m")?,
        })
    }
}

/// One trial's persisted state: the state-machine position plus (for
/// `Done`) the deterministic result. This is exactly what a per-trial
/// state file holds.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialState {
    /// The trial's stable id (also the state file's stem).
    pub trial_id: String,
    /// Fingerprint of the plan this state belongs to; a mismatch means
    /// the directory is being resumed under a different plan.
    pub plan_fingerprint: String,
    /// The state-machine position.
    pub status: TrialStatus,
    /// The trial's plan-derived seed.
    pub seed: u64,
    /// How many times this trial has been started (1 on first run;
    /// resumes after interruption or corruption increment it).
    pub attempt: usize,
    /// Real wall-clock execution time (ms). Non-deterministic; never
    /// merged into artifacts.
    pub wall_ms: Option<f64>,
    /// The outcome, present exactly when `status` is `Done`.
    pub result: Option<TrialResult>,
}

impl TrialState {
    /// A fresh `Pending` state for a materialized trial.
    pub fn pending(trial_id: &str, plan_fingerprint: &str, seed: u64) -> Self {
        TrialState {
            trial_id: trial_id.to_string(),
            plan_fingerprint: plan_fingerprint.to_string(),
            status: TrialStatus::Pending,
            seed,
            attempt: 0,
            wall_ms: None,
            result: None,
        }
    }

    /// Advances the state machine, panicking in debug builds on an
    /// illegal transition (the runner only requests legal ones).
    pub fn advance(&mut self, next: TrialStatus) {
        debug_assert!(
            self.status.can_transition(next),
            "illegal trial transition {} -> {}",
            self.status.as_str(),
            next.as_str()
        );
        self.status = next;
    }
}

impl ToJson for TrialState {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(TRIAL_SCHEMA.to_string())),
            ("trial_id", Json::Str(self.trial_id.clone())),
            ("plan_fingerprint", Json::Str(self.plan_fingerprint.clone())),
            ("status", Json::Str(self.status.as_str().to_string())),
            ("seed", Json::Str(format!("{:016x}", self.seed))),
            ("attempt", self.attempt.to_json()),
            ("wall_ms", self.wall_ms.to_json()),
            (
                "result",
                match &self.result {
                    Some(r) => r.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl rabit_util::FromJson for TrialState {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema: String = field(json, "schema")?;
        if schema != TRIAL_SCHEMA {
            return Err(JsonError::decode(format!(
                "unsupported trial schema '{schema}' (expected '{TRIAL_SCHEMA}')"
            )));
        }
        let status_text: String = field(json, "status")?;
        let status = TrialStatus::parse(&status_text)?;
        let seed_hex: String = field(json, "seed")?;
        let seed = u64::from_str_radix(&seed_hex, 16)
            .map_err(|_| JsonError::decode(format!("invalid seed hex '{seed_hex}'")))?;
        let result: Option<TrialResult> = field(json, "result")?;
        if status == TrialStatus::Done && result.is_none() {
            return Err(JsonError::decode(
                "trial state is 'done' but carries no result",
            ));
        }
        Ok(TrialState {
            trial_id: field(json, "trial_id")?,
            plan_fingerprint: field(json, "plan_fingerprint")?,
            status,
            seed,
            attempt: field(json, "attempt")?,
            wall_ms: field(json, "wall_ms")?,
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_util::FromJson;

    fn sample_result() -> TrialResult {
        TrialResult {
            workflow: "bug:bug_a_door_not_reopened".into(),
            substrate: "testbed:testbed:modified".into(),
            stage: "Testbed".into(),
            mode: "guarded".into(),
            fault: "none".into(),
            outcome: "blocked".into(),
            alert: Some("door violation".into()),
            detected: true,
            device_fault: false,
            executed: 3,
            lab_time_s: 12.5,
            rabit_overhead_s: 0.75,
            damage: vec!["High".into()],
            faults_injected: 0,
            cache_hits: 4,
            cache_misses: 2,
            samples_checked: 120,
            samples_skipped: 80,
            distance_queries: 16,
            placement_error_m: None,
        }
    }

    #[test]
    fn state_round_trips_including_full_width_seeds() {
        let mut state = TrialState::pending("t0000-x", "deadbeefdeadbeef", u64::MAX - 17);
        state.attempt = 2;
        state.advance(TrialStatus::Running);
        state.advance(TrialStatus::Done);
        state.result = Some(sample_result());
        state.wall_ms = Some(3.25);
        let text = state.to_json().to_pretty();
        let back = TrialState::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.seed, u64::MAX - 17, "hex seeds survive f64 JSON");
    }

    #[test]
    fn transition_rules_enforced() {
        use TrialStatus::*;
        let legal = [
            (Pending, Running),
            (Pending, Skipped),
            (Running, Done),
            (Running, Failed),
        ];
        for status in [Pending, Running, Done, Failed, Skipped] {
            for next in [Pending, Running, Done, Failed, Skipped] {
                assert_eq!(
                    status.can_transition(next),
                    legal.contains(&(status, next)),
                    "{} -> {}",
                    status.as_str(),
                    next.as_str()
                );
            }
        }
    }

    #[test]
    fn done_without_result_is_rejected() {
        let mut state = TrialState::pending("t0001-y", "fp", 9);
        state.advance(TrialStatus::Running);
        state.advance(TrialStatus::Done);
        state.result = Some(sample_result());
        let mut json = state.to_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "result" {
                    *v = Json::Null;
                }
            }
        }
        let err = TrialState::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("no result"), "{err}");
    }

    #[test]
    fn wrong_schema_and_bad_fields_are_rejected() {
        let state = TrialState::pending("t0002-z", "fp", 1);
        let mut json = state.to_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Json::Str("rabit.campaign.trial/v9".into());
                }
            }
        }
        assert!(TrialState::from_json(&json).is_err());

        let mut json = state.to_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "status" {
                    *v = Json::Str("zombie".into());
                }
            }
        }
        assert!(TrialState::from_json(&json).is_err());

        let mut json = state.to_json();
        if let Json::Obj(pairs) = &mut json {
            for (k, v) in pairs.iter_mut() {
                if k == "seed" {
                    *v = Json::Str("not-hex".into());
                }
            }
        }
        assert!(TrialState::from_json(&json).is_err());
    }
}
