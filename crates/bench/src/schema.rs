//! The shared envelope for `BENCH_*.json` artifacts.
//!
//! Every benchmark binary that persists results writes one JSON file with
//! the same top-level shape, so downstream tooling (the README perf
//! table, the CI schema check) can consume any artifact without knowing
//! which bench produced it:
//!
//! ```json
//! {
//!   "name": "sweep",
//!   "config": { "quick_mode": false, "laps": 24 },
//!   "results": { "...": "bench-specific payload" }
//! }
//! ```
//!
//! * `name` — the bench binary's name (non-empty string);
//! * `config` — the knobs the run was configured with (object);
//! * `results` — the measured payload (object);
//! * `kind` — optional envelope kind. Absent or `"bench"` means the
//!   generic payload above; `"campaign"` marks a campaign-runner
//!   artifact, whose `results` must carry a `trials` array (objects
//!   with string `trial_id` and `status`) and a `summary` object with a
//!   numeric `done` count. Unknown kinds are rejected.
//!
//! [`write_artifact`] builds and writes the envelope; [`validate`]
//! checks an already-parsed artifact (the `bench_schema` binary runs it
//! over every `BENCH_*.json` in the repository).

use rabit_util::Json;

/// Builds the `{name, config, results}` envelope.
pub fn envelope(name: &str, config: Json, results: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("config", config),
        ("results", results),
    ])
}

/// Builds the envelope with an explicit `kind` tag.
pub fn envelope_with_kind(name: &str, kind: &str, config: Json, results: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("kind", Json::Str(kind.to_string())),
        ("config", config),
        ("results", results),
    ])
}

/// Checks that `json` is a valid bench artifact envelope: a top-level
/// object carrying a non-empty string `name`, an object `config`, and an
/// object `results`. Extra top-level keys are allowed. When a `kind` tag
/// is present it is dispatched on: `"bench"` adds nothing, `"campaign"`
/// additionally validates the campaign payload, anything else fails.
pub fn validate(json: &Json) -> Result<(), String> {
    if json.as_obj().is_none() {
        return Err("top level is not an object".to_string());
    }
    match json.get("name").and_then(Json::as_str) {
        None => return Err("missing or non-string \"name\"".to_string()),
        Some("") => return Err("\"name\" is empty".to_string()),
        Some(_) => {}
    }
    for key in ["config", "results"] {
        match json.get(key) {
            None => return Err(format!("missing \"{key}\"")),
            Some(v) if v.as_obj().is_none() => return Err(format!("\"{key}\" is not an object")),
            Some(_) => {}
        }
    }
    match json.get("kind") {
        None => Ok(()),
        Some(kind) => match kind.as_str() {
            Some("bench") => Ok(()),
            Some("campaign") => {
                validate_campaign_results(json.get("results").unwrap_or(&Json::Null))
            }
            Some(other) => Err(format!("unknown envelope kind \"{other}\"")),
            None => Err("\"kind\" is not a string".to_string()),
        },
    }
}

/// The campaign-specific payload shape: `results.trials` is an array of
/// objects each carrying a string `trial_id` and `status`, and
/// `results.summary` is an object with a numeric `done`.
fn validate_campaign_results(results: &Json) -> Result<(), String> {
    let trials = match results.get("trials") {
        None => return Err("campaign artifact missing \"results.trials\"".to_string()),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| "\"results.trials\" is not an array".to_string())?,
    };
    for (i, trial) in trials.iter().enumerate() {
        if trial.as_obj().is_none() {
            return Err(format!("trial entry {i} is not an object"));
        }
        for key in ["trial_id", "status"] {
            if trial.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("trial entry {i} missing string \"{key}\""));
            }
        }
    }
    let summary = results
        .get("summary")
        .ok_or_else(|| "campaign artifact missing \"results.summary\"".to_string())?;
    if summary.as_obj().is_none() {
        return Err("\"results.summary\" is not an object".to_string());
    }
    match summary.get("done").and_then(Json::as_f64) {
        None => Err("campaign summary missing numeric \"done\"".to_string()),
        Some(_) => Ok(()),
    }
}

/// Writes the enveloped artifact to `BENCH_<name>.json` in the current
/// directory and prints the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_artifact(name: &str, config: Json, results: Json) {
    write_envelope(name, envelope(name, config, results));
}

/// Writes a kind-tagged artifact to `BENCH_<name>.json` in the current
/// directory and prints the path.
///
/// # Panics
///
/// Panics if the envelope does not validate under its kind (a bench
/// bug) or the file cannot be written.
pub fn write_artifact_with_kind(name: &str, kind: &str, config: Json, results: Json) {
    let json = envelope_with_kind(name, kind, config, results);
    if let Err(err) = validate(&json) {
        panic!("artifact {name} invalid under kind {kind}: {err}");
    }
    write_envelope(name, json);
}

fn write_envelope(name: &str, json: Json) {
    debug_assert!(
        validate(&json).is_ok(),
        "write_artifact builds valid envelopes"
    );
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, json.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_and_validates() {
        let json = envelope(
            "sweep",
            Json::obj([("quick_mode", Json::Bool(true))]),
            Json::obj([("speedup", Json::Num(5.0))]),
        );
        validate(&json).expect("fresh envelope is valid");
        let reparsed = Json::parse(&json.to_pretty()).expect("pretty output parses");
        validate(&reparsed).expect("round-tripped envelope is valid");
        assert_eq!(reparsed.get("name").and_then(Json::as_str), Some("sweep"));
    }

    #[test]
    fn validate_rejects_malformed_artifacts() {
        let cases = [
            (Json::Num(3.0), "top level"),
            (Json::obj([("config", Json::obj([]))]), "name"),
            (
                Json::obj([("name", Json::Str("x".into())), ("config", Json::obj([]))]),
                "results",
            ),
            (
                Json::obj([
                    ("name", Json::Str("x".into())),
                    ("config", Json::Num(1.0)),
                    ("results", Json::obj([])),
                ]),
                "config",
            ),
            (
                Json::obj([
                    ("name", Json::Str("".into())),
                    ("config", Json::obj([])),
                    ("results", Json::obj([])),
                ]),
                "name",
            ),
        ];
        for (json, expect) in cases {
            let err = validate(&json).expect_err("malformed artifact must fail");
            assert!(
                err.contains(expect),
                "error {err:?} should mention {expect:?}"
            );
        }
    }

    fn campaign_results() -> Json {
        Json::obj([
            (
                "summary",
                Json::obj([("trials", Json::Num(2.0)), ("done", Json::Num(2.0))]),
            ),
            (
                "trials",
                Json::Arr(vec![
                    Json::obj([
                        ("trial_id", Json::Str("t0000-a".into())),
                        ("status", Json::Str("done".into())),
                    ]),
                    Json::obj([
                        ("trial_id", Json::Str("t0001-b".into())),
                        ("status", Json::Str("skipped".into())),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn campaign_kind_validates() {
        let json = envelope_with_kind(
            "detection_matrix",
            "campaign",
            Json::obj([]),
            campaign_results(),
        );
        validate(&json).expect("well-formed campaign artifact is valid");
        // `bench` kind and no kind at all stay generic.
        let plain = envelope_with_kind("sweep", "bench", Json::obj([]), Json::obj([]));
        validate(&plain).expect("bench kind is the generic envelope");
    }

    #[test]
    fn campaign_kind_rejects_missing_trials() {
        let results = Json::obj([("summary", Json::obj([("done", Json::Num(0.0))]))]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        let err = validate(&json).unwrap_err();
        assert!(err.contains("results.trials"), "{err}");
    }

    #[test]
    fn campaign_kind_rejects_wrong_types() {
        // trials is not an array
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Num(0.0))])),
            ("trials", Json::Str("many".into())),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("not an array"));
        // a trial entry missing its status string
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Num(1.0))])),
            (
                "trials",
                Json::Arr(vec![Json::obj([
                    ("trial_id", Json::Str("t0000-a".into())),
                    ("status", Json::Num(1.0)),
                ])]),
            ),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("status"));
        // summary.done is not numeric
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Str("two".into()))])),
            ("trials", Json::Arr(vec![])),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("done"));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let json = envelope_with_kind("c", "telemetry", Json::obj([]), Json::obj([]));
        let err = validate(&json).unwrap_err();
        assert!(err.contains("unknown envelope kind"), "{err}");
        let mut bad = envelope("c", Json::obj([]), Json::obj([]));
        if let Json::Obj(pairs) = &mut bad {
            pairs.push(("kind".to_string(), Json::Num(7.0)));
        }
        assert!(validate(&bad).unwrap_err().contains("kind"));
    }
}
