//! The three-stage deployment framework end to end: the same workflow
//! and the same bugs flow through simulator-guarded, testbed, and
//! production environments.

use rabit::buginject::{false_positives, run_study, RabitStage};
use rabit::production::{solubility, ProductionDeck};
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::Tracer;

#[test]
fn detection_progression_matches_the_paper() {
    assert_eq!(run_study(RabitStage::Baseline).detected(), 8);
    assert_eq!(run_study(RabitStage::Modified).detected(), 12);
    assert_eq!(run_study(RabitStage::ModifiedWithSimulator).detected(), 13);
}

#[test]
fn zero_false_positives_everywhere() {
    for stage in [
        RabitStage::Baseline,
        RabitStage::Modified,
        RabitStage::ModifiedWithSimulator,
    ] {
        assert_eq!(false_positives(stage), 0);
    }
    // Production too: the solubility workflow is alert-free with and
    // without the simulator.
    let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());
    let mut deck = ProductionDeck::new();
    let mut rabit = deck.rabit();
    assert!(Tracer::guarded(&mut deck.lab, &mut rabit)
        .run(&wf)
        .completed());
    let mut deck = ProductionDeck::new();
    let mut rabit = deck.rabit_with_simulator(false);
    assert!(Tracer::guarded(&mut deck.lab, &mut rabit)
        .run(&wf)
        .completed());
}

#[test]
fn stage_speeds_are_ordered() {
    use rabit::devices::LatencyModel;
    let run = |latency: LatencyModel| {
        let mut tb = Testbed::with_latency(latency);
        let wf = workflows::fig5_safe_workflow(&tb.locations);
        let report = Tracer::pass_through(&mut tb.lab).run(&wf);
        assert!(report.completed());
        report.lab_time_s
    };
    let sim = run(LatencyModel::SIMULATED);
    let testbed = run(LatencyModel::TESTBED);
    let production = run(LatencyModel::PRODUCTION);
    assert!(sim < production);
    assert!(
        production <= testbed,
        "educational arms are slower per move"
    );
}

#[test]
fn simulator_stage_catches_what_target_checking_cannot() {
    // The silent-skip bug is invisible to target-only checking (stages 1
    // and 2 of the study) and caught only when the Extended Simulator
    // sweeps trajectories.
    let study_plain = run_study(RabitStage::Modified);
    let study_sim = run_study(RabitStage::ModifiedWithSimulator);
    let plain = study_plain
        .outcomes
        .iter()
        .find(|o| o.id == "silent_skip_path")
        .unwrap();
    let sim = study_sim
        .outcomes
        .iter()
        .find(|o| o.id == "silent_skip_path")
        .unwrap();
    assert!(!plain.detected && !plain.damage.is_empty());
    assert!(sim.detected && sim.damage.is_empty());
}
