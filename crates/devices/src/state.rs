//! Lab state snapshots: `S_current`, `S_expected`, `S_actual`.

use crate::id::DeviceId;
use crate::value::{StateKey, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The state of a single device: a map from state variable to value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceState {
    vars: BTreeMap<StateKey, Value>,
}

impl DeviceState {
    /// An empty device state.
    pub fn new() -> Self {
        DeviceState::default()
    }

    /// Sets a state variable (builder style).
    pub fn with(mut self, key: StateKey, value: impl Into<Value>) -> Self {
        self.vars.insert(key, value.into());
        self
    }

    /// Sets a state variable.
    pub fn set(&mut self, key: StateKey, value: impl Into<Value>) {
        self.vars.insert(key, value.into());
    }

    /// Reads a state variable.
    pub fn get(&self, key: &StateKey) -> Option<&Value> {
        self.vars.get(key)
    }

    /// Convenience: reads a boolean variable.
    pub fn get_bool(&self, key: &StateKey) -> Option<bool> {
        self.get(key).and_then(Value::as_bool)
    }

    /// Convenience: reads a numeric variable.
    pub fn get_number(&self, key: &StateKey) -> Option<f64> {
        self.get(key).and_then(Value::as_number)
    }

    /// Convenience: reads a device-reference variable. Returns
    /// `Some(None)` when the variable exists but references nothing.
    pub fn get_id(&self, key: &StateKey) -> Option<Option<&DeviceId>> {
        self.get(key).and_then(Value::as_id)
    }

    /// Iterates over all `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&StateKey, &Value)> {
        self.vars.iter()
    }

    /// Number of state variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` if no variables are set.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl FromIterator<(StateKey, Value)> for DeviceState {
    fn from_iter<I: IntoIterator<Item = (StateKey, Value)>>(iter: I) -> Self {
        DeviceState {
            vars: iter.into_iter().collect(),
        }
    }
}

impl Extend<(StateKey, Value)> for DeviceState {
    fn extend<I: IntoIterator<Item = (StateKey, Value)>>(&mut self, iter: I) {
        self.vars.extend(iter);
    }
}

/// A full lab snapshot: the state of every device. This is the `S` of the
/// Fig. 2 algorithm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabState {
    devices: BTreeMap<DeviceId, DeviceState>,
}

impl LabState {
    /// An empty lab.
    pub fn new() -> Self {
        LabState::default()
    }

    /// Inserts or replaces a device's state (builder style).
    pub fn with_device(mut self, id: impl Into<DeviceId>, state: DeviceState) -> Self {
        self.devices.insert(id.into(), state);
        self
    }

    /// Inserts or replaces a device's state.
    pub fn insert(&mut self, id: impl Into<DeviceId>, state: DeviceState) {
        self.devices.insert(id.into(), state);
    }

    /// The state of one device.
    pub fn device(&self, id: &DeviceId) -> Option<&DeviceState> {
        self.devices.get(id)
    }

    /// Mutable access to one device's state (inserted empty if missing).
    pub fn device_mut(&mut self, id: &DeviceId) -> &mut DeviceState {
        self.devices.entry(id.clone()).or_default()
    }

    /// Reads one variable of one device.
    pub fn get(&self, id: &DeviceId, key: &StateKey) -> Option<&Value> {
        self.devices.get(id).and_then(|d| d.get(key))
    }

    /// Convenience: boolean variable of a device.
    pub fn get_bool(&self, id: &DeviceId, key: &StateKey) -> Option<bool> {
        self.get(id, key).and_then(Value::as_bool)
    }

    /// Convenience: numeric variable of a device.
    pub fn get_number(&self, id: &DeviceId, key: &StateKey) -> Option<f64> {
        self.get(id, key).and_then(Value::as_number)
    }

    /// Convenience: device-reference variable of a device.
    pub fn get_id(&self, id: &DeviceId, key: &StateKey) -> Option<Option<&DeviceId>> {
        self.get(id, key).and_then(Value::as_id)
    }

    /// Sets one variable of one device.
    pub fn set(&mut self, id: &DeviceId, key: StateKey, value: impl Into<Value>) {
        self.device_mut(id).set(key, value);
    }

    /// All device ids in the snapshot, in order.
    pub fn device_ids(&self) -> impl Iterator<Item = &DeviceId> {
        self.devices.keys()
    }

    /// Iterates over `(device, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&DeviceId, &DeviceState)> {
        self.devices.iter()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the snapshot has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Overlays `reported` on top of this snapshot: every variable a
    /// device actually reports overwrites the believed value; believed
    /// variables the devices cannot sense (vial contents, containment,
    /// held objects) are retained. This is how `S_current` is rolled
    /// forward on Line 16 of the Fig. 2 algorithm in a lab where not
    /// every state variable has a sensor.
    pub fn overlay(&mut self, reported: &LabState) {
        for (device, dstate) in reported.iter() {
            let entry = self.device_mut(device);
            for (key, value) in dstate.iter() {
                entry.set(key.clone(), value.clone());
            }
        }
    }

    /// Compares expected (`self`) against the *reported* snapshot,
    /// returning a difference for every variable the devices actually
    /// report that contradicts the expectation. Believed-only variables
    /// (present in `self` but absent from `reported`) are NOT mismatches:
    /// an unsensed variable can never contradict anything — the blind
    /// spot behind the paper's undetected Bug-C class.
    pub fn diff_reported(&self, reported: &LabState, tol: f64) -> Vec<StateDiff> {
        let mut out = Vec::new();
        for (device, dstate) in reported.iter() {
            for (key, actual) in dstate.iter() {
                if let Some(expected) = self.get(device, key) {
                    if !expected.approx_eq(actual, tol) {
                        out.push(StateDiff {
                            device: device.clone(),
                            key: key.clone(),
                            left: Some(expected.clone()),
                            right: Some(actual.clone()),
                        });
                    }
                }
            }
        }
        out
    }

    /// Compares two snapshots variable-by-variable, returning every
    /// difference. An empty diff means `S_actual = S_expected`; a
    /// non-empty diff is what triggers the "Device malfunction!" alert
    /// (Fig. 2, Lines 14-15).
    ///
    /// Numeric and position values compare within `tol`; variables present
    /// on only one side are reported with `None` for the missing side.
    pub fn diff(&self, other: &LabState, tol: f64) -> Vec<StateDiff> {
        let mut out = Vec::new();
        let ids: std::collections::BTreeSet<&DeviceId> =
            self.devices.keys().chain(other.devices.keys()).collect();
        for id in ids {
            let a = self.devices.get(id);
            let b = other.devices.get(id);
            let keys: std::collections::BTreeSet<&StateKey> = a
                .map(|d| d.vars.keys().collect::<Vec<_>>())
                .unwrap_or_default()
                .into_iter()
                .chain(
                    b.map(|d| d.vars.keys().collect::<Vec<_>>())
                        .unwrap_or_default(),
                )
                .collect();
            for key in keys {
                let va = a.and_then(|d| d.get(key));
                let vb = b.and_then(|d| d.get(key));
                let equal = match (va, vb) {
                    (Some(x), Some(y)) => x.approx_eq(y, tol),
                    (None, None) => true,
                    _ => false,
                };
                if !equal {
                    out.push(StateDiff {
                        device: id.clone(),
                        key: key.clone(),
                        left: va.cloned(),
                        right: vb.cloned(),
                    });
                }
            }
        }
        out
    }
}

impl FromIterator<(DeviceId, DeviceState)> for LabState {
    fn from_iter<I: IntoIterator<Item = (DeviceId, DeviceState)>>(iter: I) -> Self {
        LabState {
            devices: iter.into_iter().collect(),
        }
    }
}

impl rabit_util::ToJson for DeviceState {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::Obj(
            self.vars
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl rabit_util::FromJson for DeviceState {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        let pairs = json.as_obj().ok_or_else(|| {
            rabit_util::JsonError::decode(format!("expected device state object, got {json}"))
        })?;
        let mut vars = BTreeMap::new();
        for (k, v) in pairs {
            let key: StateKey = k.parse().expect("StateKey parsing is infallible");
            vars.insert(key, Value::from_json(v)?);
        }
        Ok(DeviceState { vars })
    }
}

impl rabit_util::ToJson for LabState {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::Obj(
            self.devices
                .iter()
                .map(|(id, d)| (id.to_string(), d.to_json()))
                .collect(),
        )
    }
}

impl rabit_util::FromJson for LabState {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        let pairs = json.as_obj().ok_or_else(|| {
            rabit_util::JsonError::decode(format!("expected lab state object, got {json}"))
        })?;
        let mut devices = BTreeMap::new();
        for (id, d) in pairs {
            devices.insert(DeviceId::new(id.clone()), DeviceState::from_json(d)?);
        }
        Ok(LabState { devices })
    }
}

/// One differing state variable between two lab snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDiff {
    /// The device whose variable differs.
    pub device: DeviceId,
    /// The differing variable.
    pub key: StateKey,
    /// Value on the left-hand snapshot (`None` if absent).
    pub left: Option<Value>,
    /// Value on the right-hand snapshot (`None` if absent).
    pub right: Option<Value>,
}

impl fmt::Display for StateDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_opt = |v: &Option<Value>| match v {
            Some(v) => v.to_string(),
            None => "<absent>".to_string(),
        };
        write!(
            f,
            "{}.{}: {} vs {}",
            self.device,
            self.key,
            fmt_opt(&self.left),
            fmt_opt(&self.right)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn door_state(open: bool) -> DeviceState {
        DeviceState::new().with(StateKey::DoorOpen, open)
    }

    #[test]
    fn device_state_roundtrip() {
        let mut s = DeviceState::new();
        assert!(s.is_empty());
        s.set(StateKey::DoorOpen, true);
        s.set(StateKey::ActionValue, 25.0);
        s.set(StateKey::Holding, Some(DeviceId::new("vial")));
        assert_eq!(s.len(), 3);
        assert_eq!(s.get_bool(&StateKey::DoorOpen), Some(true));
        assert_eq!(s.get_number(&StateKey::ActionValue), Some(25.0));
        assert_eq!(
            s.get_id(&StateKey::Holding).unwrap().unwrap().as_str(),
            "vial"
        );
        assert_eq!(s.get(&StateKey::RedDotNorth), None);
        // Wrong-type convenience reads return None.
        assert_eq!(s.get_bool(&StateKey::ActionValue), None);
    }

    #[test]
    fn lab_state_accessors() {
        let mut lab = LabState::new();
        assert!(lab.is_empty());
        lab.insert(
            "hotplate",
            door_state(false).with(StateKey::ActionValue, 25.0),
        );
        lab.insert("doser", door_state(true));
        assert_eq!(lab.len(), 2);
        let hp = DeviceId::new("hotplate");
        assert_eq!(lab.get_bool(&hp, &StateKey::DoorOpen), Some(false));
        assert_eq!(lab.get_number(&hp, &StateKey::ActionValue), Some(25.0));
        assert_eq!(lab.device_ids().count(), 2);
        lab.set(&hp, StateKey::ActionValue, 60.0);
        assert_eq!(lab.get_number(&hp, &StateKey::ActionValue), Some(60.0));
    }

    #[test]
    fn identical_states_have_empty_diff() {
        let lab = LabState::new().with_device("d", door_state(true));
        assert!(lab.diff(&lab.clone(), 0.0).is_empty());
    }

    #[test]
    fn diff_detects_changed_value() {
        let a = LabState::new().with_device("doser", door_state(true));
        let b = LabState::new().with_device("doser", door_state(false));
        let d = a.diff(&b, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].device.as_str(), "doser");
        assert_eq!(d[0].key, StateKey::DoorOpen);
        assert_eq!(d[0].left, Some(Value::Bool(true)));
        assert_eq!(d[0].right, Some(Value::Bool(false)));
        assert!(d[0].to_string().contains("doser.deviceDoorStatus"));
    }

    #[test]
    fn diff_detects_missing_device_and_variable() {
        let a = LabState::new().with_device("doser", door_state(true));
        let b = LabState::new();
        let d = a.diff(&b, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].right, None);
        // Variable missing on one side only.
        let c = LabState::new().with_device(
            "doser",
            door_state(true).with(StateKey::ActionActive, false),
        );
        let d = a.diff(&c, 0.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].key, StateKey::ActionActive);
        assert_eq!(d[0].left, None);
    }

    #[test]
    fn diff_tolerates_numeric_jitter() {
        let a =
            LabState::new().with_device("hp", DeviceState::new().with(StateKey::ActionValue, 60.0));
        let b = LabState::new()
            .with_device("hp", DeviceState::new().with(StateKey::ActionValue, 60.004));
        assert!(a.diff(&b, 0.01).is_empty());
        assert_eq!(a.diff(&b, 0.001).len(), 1);
    }

    #[test]
    fn diff_is_antisymmetric_in_sides() {
        let a = LabState::new().with_device("d", door_state(true));
        let b = LabState::new().with_device("d", door_state(false));
        let ab = a.diff(&b, 0.0);
        let ba = b.diff(&a, 0.0);
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ab[0].left, ba[0].right);
        assert_eq!(ab[0].right, ba[0].left);
    }

    #[test]
    fn collect_from_iterators() {
        let ds: DeviceState = vec![(StateKey::DoorOpen, Value::Bool(true))]
            .into_iter()
            .collect();
        assert_eq!(ds.len(), 1);
        let lab: LabState = vec![(DeviceId::new("x"), ds)].into_iter().collect();
        assert_eq!(lab.len(), 1);
        let mut ds2 = DeviceState::new();
        ds2.extend(vec![(StateKey::ActionActive, Value::Bool(false))]);
        assert_eq!(ds2.len(), 1);
    }
}
