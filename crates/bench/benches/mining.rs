//! Real compute cost of the offline tooling: RAD corpus generation and
//! rule mining, JSON configuration validation, and script parsing.

use criterion::{criterion_group, criterion_main, Criterion};
use rabit_config::{template, to_catalog, validate, LabConfig};
use rabit_rad::{generate_corpus, mine, MineParams, RadGenParams};
use rabit_tracer::{parse_script, AliasTable};
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let params = RadGenParams {
        sessions: 100,
        ..RadGenParams::default()
    };
    let corpus = generate_corpus(&params);

    let mut group = c.benchmark_group("rad");
    group.bench_function("generate_100_sessions", |b| {
        b.iter(|| black_box(generate_corpus(black_box(&params))))
    });
    group.bench_function("mine_100_sessions", |b| {
        b.iter(|| black_box(mine(black_box(&corpus), &MineParams::default())))
    });
    group.finish();
}

fn bench_config(c: &mut Criterion) {
    let json = template::testbed_template_json();
    let config = template::testbed_template();

    let mut group = c.benchmark_group("config");
    group.bench_function("parse_testbed_json", |b| {
        b.iter(|| black_box(LabConfig::from_json(black_box(&json)).unwrap()))
    });
    group.bench_function("validate_testbed", |b| {
        b.iter(|| black_box(validate(black_box(&config))))
    });
    group.bench_function("to_catalog_testbed", |b| {
        b.iter(|| black_box(to_catalog(black_box(&config)).unwrap()))
    });
    group.finish();
}

fn bench_script(c: &mut Criterion) {
    let aliases = AliasTable::standard();
    let script: String = (0..100)
        .map(|i| format!("viperx.move_pose(0.{i:02}, 0.1, 0.3)\n"))
        .collect();

    let mut group = c.benchmark_group("script");
    group.bench_function("parse_100_lines", |b| {
        b.iter(|| black_box(parse_script("bench", black_box(&script), &aliases).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_mining, bench_config, bench_script);
criterion_main!(benches);
