//! Property-based tests over the device-state layer.
//!
//! Hand-rolled property loops over the in-tree seeded PRNG — each
//! property runs `CASES` deterministic cases.

use rabit_devices::{DeviceId, DeviceState, LabState, StateKey, Value, Vial};
use rabit_geometry::Vec3;
use rabit_util::{FromJson, Json, Rng, ToJson};

const CASES: usize = 256;

fn lowercase_name(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.random_range(1..max_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u32) as u8) as char)
        .collect()
}

fn state_key(rng: &mut Rng) -> StateKey {
    match rng.random_range(0..8u32) {
        0 => StateKey::DoorOpen,
        1 => StateKey::ActionActive,
        2 => StateKey::ActionValue,
        3 => StateKey::SolidMg,
        4 => StateKey::LiquidMl,
        5 => StateKey::HasStopper,
        6 => StateKey::AtSleep,
        _ => StateKey::Custom(lowercase_name(rng, 8)),
    }
}

fn value(rng: &mut Rng) -> Value {
    match rng.random_range(0..4u32) {
        0 => Value::Bool(rng.random_bool(0.5)),
        1 => Value::Number(rng.random_range(-1e3..1e3)),
        2 => Value::Position(Vec3::new(
            rng.random_range(-2.0..2.0),
            rng.random_range(-2.0..2.0),
            rng.random_range(0.0..2.0),
        )),
        _ => {
            if rng.random_bool(0.5) {
                Value::Id(None)
            } else {
                Value::Id(Some(DeviceId::new(lowercase_name(rng, 6))))
            }
        }
    }
}

fn device_state(rng: &mut Rng) -> DeviceState {
    let n = rng.random_range(0..6usize);
    (0..n).map(|_| (state_key(rng), value(rng))).collect()
}

fn lab_state(rng: &mut Rng) -> LabState {
    let n = rng.random_range(0..5usize);
    (0..n)
        .map(|_| (DeviceId::new(lowercase_name(rng, 6)), device_state(rng)))
        .collect()
}

/// Overlay semantics: every reported variable wins; everything else is
/// retained.
#[test]
fn overlay_reported_wins_and_rest_is_retained() {
    let mut rng = Rng::seed_from_u64(101);
    for _ in 0..CASES {
        let believed = lab_state(&mut rng);
        let reported = lab_state(&mut rng);
        let mut merged = believed.clone();
        merged.overlay(&reported);
        // Reported values are present verbatim.
        for (dev, st) in reported.iter() {
            for (key, val) in st.iter() {
                assert_eq!(merged.get(dev, key), Some(val));
            }
        }
        // Believed-only values survive.
        for (dev, st) in believed.iter() {
            for (key, val) in st.iter() {
                if reported.get(dev, key).is_none() {
                    assert_eq!(merged.get(dev, key), Some(val));
                }
            }
        }
    }
}

/// A snapshot never contradicts itself, at any tolerance.
#[test]
fn self_diff_is_empty() {
    let mut rng = Rng::seed_from_u64(102);
    for _ in 0..CASES {
        let state = lab_state(&mut rng);
        let tol = rng.random_range(0.0..1.0);
        assert!(state.diff_reported(&state, tol).is_empty());
        assert!(state.diff(&state, tol).is_empty());
    }
}

/// `diff_reported` only ever cites variables the reported side has, and
/// loosening the tolerance never creates new findings.
#[test]
fn diff_reported_is_sound_and_monotone() {
    let mut rng = Rng::seed_from_u64(103);
    for _ in 0..CASES {
        let expected = lab_state(&mut rng);
        let reported = lab_state(&mut rng);
        let tol = rng.random_range(0.0..0.5);
        let strict = expected.diff_reported(&reported, tol);
        for d in &strict {
            assert!(reported.get(&d.device, &d.key).is_some());
            assert!(expected.get(&d.device, &d.key).is_some());
        }
        let loose = expected.diff_reported(&reported, tol + 0.5);
        assert!(loose.len() <= strict.len());
    }
}

/// Overlaying the reported snapshot resolves every reported discrepancy:
/// the merged state agrees with the report.
#[test]
fn overlay_resolves_all_reported_diffs() {
    let mut rng = Rng::seed_from_u64(104);
    for _ in 0..CASES {
        let expected = lab_state(&mut rng);
        let reported = lab_state(&mut rng);
        let mut merged = expected.clone();
        merged.overlay(&reported);
        assert!(merged.diff_reported(&reported, 0.0).is_empty());
    }
}

/// LabState survives a JSON round trip (up to sub-nanometre float drift
/// near decimal ties).
#[test]
fn lab_state_json_roundtrip() {
    let mut rng = Rng::seed_from_u64(105);
    for _ in 0..CASES {
        let state = lab_state(&mut rng);
        let json = state.to_json().to_compact();
        let back = LabState::from_json(&Json::parse(&json).unwrap()).unwrap();
        let diffs = back.diff(&state, 1e-9);
        assert!(diffs.is_empty(), "roundtrip drift: {diffs:?}");
    }
}

/// Vial contents conservation: arbitrary add/take sequences keep the
/// contents within [0, capacity], and every gram is accounted for.
#[test]
fn vial_contents_are_conserved() {
    let mut rng = Rng::seed_from_u64(106);
    for _ in 0..CASES {
        let mut vial = Vial::new("v", Vec3::ZERO).with_capacities(10.0, 20.0);
        let mut ledger = 0.0; // what we believe is inside
        let ops = rng.random_range(1..40usize);
        for _ in 0..ops {
            let add = rng.random_bool(0.5);
            let amount = rng.random_range(0.0..30.0);
            if add {
                let spilled = vial.add_solid(amount);
                assert!(spilled >= 0.0 && spilled <= amount + 1e-9);
                ledger += amount - spilled;
            } else {
                let taken = vial.take_solid(amount);
                assert!(taken >= 0.0 && taken <= amount + 1e-9);
                ledger -= taken;
            }
            assert!((vial.solid_mg() - ledger).abs() < 1e-6);
            assert!(vial.solid_mg() >= -1e-9);
            assert!(vial.solid_mg() <= 10.0 + 1e-9);
        }
    }
}
