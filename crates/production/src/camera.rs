//! The imaging camera used by the solubility measurement.
//!
//! `recordImage()` / `measureSolubility(image)` in Fig. 1(b). The camera
//! is not one of the four device types — it demonstrates RABIT's custom
//! device-category escape hatch (§II-C: labs "can define … new device
//! categories, if they have devices that do not belong to any of the four
//! specified device types").

use rabit_devices::{
    ActionKind, Device, DeviceError, DeviceId, DeviceState, DeviceType, LatencyModel,
};

/// A fixed overhead camera.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    id: DeviceId,
    images_taken: u64,
}

/// The camera's custom action name.
pub const RECORD_IMAGE: &str = "record_image";

impl Camera {
    /// Creates a camera.
    pub fn new(id: impl Into<DeviceId>) -> Self {
        Camera {
            id: id.into(),
            images_taken: 0,
        }
    }

    /// Number of images captured so far.
    pub fn images_taken(&self) -> u64 {
        self.images_taken
    }
}

impl Device for Camera {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::Custom("camera".to_string())
    }

    fn fetch_state(&self) -> DeviceState {
        // The image counter is deliberately not a state variable: custom
        // actions have no generic postconditions (§V-C), so exposing it
        // would trip the malfunction check on every capture.
        DeviceState::new()
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::Custom { name, .. } if name == RECORD_IMAGE => {
                self.images_taken += 1;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn latency(&self) -> LatencyModel {
        LatencyModel {
            motion_s: 0.0,
            process_s: 0.5,
            status_s: 0.005,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_increment_the_counter() {
        let mut cam = Camera::new("camera");
        assert_eq!(cam.images_taken(), 0);
        cam.execute(&ActionKind::Custom {
            name: RECORD_IMAGE.to_string(),
            params: vec![],
        })
        .unwrap();
        cam.execute(&ActionKind::Custom {
            name: RECORD_IMAGE.to_string(),
            params: vec![],
        })
        .unwrap();
        assert_eq!(cam.images_taken(), 2);
    }

    #[test]
    fn rejects_other_actions() {
        let mut cam = Camera::new("camera");
        assert!(cam.execute(&ActionKind::MoveHome).is_err());
        assert!(cam
            .execute(&ActionKind::Custom {
                name: "zoom".to_string(),
                params: vec![]
            })
            .is_err());
    }

    #[test]
    fn state_is_sensorless() {
        let cam = Camera::new("camera");
        assert!(cam.fetch_state().is_empty());
        assert_eq!(cam.device_type(), DeviceType::Custom("camera".to_string()));
        assert!(cam.footprint().is_none());
    }
}
