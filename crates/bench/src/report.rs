//! Plain-text table rendering shared by the harness binaries.

/// Renders rows as a fixed-width table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A check/cross mark for detection columns.
pub fn mark(detected: bool) -> String {
    if detected {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["Rule", "Detected"],
            &[
                vec!["general:1".into(), "yes".into()],
                vec!["custom:11".into(), "NO".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Rule"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("general:1"));
        // Columns align: "Detected" starts at the same offset everywhere.
        let col = lines[0].find("Detected").unwrap();
        assert_eq!(&lines[2][col..col + 3], "yes");
    }

    #[test]
    fn marks() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "NO");
    }
}
