//! The live-CRUD differential suite: the rule service's epoch
//! consistency contract, end to end through real engines and fleets.
//!
//! * a validation that captured epoch *N* is unaffected by a commit
//!   publishing *N + 1*;
//! * a disabled rule stops firing on the next command (and an enabled
//!   one starts);
//! * tenants are isolated — commits to one never perturb another;
//! * broker results are identical for 1, 4, and 8 worker threads;
//! * a bounded-lane broker under forced `Overloaded` sheds + retries is
//!   receipt-identical to an unbounded baseline at 1/4/8 threads;
//! * a live fleet resolves one snapshot per `(tenant, epoch)`, not one
//!   per job;
//! * a store used with a single static epoch is bit-identical to no
//!   store at all ([`run_fleet_on`] vs [`run_fleet_on_live`]).

use rabit_core::{Lab, Stage, Substrate};
use rabit_devices::{DeviceType, DosingDevice, RobotArm, Vial};
use rabit_geometry::{Aabb, Vec3};
use rabit_rulebase::{
    DeviceCatalog, DeviceMeta, Rule, RuleId, Rulebase, RulebaseSnapshot, SnapshotSource, TenantId,
};
use rabit_service::{
    CreateRuleRequest, RuleCommand, RuleCommit, RuleOp, RuleStore, ServiceBroker, ServiceError,
    UpdateRuleRequest,
};
use rabit_tracer::{run_fleet_on, run_fleet_on_live, FleetReport, Workflow};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The closed-door rule the bug-A workflow violates.
fn door_rule() -> RuleId {
    RuleId::General(1)
}

struct MiniSubstrate;

impl Substrate for MiniSubstrate {
    fn name(&self) -> &str {
        "mini"
    }
    fn stage(&self) -> Stage {
        Stage::Simulator
    }
    fn build_lab(&self) -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }
    fn rulebase(&self) -> RulebaseSnapshot {
        Rulebase::standard().into()
    }
    fn catalog(&self) -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container))
    }
}

fn workflows() -> Vec<Workflow> {
    vec![
        Workflow::new("safe")
            .set_door("doser", true)
            .move_inside("viperx", "doser")
            .move_out("viperx")
            .set_door("doser", false),
        // Bug A shape: the door never opens — General(1) fires.
        Workflow::new("bug_a")
            .move_inside("viperx", "doser")
            .move_out("viperx"),
        Workflow::new("safe2").set_door("doser", true),
    ]
}

fn seeded_store() -> Arc<RuleStore> {
    let store = Arc::new(RuleStore::new());
    store.seed_tenant(TenantId::default_tenant(), Rulebase::standard());
    store
}

fn run_live(store: &RuleStore, threads: usize) -> FleetReport {
    let sub = MiniSubstrate;
    let wfs = workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();
    run_fleet_on_live(&jobs, threads, store, &TenantId::default_tenant())
}

#[test]
fn inflight_epoch_n_validation_unaffected_by_commit_to_n_plus_1() {
    let store = seeded_store();
    let tenant = TenantId::default_tenant();
    let sub = MiniSubstrate;

    // An engine built on the epoch-0 snapshot — "in flight".
    let pinned = store.snapshot(&tenant);
    let (mut lab, mut rabit) = sub.instantiate_on(pinned, &rabit_core::FaultPlan::none());

    // A commit lands meanwhile: the door rule is switched off at epoch 1.
    let commit = store
        .set_rule_enabled(&tenant, &door_rule(), false)
        .unwrap();
    assert_eq!(commit.epoch, 1);

    // The in-flight engine still enforces epoch 0: bug_a is caught.
    let bug = &workflows()[1];
    let report = rabit.run(&mut lab, bug.commands());
    assert!(!report.completed(), "epoch-0 engine must still alert");
    assert_eq!(report.rulebase_epoch, 0);

    // A fresh engine from the latest snapshot enforces epoch 1: the
    // disabled rule no longer fires (and nothing else catches bug_a).
    let (mut lab2, mut rabit2) =
        sub.instantiate_on(store.snapshot(&tenant), &rabit_core::FaultPlan::none());
    let report2 = rabit2.run(&mut lab2, bug.commands());
    assert!(report2.completed(), "disabled rule must stop firing");
    assert_eq!(report2.rulebase_epoch, 1);
}

#[test]
fn disabled_rule_stops_firing_on_the_next_fleet() {
    let store = seeded_store();
    let tenant = TenantId::default_tenant();

    // Fleet 1 on epoch 0: bug_a alerts, runs record epoch 0.
    let before = run_live(&store, 2);
    assert_eq!(before.completed_runs(), 2);
    assert!(before.runs.iter().all(|r| r.rulebase_epoch == 0));

    // Live commit: disable the door rule → epoch 1.
    store
        .set_rule_enabled(&tenant, &door_rule(), false)
        .unwrap();

    // Fleet 2 picks up epoch 1 at job start: bug_a sails through.
    let after = run_live(&store, 2);
    assert_eq!(after.completed_runs(), 3, "disabled rule stopped firing");
    assert!(after.runs.iter().all(|r| r.rulebase_epoch == 1));

    // Re-enable → epoch 2, and the detection comes back.
    store.set_rule_enabled(&tenant, &door_rule(), true).unwrap();
    let restored = run_live(&store, 2);
    assert_eq!(restored.completed_runs(), 2);
    assert!(restored.runs.iter().all(|r| r.rulebase_epoch == 2));
}

#[test]
fn tenants_are_isolated() {
    let store = Arc::new(RuleStore::new());
    let hein = TenantId::new("hein");
    let acme = TenantId::new("acme");
    store.seed_tenant(hein.clone(), Rulebase::standard());
    store.seed_tenant(acme.clone(), Rulebase::standard());
    let acme_before = store.snapshot(&acme);

    // A burst of commits to hein only.
    store.set_rule_enabled(&hein, &door_rule(), false).unwrap();
    store
        .create_rule(
            &hein,
            CreateRuleRequest::new(Rule::new(
                RuleId::Custom("hein-only".into()),
                "never fires",
                |_, _, _| None,
            )),
        )
        .unwrap();
    assert_eq!(store.epoch_of(&hein), Some(2));

    // Acme is untouched: same epoch, same publication object.
    assert_eq!(store.epoch_of(&acme), Some(0));
    assert!(store.snapshot(&acme).same_publication(&acme_before));

    // And acme's fleet still detects what hein's no longer does.
    let sub = MiniSubstrate;
    let wfs = workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();
    let acme_fleet = run_fleet_on_live(&jobs, 2, store.as_ref(), &acme);
    assert_eq!(acme_fleet.completed_runs(), 2, "bug_a still caught");
    let hein_fleet = run_fleet_on_live(&jobs, 2, store.as_ref(), &hein);
    assert_eq!(
        hein_fleet.completed_runs(),
        3,
        "door rule disabled for hein"
    );
}

#[test]
fn broker_results_are_identical_across_thread_counts() {
    // The same per-tenant command scripts, applied through brokers with
    // 1, 4, and 8 workers, must leave every tenant at the same epoch
    // with the same rulebase shape.
    let tenants = ["t0", "t1", "t2", "t3"];
    let outcome_for = |threads: usize| -> Vec<(u64, usize, usize)> {
        let store = Arc::new(RuleStore::new());
        for tenant in tenants {
            store.seed_tenant(tenant, Rulebase::standard());
        }
        let broker = ServiceBroker::new(Arc::clone(&store), threads);
        for (i, tenant) in tenants.iter().enumerate() {
            // Script: stage two rules, disable the door rule, enable one
            // staged rule, update the other — tenant-dependent lengths.
            drop(
                broker.submit(RuleCommand::new(
                    *tenant,
                    RuleOp::Create(
                        CreateRuleRequest::new(Rule::new(
                            RuleId::Custom("staged-a".into()),
                            "never fires",
                            |_, _, _| None,
                        ))
                        .disabled(),
                    ),
                )),
            );
            drop(broker.submit(RuleCommand::new(
                *tenant,
                RuleOp::Create(CreateRuleRequest::new(Rule::new(
                    RuleId::Custom("staged-b".into()),
                    "never fires",
                    |_, _, _| None,
                ))),
            )));
            drop(broker.submit(RuleCommand::new(*tenant, RuleOp::Disable(door_rule()))));
            drop(broker.submit(RuleCommand::new(
                *tenant,
                RuleOp::Enable(RuleId::Custom("staged-a".into())),
            )));
            if i % 2 == 0 {
                drop(broker.submit(RuleCommand::new(
                    *tenant,
                    RuleOp::Update(
                        RuleId::Custom("staged-b".into()),
                        UpdateRuleRequest::new().with_enabled(false),
                    ),
                )));
            }
        }
        broker.flush();
        tenants
            .iter()
            .map(|tenant| {
                let snap = store.snapshot(&TenantId::new(*tenant));
                (snap.epoch(), snap.len(), snap.enabled_count())
            })
            .collect()
    };
    let serial = outcome_for(1);
    assert_eq!(serial[0], (5, 13, 11), "epoch, total rules, enabled rules");
    assert_eq!(serial[1], (4, 13, 12));
    assert_eq!(outcome_for(4), serial);
    assert_eq!(outcome_for(8), serial);
}

/// The per-tenant command script for the overload differential: rounds
/// of stage → enable → door-toggle → remove churn, with a per-tenant
/// tail so tenants end at different epochs.
fn churn_script(tenant: &str, index: usize) -> Vec<RuleCommand> {
    let noop = |name: &str| {
        Rule::new(
            RuleId::Custom(name.to_string()),
            "never fires",
            |_, _, _| None,
        )
    };
    let mut script = Vec::new();
    for round in 0..8 {
        let staged = format!("staged-{round}");
        script.push(RuleCommand::new(
            tenant,
            RuleOp::Create(CreateRuleRequest::new(noop(&staged)).disabled()),
        ));
        script.push(RuleCommand::new(
            tenant,
            RuleOp::Enable(RuleId::Custom(staged.clone())),
        ));
        script.push(RuleCommand::new(tenant, RuleOp::Disable(door_rule())));
        script.push(RuleCommand::new(tenant, RuleOp::Enable(door_rule())));
        script.push(RuleCommand::new(
            tenant,
            RuleOp::Remove(RuleId::Custom(staged)),
        ));
    }
    if index.is_multiple_of(2) {
        script.push(RuleCommand::new(
            tenant,
            RuleOp::Create(CreateRuleRequest::new(noop("keeper"))),
        ));
    }
    script
}

#[test]
fn overloaded_bounded_broker_matches_unbounded_baseline() {
    // A bounded-lane broker driven through forced `Overloaded` sheds and
    // retries must produce the same committed receipts (epochs, order,
    // ops), the same final epochs, and the same final rulebases as an
    // effectively-unbounded baseline — at 1, 4, and 8 broker threads.
    let tenants = ["t0", "t1", "t2", "t3"];
    type Outcome = (Vec<Vec<RuleCommit>>, Vec<(u64, usize, usize)>);
    let final_shapes = |store: &RuleStore| -> Vec<(u64, usize, usize)> {
        tenants
            .iter()
            .map(|tenant| {
                let snap = store.snapshot(&TenantId::new(*tenant));
                (snap.epoch(), snap.len(), snap.enabled_count())
            })
            .collect()
    };

    let baseline = |threads: usize| -> Outcome {
        let store = Arc::new(RuleStore::new());
        for tenant in tenants {
            store.seed_tenant(tenant, Rulebase::standard());
        }
        let broker = ServiceBroker::new(Arc::clone(&store), threads);
        let tickets: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, tenant)| broker.submit_batch(&churn_script(tenant, i)))
            .collect();
        let receipts = tickets
            .into_iter()
            .map(|t| {
                t.wait()
                    .into_iter()
                    .map(|r| r.expect("baseline script commits cleanly"))
                    .collect()
            })
            .collect();
        (receipts, final_shapes(&store))
    };

    let bounded = |threads: usize| -> (Outcome, u64) {
        let store = Arc::new(RuleStore::new());
        for tenant in tenants {
            store.seed_tenant(tenant, Rulebase::standard());
        }
        // Lane capacity 4: every script overfills its lane many times.
        let broker = ServiceBroker::with_queue_capacity(Arc::clone(&store), threads, 4);
        let mut tickets: Vec<Vec<_>> = Vec::new();
        let mut sheds_seen = 0u64;
        for (i, tenant) in tenants.iter().enumerate() {
            let script = churn_script(tenant, i);
            let mut tenant_tickets = Vec::new();
            // Deterministic shed first: a group larger than the lane can
            // never fit, so its commands all come back `Overloaded`...
            let oversized = &script[..5.min(script.len())];
            let receipts = broker.try_submit_batch(oversized).wait();
            assert!(
                receipts
                    .iter()
                    .all(|r| r == &Err(ServiceError::Overloaded(TenantId::new(*tenant)))),
                "oversized groups are always shed whole"
            );
            sheds_seen += receipts.len() as u64;
            // ...and because shedding is all-or-nothing, resubmitting the
            // same commands (blocking this time) preserves tenant order.
            tenant_tickets.push(broker.submit_batch(oversized));
            // The rest goes through the non-blocking path with retries:
            // a chunk that sheds is retried until admitted, so per-tenant
            // order is never torn.
            let mut shed_base = broker.stats().shed_commands;
            for chunk in script[5.min(script.len())..].chunks(3) {
                loop {
                    let ticket = broker.try_submit_batch(chunk);
                    let shed_now = broker.stats().shed_commands;
                    if shed_now > shed_base {
                        shed_base = shed_now;
                        sheds_seen += chunk.len() as u64;
                        drop(ticket.wait());
                        std::thread::yield_now();
                        continue;
                    }
                    tenant_tickets.push(ticket);
                    break;
                }
            }
            tickets.push(tenant_tickets);
        }
        let receipts = tickets
            .into_iter()
            .map(|tenant_tickets| {
                tenant_tickets
                    .into_iter()
                    .flat_map(|t| t.wait())
                    .map(|r| r.expect("admitted commands commit cleanly"))
                    .collect()
            })
            .collect();
        assert_eq!(broker.stats().shed_commands, sheds_seen);
        ((receipts, final_shapes(&store)), sheds_seen)
    };

    let expected = baseline(1);
    assert_eq!(baseline(4), expected, "baseline thread-count identity");
    for threads in [1, 4, 8] {
        let (outcome, sheds) = bounded(threads);
        assert!(
            sheds >= 5 * tenants.len() as u64,
            "overload was actually forced at {threads} threads"
        );
        assert_eq!(
            outcome, expected,
            "bounded broker at {threads} threads diverged from baseline"
        );
    }
}

/// A [`SnapshotSource`] wrapper counting full snapshot resolutions.
struct CountingSource {
    inner: Arc<RuleStore>,
    snapshots: AtomicU64,
}

impl SnapshotSource for CountingSource {
    fn snapshot(&self, tenant: &TenantId) -> RulebaseSnapshot {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.inner.snapshot(tenant)
    }
    fn snapshot_epoch(&self, tenant: &TenantId) -> Option<u64> {
        self.inner.snapshot_epoch(tenant)
    }
}

#[test]
fn live_fleet_resolves_one_snapshot_per_epoch() {
    // A fleet over an unchanging store must hit the store once, not
    // once per job — and still pick up a commit landing between fleets.
    let store = seeded_store();
    let tenant = TenantId::default_tenant();
    let source = CountingSource {
        inner: Arc::clone(&store),
        snapshots: AtomicU64::new(0),
    };
    let sub = MiniSubstrate;
    let wfs = workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();

    let fleet = run_fleet_on_live(&jobs, 2, &source, &tenant);
    assert_eq!(
        source.snapshots.load(Ordering::Relaxed),
        1,
        "one fetch serves the whole fleet"
    );
    assert!(fleet.runs.iter().all(|r| r.rulebase_epoch == 0));

    // A commit between fleets is still observed (epoch probe misses).
    store
        .set_rule_enabled(&tenant, &door_rule(), false)
        .unwrap();
    let fleet = run_fleet_on_live(&jobs, 2, &source, &tenant);
    assert_eq!(source.snapshots.load(Ordering::Relaxed), 2);
    assert!(fleet.runs.iter().all(|r| r.rulebase_epoch == 1));
    assert_eq!(fleet.completed_runs(), 3, "disabled rule stopped firing");
}

#[test]
fn static_store_fleet_is_bit_identical_to_no_store() {
    // A seeded, never-committed store must be invisible: same verdicts,
    // same damage, same cache behaviour as the plain substrate path.
    let store = seeded_store();
    let sub = MiniSubstrate;
    let wfs = workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();
    let plain = run_fleet_on(&jobs, 2);
    let live = run_live(&store, 2);
    assert_eq!(plain.runs.len(), live.runs.len());
    for (p, l) in plain.runs.iter().zip(&live.runs) {
        assert_eq!(p.report.completed(), l.report.completed());
        assert_eq!(
            p.report.alert.as_ref().map(|a| a.headline()),
            l.report.alert.as_ref().map(|a| a.headline())
        );
        assert_eq!(p.report.executed, l.report.executed);
        assert_eq!(p.report.lab_time_s, l.report.lab_time_s);
        assert_eq!(p.damage.len(), l.damage.len());
        assert_eq!(p.cache_hits, l.cache_hits);
        assert_eq!(p.cache_misses, l.cache_misses);
        assert_eq!(p.samples_checked, l.samples_checked);
        assert_eq!(l.rulebase_epoch, 0, "static store pins epoch 0");
    }
}
