//! Commands and actions.
//!
//! "The system transitions from one state to another via a single command
//! … responsible for executing an action" (paper §II-B, Lines 5-7 of the
//! Fig. 2 algorithm). A [`Command`] names the acting device and the
//! [`ActionKind`] it performs.

use crate::id::DeviceId;
use rabit_geometry::Vec3;
use std::fmt;

/// The kind of substance being handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Substance {
    /// A solid (milligrams).
    Solid,
    /// A liquid (millilitres).
    Liquid,
}

impl fmt::Display for Substance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Substance::Solid => f.write_str("solid"),
            Substance::Liquid => f.write_str("liquid"),
        }
    }
}

/// Every action a device can perform. Action labels follow Table II
/// (`move_robot_inside`, `pick_object`, `place_object`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum ActionKind {
    // ----- Robot-arm actions -----
    /// Move the arm's tool to a Cartesian location.
    MoveToLocation {
        /// Target tool position in the arm's own coordinate frame.
        target: Vec3,
    },
    /// Move the arm inside a device's working volume
    /// (Table II: `move_robot_inside`).
    MoveInsideDevice {
        /// The device being entered.
        device: DeviceId,
    },
    /// Retract the arm out of the device it is currently inside.
    MoveOutOfDevice,
    /// Move the arm to its home (ready) pose.
    MoveHome,
    /// Move the arm to its sleep (stowed) pose.
    MoveToSleep,
    /// Pick up an object with the gripper (Table II: `pick_object`).
    PickObject {
        /// The object to grasp.
        object: DeviceId,
    },
    /// Place the held object (Table II: `place_object`).
    PlaceObject {
        /// The object being placed (must match what is held).
        object: DeviceId,
        /// The device to place it into, or `None` to set it down at the
        /// arm's current location (e.g. a grid slot).
        into: Option<DeviceId>,
    },
    /// Open the gripper jaws.
    OpenGripper,
    /// Close the gripper jaws.
    CloseGripper,

    // ----- Door actions (dosing systems / action devices) -----
    /// Open or close the device's door.
    SetDoor {
        /// `true` to open, `false` to close.
        open: bool,
    },

    // ----- Dosing-system actions -----
    /// Dispense solid into the contained/target container.
    DoseSolid {
        /// Amount in milligrams.
        amount_mg: f64,
        /// The receiving container.
        into: DeviceId,
    },
    /// Dispense liquid into the target container.
    DoseLiquid {
        /// Volume in millilitres.
        volume_ml: f64,
        /// The receiving container.
        into: DeviceId,
    },

    // ----- Action-device actions -----
    /// Start the device's action (heat, stir, shake, spin) at `value`
    /// (°C, rpm, …).
    StartAction {
        /// Target action value.
        value: f64,
    },
    /// Stop the device's action.
    StopAction,

    // ----- Container actions -----
    /// Put the stopper on.
    Cap,
    /// Take the stopper off.
    Decap,
    /// Transfer a substance between two containers (paper rules III-7/8).
    Transfer {
        /// Delivering container.
        from: DeviceId,
        /// Receiving container.
        to: DeviceId,
        /// What is being transferred.
        substance: Substance,
        /// Amount (mg for solids, mL for liquids).
        amount: f64,
    },

    // ----- Generic -----
    /// A lab-defined action with a scalar parameter list.
    Custom {
        /// Action name.
        name: String,
        /// Named scalar parameters.
        params: Vec<(String, f64)>,
    },
}

/// A dense, data-free classification of [`ActionKind`] — one class per
/// observable action shape. Rule dispatch buckets rules by the classes
/// they can fire on, so the per-command rule scan only visits applicable
/// rules. `SetDoor` splits into open/close classes because rules
/// routinely bind to only one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ActionClass {
    /// `MoveToLocation`.
    MoveToLocation = 0,
    /// `MoveInsideDevice`.
    MoveInsideDevice,
    /// `MoveOutOfDevice`.
    MoveOutOfDevice,
    /// `MoveHome`.
    MoveHome,
    /// `MoveToSleep`.
    MoveToSleep,
    /// `PickObject`.
    PickObject,
    /// `PlaceObject`.
    PlaceObject,
    /// `OpenGripper`.
    OpenGripper,
    /// `CloseGripper`.
    CloseGripper,
    /// `SetDoor { open: true }`.
    OpenDoor,
    /// `SetDoor { open: false }`.
    CloseDoor,
    /// `DoseSolid`.
    DoseSolid,
    /// `DoseLiquid`.
    DoseLiquid,
    /// `StartAction`.
    StartAction,
    /// `StopAction`.
    StopAction,
    /// `Cap`.
    Cap,
    /// `Decap`.
    Decap,
    /// `Transfer`.
    Transfer,
    /// `Custom`.
    Custom,
}

impl ActionClass {
    /// Number of distinct classes (the dispatch-index bucket count).
    pub const COUNT: usize = 19;

    /// Every class, in index order.
    pub const ALL: [ActionClass; ActionClass::COUNT] = [
        ActionClass::MoveToLocation,
        ActionClass::MoveInsideDevice,
        ActionClass::MoveOutOfDevice,
        ActionClass::MoveHome,
        ActionClass::MoveToSleep,
        ActionClass::PickObject,
        ActionClass::PlaceObject,
        ActionClass::OpenGripper,
        ActionClass::CloseGripper,
        ActionClass::OpenDoor,
        ActionClass::CloseDoor,
        ActionClass::DoseSolid,
        ActionClass::DoseLiquid,
        ActionClass::StartAction,
        ActionClass::StopAction,
        ActionClass::Cap,
        ActionClass::Decap,
        ActionClass::Transfer,
        ActionClass::Custom,
    ];

    /// Dense index of this class (`0..COUNT`).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The robot-motion classes (mirrors
    /// [`ActionKind::is_robot_motion`]).
    pub const ROBOT_MOTION: [ActionClass; 7] = [
        ActionClass::MoveToLocation,
        ActionClass::MoveInsideDevice,
        ActionClass::MoveOutOfDevice,
        ActionClass::MoveHome,
        ActionClass::MoveToSleep,
        ActionClass::PickObject,
        ActionClass::PlaceObject,
    ];
}

impl ActionKind {
    /// The action label used in traces and the state-transition table
    /// (Table II column "Action labels").
    pub fn label(&self) -> &'static str {
        match self {
            ActionKind::MoveToLocation { .. } => "move_to_location",
            ActionKind::MoveInsideDevice { .. } => "move_robot_inside",
            ActionKind::MoveOutOfDevice => "move_robot_outside",
            ActionKind::MoveHome => "go_to_home_pose",
            ActionKind::MoveToSleep => "go_to_sleep_pose",
            ActionKind::PickObject { .. } => "pick_object",
            ActionKind::PlaceObject { .. } => "place_object",
            ActionKind::OpenGripper => "open_gripper",
            ActionKind::CloseGripper => "close_gripper",
            ActionKind::SetDoor { open: true } => "open_door",
            ActionKind::SetDoor { open: false } => "close_door",
            ActionKind::DoseSolid { .. } => "dose_solid",
            ActionKind::DoseLiquid { .. } => "dose_liquid",
            ActionKind::StartAction { .. } => "start_action",
            ActionKind::StopAction => "stop_action",
            ActionKind::Cap => "cap_vial",
            ActionKind::Decap => "decap_vial",
            ActionKind::Transfer { .. } => "transfer",
            ActionKind::Custom { .. } => "custom",
        }
    }

    /// The dense [`ActionClass`] of this action — the dispatch-index key.
    #[inline]
    pub fn class(&self) -> ActionClass {
        match self {
            ActionKind::MoveToLocation { .. } => ActionClass::MoveToLocation,
            ActionKind::MoveInsideDevice { .. } => ActionClass::MoveInsideDevice,
            ActionKind::MoveOutOfDevice => ActionClass::MoveOutOfDevice,
            ActionKind::MoveHome => ActionClass::MoveHome,
            ActionKind::MoveToSleep => ActionClass::MoveToSleep,
            ActionKind::PickObject { .. } => ActionClass::PickObject,
            ActionKind::PlaceObject { .. } => ActionClass::PlaceObject,
            ActionKind::OpenGripper => ActionClass::OpenGripper,
            ActionKind::CloseGripper => ActionClass::CloseGripper,
            ActionKind::SetDoor { open: true } => ActionClass::OpenDoor,
            ActionKind::SetDoor { open: false } => ActionClass::CloseDoor,
            ActionKind::DoseSolid { .. } => ActionClass::DoseSolid,
            ActionKind::DoseLiquid { .. } => ActionClass::DoseLiquid,
            ActionKind::StartAction { .. } => ActionClass::StartAction,
            ActionKind::StopAction => ActionClass::StopAction,
            ActionKind::Cap => ActionClass::Cap,
            ActionKind::Decap => ActionClass::Decap,
            ActionKind::Transfer { .. } => ActionClass::Transfer,
            ActionKind::Custom { .. } => ActionClass::Custom,
        }
    }

    /// Returns `true` for actions that move a robot arm through space —
    /// the commands the Fig. 2 algorithm routes through the trajectory
    /// validator (`isRobotCommand` on Line 8).
    pub fn is_robot_motion(&self) -> bool {
        matches!(
            self,
            ActionKind::MoveToLocation { .. }
                | ActionKind::MoveInsideDevice { .. }
                | ActionKind::MoveOutOfDevice
                | ActionKind::MoveHome
                | ActionKind::MoveToSleep
                | ActionKind::PickObject { .. }
                | ActionKind::PlaceObject { .. }
        )
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::MoveToLocation { target } => {
                write!(f, "move_to_location{target}")
            }
            ActionKind::MoveInsideDevice { device } => {
                write!(f, "move_robot_inside({device})")
            }
            ActionKind::PickObject { object } => write!(f, "pick_object({object})"),
            ActionKind::PlaceObject {
                object,
                into: Some(d),
            } => {
                write!(f, "place_object({object} -> {d})")
            }
            ActionKind::PlaceObject { object, into: None } => {
                write!(f, "place_object({object})")
            }
            ActionKind::DoseSolid { amount_mg, into } => {
                write!(f, "dose_solid({amount_mg} mg -> {into})")
            }
            ActionKind::DoseLiquid { volume_ml, into } => {
                write!(f, "dose_liquid({volume_ml} mL -> {into})")
            }
            ActionKind::StartAction { value } => write!(f, "start_action({value})"),
            ActionKind::Transfer {
                from,
                to,
                substance,
                amount,
            } => {
                write!(f, "transfer({amount} {substance}: {from} -> {to})")
            }
            ActionKind::Custom { name, .. } => write!(f, "custom({name})"),
            other => f.write_str(other.label()),
        }
    }
}

/// A command: one device performing one action. This is the unit RABIT
/// intercepts, validates, executes, and verifies.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// The acting device (the robot arm for motion commands, the dosing
    /// device for door/dose commands, …).
    pub actor: DeviceId,
    /// What the actor does.
    pub action: ActionKind,
}

impl Command {
    /// Creates a command.
    pub fn new(actor: impl Into<DeviceId>, action: ActionKind) -> Self {
        Command {
            actor: actor.into(),
            action,
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.actor, self.action)
    }
}

impl rabit_util::ToJson for Substance {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::Str(
            match self {
                Substance::Solid => "Solid",
                Substance::Liquid => "Liquid",
            }
            .to_string(),
        )
    }
}

impl rabit_util::FromJson for Substance {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        match String::from_json(json)?.as_str() {
            "Solid" => Ok(Substance::Solid),
            "Liquid" => Ok(Substance::Liquid),
            other => Err(rabit_util::JsonError::decode(format!(
                "unknown substance '{other}'"
            ))),
        }
    }
}

impl rabit_util::ToJson for ActionKind {
    fn to_json(&self) -> rabit_util::Json {
        use rabit_util::Json;
        // Unit variants become strings; data-carrying variants become
        // single-key objects, mirroring the trace format.
        match self {
            ActionKind::MoveToLocation { target } => {
                Json::obj([("MoveToLocation", Json::obj([("target", target.to_json())]))])
            }
            ActionKind::MoveInsideDevice { device } => Json::obj([(
                "MoveInsideDevice",
                Json::obj([("device", device.to_json())]),
            )]),
            ActionKind::MoveOutOfDevice => Json::Str("MoveOutOfDevice".into()),
            ActionKind::MoveHome => Json::Str("MoveHome".into()),
            ActionKind::MoveToSleep => Json::Str("MoveToSleep".into()),
            ActionKind::PickObject { object } => {
                Json::obj([("PickObject", Json::obj([("object", object.to_json())]))])
            }
            ActionKind::PlaceObject { object, into } => Json::obj([(
                "PlaceObject",
                Json::obj([("object", object.to_json()), ("into", into.to_json())]),
            )]),
            ActionKind::OpenGripper => Json::Str("OpenGripper".into()),
            ActionKind::CloseGripper => Json::Str("CloseGripper".into()),
            ActionKind::SetDoor { open } => {
                Json::obj([("SetDoor", Json::obj([("open", Json::Bool(*open))]))])
            }
            ActionKind::DoseSolid { amount_mg, into } => Json::obj([(
                "DoseSolid",
                Json::obj([
                    ("amount_mg", Json::Num(*amount_mg)),
                    ("into", into.to_json()),
                ]),
            )]),
            ActionKind::DoseLiquid { volume_ml, into } => Json::obj([(
                "DoseLiquid",
                Json::obj([
                    ("volume_ml", Json::Num(*volume_ml)),
                    ("into", into.to_json()),
                ]),
            )]),
            ActionKind::StartAction { value } => {
                Json::obj([("StartAction", Json::obj([("value", Json::Num(*value))]))])
            }
            ActionKind::StopAction => Json::Str("StopAction".into()),
            ActionKind::Cap => Json::Str("Cap".into()),
            ActionKind::Decap => Json::Str("Decap".into()),
            ActionKind::Transfer {
                from,
                to,
                substance,
                amount,
            } => Json::obj([(
                "Transfer",
                Json::obj([
                    ("from", from.to_json()),
                    ("to", to.to_json()),
                    ("substance", substance.to_json()),
                    ("amount", Json::Num(*amount)),
                ]),
            )]),
            ActionKind::Custom { name, params } => Json::obj([(
                "Custom",
                Json::obj([
                    ("name", Json::Str(name.clone())),
                    (
                        "params",
                        Json::Arr(
                            params
                                .iter()
                                .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Num(*v)]))
                                .collect(),
                        ),
                    ),
                ]),
            )]),
        }
    }
}

impl rabit_util::FromJson for ActionKind {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        use rabit_util::json::field;
        use rabit_util::{FromJson, Json, JsonError};
        if let Some(tag) = json.as_str() {
            return match tag {
                "MoveOutOfDevice" => Ok(ActionKind::MoveOutOfDevice),
                "MoveHome" => Ok(ActionKind::MoveHome),
                "MoveToSleep" => Ok(ActionKind::MoveToSleep),
                "OpenGripper" => Ok(ActionKind::OpenGripper),
                "CloseGripper" => Ok(ActionKind::CloseGripper),
                "StopAction" => Ok(ActionKind::StopAction),
                "Cap" => Ok(ActionKind::Cap),
                "Decap" => Ok(ActionKind::Decap),
                other => Err(JsonError::decode(format!("unknown action '{other}'"))),
            };
        }
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::decode(format!("expected action, got {json}")))?;
        let (tag, body) = pairs
            .first()
            .ok_or_else(|| JsonError::decode("empty action object"))?;
        Ok(match tag.as_str() {
            "MoveToLocation" => ActionKind::MoveToLocation {
                target: field(body, "target")?,
            },
            "MoveInsideDevice" => ActionKind::MoveInsideDevice {
                device: field(body, "device")?,
            },
            "PickObject" => ActionKind::PickObject {
                object: field(body, "object")?,
            },
            "PlaceObject" => ActionKind::PlaceObject {
                object: field(body, "object")?,
                into: match body.get("into") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(FromJson::from_json(v)?),
                },
            },
            "SetDoor" => ActionKind::SetDoor {
                open: field(body, "open")?,
            },
            "DoseSolid" => ActionKind::DoseSolid {
                amount_mg: field(body, "amount_mg")?,
                into: field(body, "into")?,
            },
            "DoseLiquid" => ActionKind::DoseLiquid {
                volume_ml: field(body, "volume_ml")?,
                into: field(body, "into")?,
            },
            "StartAction" => ActionKind::StartAction {
                value: field(body, "value")?,
            },
            "Transfer" => ActionKind::Transfer {
                from: field(body, "from")?,
                to: field(body, "to")?,
                substance: field(body, "substance")?,
                amount: field(body, "amount")?,
            },
            "Custom" => {
                let params_json = body
                    .get("params")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| JsonError::decode("custom action needs 'params'"))?;
                let mut params = Vec::with_capacity(params_json.len());
                for p in params_json {
                    let pair = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| JsonError::decode("param must be [name, value]"))?;
                    params.push((String::from_json(&pair[0])?, f64::from_json(&pair[1])?));
                }
                ActionKind::Custom {
                    name: field(body, "name")?,
                    params,
                }
            }
            other => return Err(JsonError::decode(format!("unknown action '{other}'"))),
        })
    }
}

impl rabit_util::ToJson for Command {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::obj([
            ("actor", self.actor.to_json()),
            ("action", self.action.to_json()),
        ])
    }
}

impl rabit_util::FromJson for Command {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        Ok(Command {
            actor: rabit_util::json::field(json, "actor")?,
            action: rabit_util::json::field(json, "action")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table_ii() {
        assert_eq!(
            ActionKind::MoveInsideDevice {
                device: "dosing_device".into()
            }
            .label(),
            "move_robot_inside"
        );
        assert_eq!(
            ActionKind::PickObject {
                object: "vial".into()
            }
            .label(),
            "pick_object"
        );
        assert_eq!(
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: None
            }
            .label(),
            "place_object"
        );
        assert_eq!(ActionKind::SetDoor { open: true }.label(), "open_door");
        assert_eq!(ActionKind::SetDoor { open: false }.label(), "close_door");
    }

    #[test]
    fn motion_classification() {
        assert!(ActionKind::MoveToLocation { target: Vec3::ZERO }.is_robot_motion());
        assert!(ActionKind::MoveHome.is_robot_motion());
        assert!(ActionKind::PickObject {
            object: "vial".into()
        }
        .is_robot_motion());
        assert!(!ActionKind::SetDoor { open: true }.is_robot_motion());
        assert!(!ActionKind::StartAction { value: 60.0 }.is_robot_motion());
        assert!(!ActionKind::Cap.is_robot_motion());
    }

    #[test]
    fn command_display() {
        let c = Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial_NW".into(),
            },
        );
        assert_eq!(c.to_string(), "viperx.pick_object(vial_NW)");
        let d = Command::new("dosing_device", ActionKind::SetDoor { open: false });
        assert_eq!(d.to_string(), "dosing_device.close_door");
    }

    #[test]
    fn commands_roundtrip_through_json() {
        use rabit_util::{FromJson, Json, ToJson};
        let commands = [
            Command::new(
                "ned2",
                ActionKind::MoveToLocation {
                    target: Vec3::new(0.443, -0.010, 0.292),
                },
            ),
            Command::new("viperx", ActionKind::MoveHome),
            Command::new(
                "viperx",
                ActionKind::PlaceObject {
                    object: "vial_NW".into(),
                    into: Some("dosing_device".into()),
                },
            ),
            Command::new(
                "vial_A",
                ActionKind::Transfer {
                    from: "vial_A".into(),
                    to: "vial_B".into(),
                    substance: Substance::Liquid,
                    amount: 2.5,
                },
            ),
            Command::new(
                "decapper",
                ActionKind::Custom {
                    name: "torque".into(),
                    params: vec![("nm".into(), 0.8)],
                },
            ),
        ];
        for c in commands {
            let json = c.to_json().to_compact();
            let back = Command::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(c, back, "via {json}");
        }
    }

    #[test]
    fn action_classes_are_dense_and_consistent() {
        assert_eq!(ActionClass::ALL.len(), ActionClass::COUNT);
        for (i, c) in ActionClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "ALL must be in index order");
        }
        // SetDoor splits by direction.
        assert_eq!(
            ActionKind::SetDoor { open: true }.class(),
            ActionClass::OpenDoor
        );
        assert_eq!(
            ActionKind::SetDoor { open: false }.class(),
            ActionClass::CloseDoor
        );
        // Motion classes mirror is_robot_motion.
        for class in ActionClass::ALL {
            let is_motion = ActionClass::ROBOT_MOTION.contains(&class);
            let sample: Option<ActionKind> = match class {
                ActionClass::MoveToLocation => {
                    Some(ActionKind::MoveToLocation { target: Vec3::ZERO })
                }
                ActionClass::MoveHome => Some(ActionKind::MoveHome),
                ActionClass::StopAction => Some(ActionKind::StopAction),
                ActionClass::Cap => Some(ActionKind::Cap),
                _ => None,
            };
            if let Some(kind) = sample {
                assert_eq!(kind.is_robot_motion(), is_motion);
                assert_eq!(kind.class(), class);
            }
        }
    }

    #[test]
    fn substance_display() {
        assert_eq!(Substance::Solid.to_string(), "solid");
        assert_eq!(Substance::Liquid.to_string(), "liquid");
    }
}
