//! Multi-door devices: one of the paper's open challenges.
//!
//! "Devices might have multiple doors, for instance, for two robot arms
//! to approach the device simultaneously. In its current state, RABIT
//! does not handle this." (§V-C)
//!
//! [`MultiDoorDevice`] is a working chamber with *named* doors, each
//! reported as the custom state variable `door:<name>`. Doors are
//! actuated with the custom actions `open_door:<name>` /
//! `close_door:<name>`, and the companion extension rules (in
//! `rabit-rulebase::extensions::multi_door`) generalise rules III-1/2 to
//! per-door, per-arm form.

use crate::command::ActionKind;
use crate::device::{is_silent_noop, Device, DeviceError, LatencyModel, Malfunction};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::Aabb;
use std::collections::BTreeMap;

/// The state-variable prefix for a named door.
pub const DOOR_KEY_PREFIX: &str = "door:";

/// The custom-action prefix for opening a named door.
pub const OPEN_DOOR_PREFIX: &str = "open_door:";
/// The custom-action prefix for closing a named door.
pub const CLOSE_DOOR_PREFIX: &str = "close_door:";

/// Builds the command that opens door `door` of `device`.
pub fn open_door_command(device: impl Into<DeviceId>, door: &str) -> crate::command::Command {
    crate::command::Command::new(
        device,
        ActionKind::Custom {
            name: format!("{OPEN_DOOR_PREFIX}{door}"),
            params: vec![],
        },
    )
}

/// Builds the command that closes door `door` of `device`.
pub fn close_door_command(device: impl Into<DeviceId>, door: &str) -> crate::command::Command {
    crate::command::Command::new(
        device,
        ActionKind::Custom {
            name: format!("{CLOSE_DOOR_PREFIX}{door}"),
            params: vec![],
        },
    )
}

/// The state key of a named door.
pub fn door_key(door: &str) -> StateKey {
    StateKey::Custom(format!("{DOOR_KEY_PREFIX}{door}"))
}

/// A processing chamber with several independently actuated doors — e.g.
/// a glovebox-style station served by two arms at once.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDoorDevice {
    id: DeviceId,
    footprint: Aabb,
    doors: BTreeMap<String, bool>,
    active: bool,
    contained: Vec<DeviceId>,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl MultiDoorDevice {
    /// Creates the chamber with the given doors, all initially closed.
    ///
    /// # Panics
    ///
    /// Panics if no doors are given.
    pub fn new<S: Into<String>>(
        id: impl Into<DeviceId>,
        footprint: Aabb,
        doors: impl IntoIterator<Item = S>,
    ) -> Self {
        let doors: BTreeMap<String, bool> = doors.into_iter().map(|d| (d.into(), false)).collect();
        assert!(
            !doors.is_empty(),
            "a multi-door device needs at least one door"
        );
        MultiDoorDevice {
            id: id.into(),
            footprint,
            doors,
            active: false,
            contained: Vec::new(),
            malfunction: None,
            latency: LatencyModel::PRODUCTION,
        }
    }

    /// Door names, in order.
    pub fn door_names(&self) -> impl Iterator<Item = &str> {
        self.doors.keys().map(String::as_str)
    }

    /// Whether the named door is open.
    pub fn door_open(&self, door: &str) -> Option<bool> {
        self.doors.get(door).copied()
    }

    /// Whether the chamber's process is running.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Places an object in the chamber (environment side-effect).
    pub fn insert_object(&mut self, object: DeviceId) {
        self.contained.push(object);
    }

    /// Removes an object from the chamber.
    pub fn remove_object(&mut self, object: &DeviceId) -> bool {
        let before = self.contained.len();
        self.contained.retain(|o| o != object);
        self.contained.len() != before
    }
}

impl Device for MultiDoorDevice {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::Custom("multi_door_chamber".to_string())
    }

    fn fetch_state(&self) -> DeviceState {
        let mut s = DeviceState::new()
            .with(StateKey::ActionActive, self.active)
            .with(StateKey::Footprint, self.footprint);
        for (door, open) in &self.doors {
            s.set(door_key(door), *open);
        }
        s
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::Custom { name, .. } => {
                let (door, open) = if let Some(d) = name.strip_prefix(OPEN_DOOR_PREFIX) {
                    (d, true)
                } else if let Some(d) = name.strip_prefix(CLOSE_DOOR_PREFIX) {
                    (d, false)
                } else {
                    return Err(DeviceError::UnsupportedAction {
                        device: self.id.clone(),
                        action: "custom",
                    });
                };
                let Some(slot) = self.doors.get_mut(door) else {
                    return Err(DeviceError::InvalidState {
                        device: self.id.clone(),
                        reason: format!("no door named '{door}'"),
                    });
                };
                if !is_silent_noop(self.malfunction) {
                    *slot = open;
                }
                Ok(())
            }
            ActionKind::StartAction { .. } => {
                self.active = true;
                Ok(())
            }
            ActionKind::StopAction => {
                self.active = false;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn footprint(&self) -> Option<Aabb> {
        Some(self.footprint)
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::Vec3;

    fn chamber() -> MultiDoorDevice {
        MultiDoorDevice::new(
            "glovebox",
            Aabb::new(Vec3::ZERO, Vec3::new(0.4, 0.4, 0.4)),
            ["north", "south"],
        )
    }

    #[test]
    fn doors_start_closed_and_actuate_independently() {
        let mut c = chamber();
        assert_eq!(c.door_names().count(), 2);
        assert_eq!(c.door_open("north"), Some(false));
        assert_eq!(c.door_open("south"), Some(false));
        assert_eq!(c.door_open("west"), None);
        c.execute(&open_door_command("glovebox", "north").action)
            .unwrap();
        assert_eq!(c.door_open("north"), Some(true));
        assert_eq!(c.door_open("south"), Some(false), "doors are independent");
        c.execute(&close_door_command("glovebox", "north").action)
            .unwrap();
        assert_eq!(c.door_open("north"), Some(false));
    }

    #[test]
    fn state_reports_each_door() {
        let mut c = chamber();
        c.execute(&open_door_command("glovebox", "south").action)
            .unwrap();
        let s = c.fetch_state();
        assert_eq!(s.get_bool(&door_key("north")), Some(false));
        assert_eq!(s.get_bool(&door_key("south")), Some(true));
        assert_eq!(s.get_bool(&StateKey::ActionActive), Some(false));
    }

    #[test]
    fn unknown_door_rejected() {
        let mut c = chamber();
        let err = c
            .execute(&open_door_command("glovebox", "west").action)
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidState { .. }));
        let err = c
            .execute(&ActionKind::Custom {
                name: "blink".into(),
                params: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::UnsupportedAction { .. }));
    }

    #[test]
    fn process_and_contents() {
        let mut c = chamber();
        c.execute(&ActionKind::StartAction { value: 1.0 }).unwrap();
        assert!(c.active());
        c.execute(&ActionKind::StopAction).unwrap();
        assert!(!c.active());
        c.insert_object("vial".into());
        assert!(c.remove_object(&"vial".into()));
        assert!(!c.remove_object(&"vial".into()));
    }

    #[test]
    fn stuck_door_malfunction() {
        let mut c = chamber();
        c.inject_malfunction(Some(Malfunction::SilentNoop));
        c.execute(&open_door_command("glovebox", "north").action)
            .unwrap();
        assert_eq!(c.door_open("north"), Some(false));
    }

    #[test]
    #[should_panic(expected = "at least one door")]
    fn doorless_chamber_rejected() {
        let _ = MultiDoorDevice::new(
            "x",
            Aabb::new(Vec3::ZERO, Vec3::splat(0.1)),
            Vec::<String>::new(),
        );
    }
}
