//! The latency-overhead experiment (E2, paper §II-C).
//!
//! "Without the Extended Simulator, RABIT incurs approximately 0.03 s
//! overhead (1.5%) … However, with the Extended Simulator, RABIT incurs
//! approximately 2 s overhead (112%). … for deployment, we plan to bypass
//! the GUI entirely."
//!
//! The harness runs the production solubility workflow four ways on the
//! deterministic virtual clock and reports per-command overheads.

use rabit_production::{solubility, ProductionDeck};
use rabit_tracer::Tracer;

/// The four measured configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadConfig {
    /// No RABIT at all (the baseline).
    Unguarded,
    /// RABIT without a simulator.
    Rabit,
    /// RABIT with the GUI-bound Extended Simulator (~2 s per check).
    RabitWithGuiSim,
    /// RABIT with the headless simulator (the planned GUI bypass).
    RabitWithHeadlessSim,
}

impl OverheadConfig {
    /// All configurations, in report order.
    pub fn all() -> [OverheadConfig; 4] {
        [
            OverheadConfig::Unguarded,
            OverheadConfig::Rabit,
            OverheadConfig::RabitWithGuiSim,
            OverheadConfig::RabitWithHeadlessSim,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            OverheadConfig::Unguarded => "no RABIT",
            OverheadConfig::Rabit => "RABIT (no simulator)",
            OverheadConfig::RabitWithGuiSim => "RABIT + Extended Simulator (GUI)",
            OverheadConfig::RabitWithHeadlessSim => "RABIT + Extended Simulator (headless)",
        }
    }
}

/// One measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadMeasurement {
    /// The configuration measured.
    pub config: OverheadConfig,
    /// Commands executed.
    pub commands: usize,
    /// Total virtual lab time (seconds).
    pub total_s: f64,
    /// Per-command overhead versus the unguarded baseline (seconds).
    pub overhead_per_command_s: f64,
    /// Overhead as a fraction of the baseline runtime.
    pub overhead_fraction: f64,
}

/// Runs the experiment, returning one measurement per configuration.
pub fn measure() -> Vec<OverheadMeasurement> {
    let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());

    let run = |config: OverheadConfig| -> (usize, f64) {
        let mut deck = ProductionDeck::new();
        let report = match config {
            OverheadConfig::Unguarded => Tracer::pass_through(&mut deck.lab).run(&wf),
            OverheadConfig::Rabit => {
                let mut rabit = deck.rabit();
                Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf)
            }
            OverheadConfig::RabitWithGuiSim => {
                let mut rabit = deck.rabit_with_simulator(true);
                Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf)
            }
            OverheadConfig::RabitWithHeadlessSim => {
                let mut rabit = deck.rabit_with_simulator(false);
                Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf)
            }
        };
        assert!(
            report.completed(),
            "{}: safe workflow must complete: {:?}",
            config.name(),
            report.alert
        );
        (report.executed, report.lab_time_s)
    };

    let (base_commands, base_total) = run(OverheadConfig::Unguarded);
    OverheadConfig::all()
        .into_iter()
        .map(|config| {
            let (commands, total_s) = if config == OverheadConfig::Unguarded {
                (base_commands, base_total)
            } else {
                run(config)
            };
            OverheadMeasurement {
                config,
                commands,
                total_s,
                overhead_per_command_s: (total_s - base_total) / commands as f64,
                overhead_fraction: (total_s - base_total) / base_total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_shape_matches_the_paper() {
        let m = measure();
        let by = |c: OverheadConfig| m.iter().find(|x| x.config == c).unwrap();
        let rabit = by(OverheadConfig::Rabit);
        let gui = by(OverheadConfig::RabitWithGuiSim);
        let headless = by(OverheadConfig::RabitWithHeadlessSim);

        // Paper: ~1.5% without the simulator. Ours must be percent-level.
        assert!(
            rabit.overhead_fraction > 0.0 && rabit.overhead_fraction < 0.10,
            "no-sim overhead {:.3}",
            rabit.overhead_fraction
        );
        // Paper: ~112% with the GUI in the loop. Ours must exceed 50%.
        assert!(
            gui.overhead_fraction > 0.5,
            "GUI-sim overhead {:.3}",
            gui.overhead_fraction
        );
        // Bypassing the GUI collapses most of that overhead.
        assert!(headless.overhead_fraction < gui.overhead_fraction / 5.0);
        // Per-command overhead without the sim is tens of milliseconds
        // (the paper's 0.03 s scale).
        assert!(
            rabit.overhead_per_command_s > 0.005 && rabit.overhead_per_command_s < 0.5,
            "per-command {:.4}",
            rabit.overhead_per_command_s
        );
        // The GUI costs ~2 s per robot-motion command.
        assert!(gui.overhead_per_command_s > 0.5);
    }

    #[test]
    fn baseline_has_zero_overhead() {
        let m = measure();
        let base = m
            .iter()
            .find(|x| x.config == OverheadConfig::Unguarded)
            .unwrap();
        assert_eq!(base.overhead_fraction, 0.0);
        assert_eq!(base.overhead_per_command_s, 0.0);
        assert!(base.total_s > 0.0);
        assert!(base.commands > 50);
    }
}
