//! The low-fidelity testbed (stage 2 of RABIT's three-stage framework).
//!
//! "The testbed emulates the Hein Lab using lower precision robot arms
//! and low-fidelity device mockups. It provides an environment for
//! executing potentially unsafe programs … The testbed also lets us
//! experiment with intentionally unsafe workflows to check if RABIT
//! detects them." (§III, Fig. 4)
//!
//! This crate assembles that environment in software:
//!
//! * [`Testbed`] — two arms (ViperX with the silent-skip failure mode,
//!   Ned2 with the raise-exception mode), five mockup devices, the grid,
//!   and RABIT builders for the study's three configurations
//!   ([`RabitStage`]);
//! * [`TestbedSubstrate`] — the deck as a pluggable deployment substrate,
//!   so `rabit_core`'s [`StagePipeline`](rabit_core::StagePipeline) can
//!   promote workflows through it ([`Testbed::pipeline`]);
//! * [`mod@locations`] — the Fig. 6 hard-coded coordinate table;
//! * [`workflows`] — the Fig. 5 safe workflow and mutation anchor points;
//! * [`calibration`] — the common-frame experiment reproducing the ~3 cm
//!   error that motivated time/space multiplexing.
//!
//! # Example
//!
//! ```
//! use rabit_testbed::{Testbed, RabitStage, workflows};
//! use rabit_tracer::Tracer;
//!
//! let mut tb = Testbed::new();
//! let mut rabit = tb.rabit(RabitStage::Modified);
//! let wf = workflows::fig5_safe_workflow(&tb.locations);
//! let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
//! assert!(report.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
mod env;
pub mod locations;
mod substrate;
pub mod workflows;

pub use env::{arm_positions, footprints, rulebase_for, RabitStage, Testbed};
pub use locations::{locations, ArmLocations, DosingLocations, Locations};
pub use substrate::TestbedSubstrate;
