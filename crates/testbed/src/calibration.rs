//! The common-frame calibration experiment (§IV, category 2).
//!
//! "Transforming both robot arms' coordinate systems to a global
//! coordinate system using a transformation matrix resulted in an average
//! error of 3 cm between the expected and computed positions."
//!
//! This module reproduces that experiment: sample correspondence points
//! observed by both arms with each arm's positional noise, fit the
//! least-squares rigid transform, and report the residual error. With
//! testbed-grade arms (σ ≈ 1.3 cm per axis per arm) the mean residual
//! lands near the paper's 3 cm, which is why RABIT multiplexes arm motion
//! instead of unifying frames.

use rabit_geometry::calibrate::{fit_rigid_transform, FitResult, FitTransformError};
use rabit_geometry::noise::PositionNoise;
use rabit_geometry::{Mat3, Pose, Vec3};
use rabit_util::Rng;

/// Parameters of the calibration experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationParams {
    /// Number of correspondence points.
    pub points: usize,
    /// Per-axis positional noise of each arm's observations (metres).
    /// The paper attributes the error to "the lower precision of testbed
    /// robots and variations in their gripper sizes".
    pub sigma: f64,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
}

impl Default for CalibrationParams {
    fn default() -> Self {
        // σ = 13 mm per axis per arm. Residuals combine both arms' noise:
        // mean 3D error ≈ √2·σ·√(8/π) ≈ 2.9 cm — the paper's ~3 cm.
        CalibrationParams {
            points: 12,
            sigma: 0.013,
            seed: 42,
        }
    }
}

/// The true (unknown to the experimenter) transform between Ned2's and
/// ViperX's frames on our testbed.
pub fn true_frame_transform() -> Pose {
    Pose::new(
        Mat3::rotation_z(std::f64::consts::PI),
        Vec3::new(0.85, 0.0, 0.0),
    )
}

/// Runs the calibration experiment once; returns the fit (with its
/// residual statistics).
///
/// # Errors
///
/// Returns the underlying [`FitTransformError`] if the sampled points are
/// degenerate (practically impossible for `points ≥ 4` over the deck).
pub fn calibration_experiment(params: &CalibrationParams) -> Result<FitResult, FitTransformError> {
    let mut rng = Rng::seed_from_u64(params.seed);
    let truth = true_frame_transform();
    let noise = PositionNoise::gaussian(params.sigma);

    let mut ned2_points = Vec::with_capacity(params.points);
    let mut viperx_points = Vec::with_capacity(params.points);
    for _ in 0..params.points {
        // A shared physical marker somewhere over the deck.
        let in_ned2_frame = Vec3::new(
            rng.random_range(0.15..0.45),
            rng.random_range(-0.3..0.3),
            rng.random_range(0.05..0.35),
        );
        let in_viperx_frame = truth.transform_point(in_ned2_frame);
        // Each arm touches the marker and reports its own, noisy reading.
        ned2_points.push(noise.perturb(in_ned2_frame, &mut rng));
        viperx_points.push(noise.perturb(in_viperx_frame, &mut rng));
    }
    fit_rigid_transform(&ned2_points, &viperx_points)
}

/// Averages the mean residual over `trials` independent experiments —
/// the statistic reported as "an average error of 3 cm".
pub fn mean_error_over_trials(params: &CalibrationParams, trials: usize) -> f64 {
    let mut total = 0.0;
    for t in 0..trials {
        let p = CalibrationParams {
            seed: params.seed.wrapping_add(t as u64),
            ..*params
        };
        total += calibration_experiment(&p)
            .expect("non-degenerate points")
            .mean_error;
    }
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_calibration_is_exact() {
        let p = CalibrationParams {
            sigma: 0.0,
            ..CalibrationParams::default()
        };
        let fit = calibration_experiment(&p).unwrap();
        assert!(fit.mean_error < 1e-9);
        // And it recovers the true transform.
        let truth = true_frame_transform();
        let probe = Vec3::new(0.3, 0.1, 0.2);
        assert!(
            (fit.transform.transform_point(probe) - truth.transform_point(probe)).norm() < 1e-6
        );
    }

    #[test]
    fn testbed_noise_produces_centimetre_scale_error() {
        let err = mean_error_over_trials(&CalibrationParams::default(), 20);
        // The paper's ~3 cm, within a generous band.
        assert!(
            err > 0.02 && err < 0.045,
            "mean frame error {err:.4} m should be ≈ 3 cm"
        );
    }

    #[test]
    fn error_grows_with_noise() {
        let lo = mean_error_over_trials(
            &CalibrationParams {
                sigma: 0.002,
                ..CalibrationParams::default()
            },
            10,
        );
        let hi = mean_error_over_trials(
            &CalibrationParams {
                sigma: 0.02,
                ..CalibrationParams::default()
            },
            10,
        );
        assert!(hi > lo * 3.0, "noise {lo:.4} → {hi:.4} should scale up");
    }

    #[test]
    fn experiment_is_deterministic_given_seed() {
        let p = CalibrationParams::default();
        let a = calibration_experiment(&p).unwrap();
        let b = calibration_experiment(&p).unwrap();
        assert_eq!(a.mean_error, b.mean_error);
    }
}
