//! Regenerates the §V-A pilot study: participant P's configuration
//! mistakes (caught by the executable schema the paper wished it had) and
//! P's unsafe scenarios (all detected by RABIT).

use rabit_bench::report::{mark, render_table};
use rabit_config::template::pilot_corpus;
use rabit_config::{validate, IssueLevel, LabConfig};
use rabit_devices::{ActionKind, Command};
use rabit_geometry::Vec3;
use rabit_testbed::{RabitStage, Testbed};
use rabit_tracer::{Tracer, Workflow};

fn main() {
    println!("§V-A pilot study — part 1: configuration-entry errors\n");
    let mut rows = Vec::new();
    for e in pilot_corpus() {
        let caught = match LabConfig::from_json(&e.json) {
            Err(parse_err) => format!("JSON parser: {}", first_line(&parse_err.to_string())),
            Ok(cfg) => {
                let errors: Vec<String> = validate(&cfg)
                    .into_iter()
                    .filter(|i| i.level == IssueLevel::Error)
                    .map(|i| i.to_string())
                    .collect();
                if errors.is_empty() {
                    "NOT CAUGHT".to_string()
                } else {
                    format!("validator: {}", first_line(&errors[0]))
                }
            }
        };
        rows.push(vec![e.name.to_string(), e.description.to_string(), caught]);
    }
    println!(
        "{}",
        render_table(&["Mistake", "What P did", "Caught by"], &rows)
    );
    println!(
        "Paper: P's sign error and JSON syntax errors cost ~4 hours of debugging;\n\
         \"more precise JSON schema specifications could have helped avoid sign errors\".\n"
    );

    println!("§V-A pilot study — part 2: P's unsafe scenarios\n");
    let mut rows = Vec::new();
    for (name, outcome) in [
        (
            "reduce the grid pickup height (collide with the grid)",
            grid_height_scenario(),
        ),
        (
            "dose more solid than the vial can hold",
            overdose_scenario(),
        ),
    ] {
        rows.push(vec![name.to_string(), mark(outcome)]);
    }
    println!(
        "{}",
        render_table(&["Scenario attempted by P", "Detected"], &rows)
    );
    println!("Paper: \"All unsafe scenarios attempted by P were detected successfully by RABIT.\"");
}

fn first_line(s: &str) -> String {
    s.lines().next().unwrap_or("").to_string()
}

/// P "reduced the height of the location at which [the arm] is supposed
/// to be when picking up the vial from the grid".
fn grid_height_scenario() -> bool {
    let mut tb = Testbed::new();
    let wf = Workflow::new("p_grid_height")
        .go_to_sleep("ned2")
        .go_home("viperx")
        .then(Command::new(
            "viperx",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.537, 0.018, 0.04),
            },
        ));
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    report.alert.is_some_and(|a| a.is_rabit_detection())
}

/// P "tried to have the dosing device add more solid than the vial could
/// hold".
fn overdose_scenario() -> bool {
    let mut tb = Testbed::new();
    let wf =
        Workflow::new("p_overdose")
            .go_to_sleep("ned2")
            .dose_solid("dosing_device", 40.0, "vial");
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    report.alert.is_some_and(|a| a.is_rabit_detection())
}
