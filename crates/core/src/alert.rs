//! Alerts: how RABIT reports detected unsafe behaviour.

use crate::lab::LabError;
use crate::trajcheck::CollisionReport;
use rabit_devices::{Command, StateDiff};
use rabit_rulebase::Violation;
use std::fmt;

/// An alert raised by the Fig. 2 algorithm. Each variant corresponds to
/// one `alertAndStop` site.
///
/// Marked `#[non_exhaustive]`: future PRs may add alert classes (e.g.
/// resource-budget alerts), so downstream matches need a wildcard arm.
/// `Alert` also implements [`std::error::Error`], composing with the
/// lab layer's [`LabError`] via `source()`.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// `alertAndStop("Invalid Command!")` — a precondition failed
    /// (Fig. 2, Lines 6-7).
    InvalidCommand {
        /// The rejected command.
        command: Command,
        /// The violated rules.
        violations: Vec<Violation>,
    },
    /// `alertAndStop("Invalid trajectory!")` — the Extended Simulator
    /// found a collision along the arm's path (Fig. 2, Lines 8-10).
    InvalidTrajectory {
        /// The rejected command.
        command: Command,
        /// What the trajectory would hit, where, and with which link.
        collision: CollisionReport,
    },
    /// `alertAndStop("Device malfunction!")` — `S_actual ≠ S_expected`
    /// after execution (Fig. 2, Lines 14-15).
    DeviceMalfunction {
        /// The command that executed.
        command: Command,
        /// The differing state variables.
        diffs: Vec<StateDiff>,
    },
    /// The device itself refused or faulted (firmware limit, Ned2
    /// trajectory exception). Not a RABIT detection, but it halts the
    /// experiment the same way.
    DeviceFault {
        /// The failing command.
        command: Command,
        /// The lab's error (unknown device, firmware refusal, or an
        /// injected crash window).
        error: LabError,
    },
}

impl Alert {
    /// The command that triggered the alert.
    pub fn command(&self) -> &Command {
        match self {
            Alert::InvalidCommand { command, .. }
            | Alert::InvalidTrajectory { command, .. }
            | Alert::DeviceMalfunction { command, .. }
            | Alert::DeviceFault { command, .. } => command,
        }
    }

    /// Returns `true` if this alert came from RABIT's own checks (as
    /// opposed to a device firmware refusal). The evaluation counts only
    /// RABIT detections toward its detection rate.
    pub fn is_rabit_detection(&self) -> bool {
        !matches!(self, Alert::DeviceFault { .. })
    }

    /// The paper's alert message for this variant.
    pub fn headline(&self) -> &'static str {
        match self {
            Alert::InvalidCommand { .. } => "Invalid Command!",
            Alert::InvalidTrajectory { .. } => "Invalid trajectory!",
            Alert::DeviceMalfunction { .. } => "Device malfunction!",
            Alert::DeviceFault { .. } => "Device fault",
        }
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alert::InvalidCommand {
                command,
                violations,
            } => {
                write!(f, "Invalid Command! {command}: ")?;
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            Alert::InvalidTrajectory { command, collision } => {
                write!(f, "Invalid trajectory! {command}: {collision}")
            }
            Alert::DeviceMalfunction { command, diffs } => {
                write!(f, "Device malfunction! after {command}: ")?;
                for (i, d) in diffs.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
            Alert::DeviceFault { command, error } => {
                write!(f, "Device fault during {command}: {error}")
            }
        }
    }
}

impl std::error::Error for Alert {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Alert::DeviceFault { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// What RABIT does when an alert fires. The Hein Lab's recommendation is
/// to stop preemptively; the paper notes "a fail-safe scenario may be
/// recommended instead" when stopping itself is dangerous, e.g. an arm
/// left holding a volatile substance (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopPolicy {
    /// Halt the experiment immediately (the deployed default).
    #[default]
    StopImmediately,
    /// Halt, then park every robot arm at its sleep position so nothing
    /// is left dangling mid-air.
    FailSafe,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::{ActionKind, DeviceId};
    use rabit_rulebase::RuleId;

    fn cmd() -> Command {
        Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        )
    }

    #[test]
    fn alert_accessors() {
        let a = Alert::InvalidCommand {
            command: cmd(),
            violations: vec![Violation {
                rule: RuleId::General(1),
                message: "closed".into(),
            }],
        };
        assert_eq!(a.command(), &cmd());
        assert!(a.is_rabit_detection());
        assert_eq!(a.headline(), "Invalid Command!");
        assert!(a.to_string().contains("general:1"));
    }

    #[test]
    fn trajectory_and_malfunction_alerts() {
        let t = Alert::InvalidTrajectory {
            command: cmd(),
            collision: CollisionReport::coarse("grid", 0.25),
        };
        assert!(t.is_rabit_detection());
        assert!(t.to_string().contains("Invalid trajectory"));
        // The structured payload is matchable without string parsing.
        if let Alert::InvalidTrajectory { collision, .. } = &t {
            assert_eq!(collision.device.as_str(), "grid");
            assert_eq!(collision.at_fraction, 0.25);
        }
        let m = Alert::DeviceMalfunction {
            command: cmd(),
            diffs: vec![],
        };
        assert!(m.is_rabit_detection());
        assert_eq!(m.headline(), "Device malfunction!");
    }

    #[test]
    fn device_faults_are_not_rabit_detections() {
        let fault = Alert::DeviceFault {
            command: cmd(),
            error: LabError::Device(rabit_devices::DeviceError::TrajectoryFault {
                device: DeviceId::new("ned2"),
                reason: "out of reach".into(),
            }),
        };
        assert!(!fault.is_rabit_detection());
        assert!(fault.to_string().contains("out of reach"));
        // Alert is an error type whose source chains into the lab error.
        use std::error::Error;
        assert!(fault.source().is_some());
        let blocked = Alert::InvalidCommand {
            command: cmd(),
            violations: vec![],
        };
        assert!(blocked.source().is_none());
    }

    #[test]
    fn default_policy_is_stop() {
        assert_eq!(StopPolicy::default(), StopPolicy::StopImmediately);
    }
}
