//! Lab device models for RABIT.
//!
//! The paper classifies every piece of equipment in a self-driving lab
//! into four device types (§II-A):
//!
//! 1. **Container** — "any object that can contain a substance … and
//!    typically has a stopper";
//! 2. **Robot Arm** — "a system that moves from one location to another
//!    and has the ability to pick up, move, and place objects";
//! 3. **Dosing System** — "any system used for adding substances into a
//!    container during the experiment";
//! 4. **Action Device** — "any system with 'active/inactive' states".
//!
//! Each device type carries *state variables* (e.g. `deviceDoorStatus`,
//! `robotArmHolding`) and *actions* with pre- and postconditions
//! (Table II). This crate provides:
//!
//! * the vocabulary — [`DeviceId`], [`DeviceType`], [`StateKey`],
//!   [`Value`], [`ActionKind`], [`Command`];
//! * lab state snapshots — [`DeviceState`], [`LabState`] (the algorithm's
//!   `S_current` / `S_expected` / `S_actual`);
//! * the runtime [`Device`] trait with status commands, simulated command
//!   latencies, and malfunction injection;
//! * concrete models of every Hein-Lab device: [`Vial`], [`Grid`],
//!   [`DosingDevice`], [`SyringePump`], [`Hotplate`], [`Centrifuge`],
//!   [`Thermoshaker`], and the logical [`RobotArm`].
//!
//! # Example
//!
//! ```
//! use rabit_devices::{ActionKind, Device, DosingDevice};
//! use rabit_geometry::{Aabb, Vec3};
//!
//! let footprint = Aabb::new(Vec3::ZERO, Vec3::new(0.2, 0.2, 0.3));
//! let mut doser = DosingDevice::new("dosing_device", footprint);
//! doser.execute(&ActionKind::SetDoor { open: true })?;
//! assert!(doser.door_open());
//! # Ok::<(), rabit_devices::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action_devices;
mod command;
mod containers;
mod device;
mod dosing;
mod id;
pub mod multidoor;
pub mod physical;
mod robot;
mod sensor;
mod state;
mod value;

pub use action_devices::{Centrifuge, Hotplate, Thermoshaker};
pub use command::{ActionClass, ActionKind, Command, Substance};
pub use containers::{Grid, Vial};
pub use device::{Device, DeviceError, LatencyModel, Malfunction};
pub use dosing::{DosingDevice, SyringePump};
pub use id::{DeviceId, DeviceType};
pub use multidoor::MultiDoorDevice;
pub use robot::RobotArm;
pub use sensor::{ProximitySensor, OCCUPIED_KEY};
pub use state::{DeviceState, LabState, StateDiff};
pub use value::{StateKey, Value};
