//! Arm models: a DH chain plus the physical attributes RABIT's safety
//! checks need — joint limits, link radii, a gripper, and held objects.

use crate::chain::{DhChain, JointConfig, JointLimits};
use crate::sweep::MotionBound;
use rabit_geometry::{Aabb, Capsule, Vec3};

/// The union of the capsules' axis-aligned bounds, or `None` for an empty
/// set. This is the whole-arm probe of the certificate query: everything
/// the arm occupies (links, gripper, held object) lies inside it, so a
/// world free-distance measured around it lower-bounds every per-capsule
/// clearance at once.
pub fn capsules_union_bound(capsules: &[Capsule]) -> Option<Aabb> {
    let mut probe: Option<Aabb> = None;
    for c in capsules {
        let b = c.bounding_box();
        probe = Some(probe.map_or(b, |p| p.union(&b)));
    }
    probe
}

/// Gripper open/closed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GripperState {
    /// Gripper jaws open (cannot hold anything).
    Open,
    /// Gripper jaws closed (may be holding an object).
    Closed,
}

/// An object held by the gripper. Holding an object *changes the arm's
/// effective dimensions* — the oversight behind the paper's Bug D, where
/// "the vial collided with the platform before RABIT could raise an alarm".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeldObject {
    /// Radius of the held object (metres), e.g. a vial ≈ 0.014.
    pub radius: f64,
    /// How far the object extends below the tool flange (metres),
    /// e.g. a vial hanging 0.05 below the gripper.
    pub length_below_gripper: f64,
}

impl HeldObject {
    /// A standard 20 mL scintillation vial as used in the Hein Lab.
    pub fn vial() -> Self {
        HeldObject {
            radius: 0.014,
            length_below_gripper: 0.06,
        }
    }

    /// Creates a held-object description.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is negative or non-finite.
    pub fn new(radius: f64, length_below_gripper: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "held object radius must be finite and non-negative, got {radius}"
        );
        assert!(
            length_below_gripper.is_finite() && length_below_gripper >= 0.0,
            "held object length must be finite and non-negative, got {length_below_gripper}"
        );
        HeldObject {
            radius,
            length_below_gripper,
        }
    }
}

/// A complete 6-axis arm model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmModel {
    name: String,
    chain: DhChain,
    limits: [JointLimits; 6],
    /// Capsule radius for each of the six links (metres).
    link_radii: [f64; 6],
    /// Length of the gripper/tool beyond the last joint frame (metres).
    gripper_length: f64,
    /// Radius of the gripper capsule (metres).
    gripper_radius: f64,
    home: JointConfig,
    sleep: JointConfig,
}

impl ArmModel {
    /// Assembles an arm model.
    ///
    /// # Panics
    ///
    /// Panics if any radius or the gripper length is negative/non-finite.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        chain: DhChain,
        limits: [JointLimits; 6],
        link_radii: [f64; 6],
        gripper_length: f64,
        gripper_radius: f64,
        home: JointConfig,
        sleep: JointConfig,
    ) -> Self {
        for r in &link_radii {
            assert!(
                r.is_finite() && *r >= 0.0,
                "link radius must be finite and non-negative"
            );
        }
        assert!(
            gripper_length.is_finite() && gripper_length >= 0.0,
            "gripper length must be finite and non-negative"
        );
        assert!(
            gripper_radius.is_finite() && gripper_radius >= 0.0,
            "gripper radius must be finite and non-negative"
        );
        ArmModel {
            name: name.into(),
            chain,
            limits,
            link_radii,
            gripper_length,
            gripper_radius,
            home,
            sleep,
        }
    }

    /// The arm's name ("UR3e", "ViperX", "Ned2", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying DH chain.
    pub fn chain(&self) -> &DhChain {
        &self.chain
    }

    /// Remounts the arm at a different base pose.
    pub fn with_base(mut self, base: rabit_geometry::Pose) -> Self {
        self.chain = self.chain.with_base(base);
        self
    }

    /// Joint limits.
    pub fn limits(&self) -> &[JointLimits; 6] {
        &self.limits
    }

    /// The arm's home (ready) configuration.
    pub fn home_configuration(&self) -> JointConfig {
        self.home
    }

    /// The arm's sleep (stowed) configuration — where an idle arm parks so
    /// that it can be modelled "as 3D cuboid spaces (identically to other
    /// devices)" during time multiplexing.
    pub fn sleep_configuration(&self) -> JointConfig {
        self.sleep
    }

    /// Returns `true` if `config` respects every joint limit.
    pub fn within_limits(&self, config: &JointConfig) -> bool {
        self.limits
            .iter()
            .zip(config.angles().iter())
            .all(|(l, a)| l.contains(*a))
    }

    /// Maximum reach from the base (metres).
    pub fn max_reach(&self) -> f64 {
        self.chain.max_reach() + self.gripper_length
    }

    /// World-space tool-center-point (gripper tip) for a configuration.
    pub fn tool_position(&self, config: &JointConfig) -> Vec3 {
        let ee = self.chain.end_effector_pose(config.angles());
        ee.transform_point(Vec3::new(0.0, 0.0, self.gripper_length))
    }

    /// The world-space capsule set occupied by the arm in `config`:
    /// six link capsules plus the gripper capsule. `held` inflates the
    /// gripper capsule and extends it downward by the object's length —
    /// the paper's post-Bug-D geometry extension.
    pub fn link_capsules(&self, config: &JointConfig, held: Option<&HeldObject>) -> Vec<Capsule> {
        let mut out = Vec::with_capacity(7);
        self.link_capsules_into(config, held, &mut out);
        out
    }

    /// Like [`ArmModel::link_capsules`], but fills a caller-owned buffer
    /// so a sweep over many samples reuses one allocation. Clears `out`
    /// first.
    pub fn link_capsules_into(
        &self,
        config: &JointConfig,
        held: Option<&HeldObject>,
        out: &mut Vec<Capsule>,
    ) {
        let poses = self.chain.joint_poses(config.angles());
        self.capsules_from_poses(&poses, held, out);
    }

    /// Builds the capsule set from already-computed joint poses (one full
    /// forward-kinematics pass), e.g. from [`DhChain::joint_poses`] or a
    /// window of [`DhChain::joint_poses_batch`]. Clears `out` first.
    /// `link_capsules_into(q, …)` is exactly
    /// `capsules_from_poses(&chain.joint_poses(q), …)`.
    pub fn capsules_from_poses(
        &self,
        poses: &[rabit_geometry::Pose; 7],
        held: Option<&HeldObject>,
        out: &mut Vec<Capsule>,
    ) {
        out.clear();
        for i in 0..6 {
            out.push(Capsule::new(
                poses[i].translation,
                poses[i + 1].translation,
                self.link_radii[i],
            ));
        }
        let wrist = poses[6].translation;
        let tip = poses[6].transform_point(Vec3::new(0.0, 0.0, self.gripper_length));
        let mut gripper = Capsule::new(wrist, tip, self.gripper_radius);
        if let Some(obj) = held {
            // Extend the gripper capsule along its axis by the held
            // object's length, and widen it by the object's radius.
            let axis = (tip - wrist).normalized().unwrap_or(Vec3::Z * -1.0);
            let extended_tip = tip + axis * obj.length_below_gripper;
            gripper = Capsule::new(wrist, extended_tip, self.gripper_radius.max(obj.radius));
        }
        out.push(gripper);
    }

    /// Precomputes the Lipschitz motion bound for this arm (optionally
    /// carrying `held`): for each joint, the maximum Cartesian displacement
    /// of every downstream capsule per radian of joint motion, from the
    /// cumulative rigid link lengths `√(a² + d²)` of the DH rows. See
    /// [`MotionBound`] for the soundness argument.
    pub fn motion_bound(&self, held: Option<&HeldObject>) -> MotionBound {
        let mut lens = [0.0; 6];
        for (len, p) in lens.iter_mut().zip(self.chain.params().iter()) {
            *len = (p.a * p.a + p.d * p.d).sqrt();
        }
        let tool = self.gripper_length + held.map_or(0.0, |o| o.length_below_gripper);
        let mut reach = [[0.0; crate::sweep::CAPSULE_COUNT]; 6];
        #[allow(clippy::needless_range_loop)] // triangular fill over joint index pairs
        for j in 0..6 {
            let mut acc = 0.0;
            for l in j..6 {
                acc += lens[l];
                reach[j][l] = acc;
            }
            reach[j][6] = acc + tool;
        }
        let mut wraps = [false; 6];
        for (w, l) in wraps.iter_mut().zip(self.limits.iter()) {
            *w = l.spans_full_circle();
        }
        MotionBound::new(reach, wraps)
    }

    /// Lowest point (world z) swept by the arm body in `config` — a quick
    /// platform-collision heuristic used in tests.
    pub fn lowest_point(&self, config: &JointConfig, held: Option<&HeldObject>) -> f64 {
        self.link_capsules(config, held)
            .iter()
            .map(|c| c.segment.a.z.min(c.segment.b.z) - c.radius)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::DhParam;
    use rabit_geometry::Pose;

    fn test_arm() -> ArmModel {
        let chain = DhChain::new(
            [
                DhParam::new(0.0, 0.15, std::f64::consts::FRAC_PI_2, 0.0),
                DhParam::new(0.25, 0.0, 0.0, 0.0),
                DhParam::new(0.2, 0.0, 0.0, 0.0),
                DhParam::new(0.0, 0.1, std::f64::consts::FRAC_PI_2, 0.0),
                DhParam::new(0.0, 0.08, -std::f64::consts::FRAC_PI_2, 0.0),
                DhParam::new(0.0, 0.06, 0.0, 0.0),
            ],
            Pose::IDENTITY,
        );
        ArmModel::new(
            "TestArm",
            chain,
            [JointLimits::full_circle(); 6],
            [0.05, 0.04, 0.04, 0.03, 0.03, 0.02],
            0.1,
            0.02,
            JointConfig::ZERO,
            JointConfig::new([0.0, -1.5, 1.2, 0.0, 0.3, 0.0]),
        )
    }

    #[test]
    fn capsule_count_and_radii() {
        let arm = test_arm();
        let caps = arm.link_capsules(&JointConfig::ZERO, None);
        assert_eq!(caps.len(), 7);
        assert_eq!(caps[0].radius, 0.05);
        assert_eq!(caps[6].radius, 0.02);
    }

    #[test]
    fn capsules_are_connected() {
        let arm = test_arm();
        let caps = arm.link_capsules(&arm.sleep_configuration(), None);
        for w in caps.windows(2) {
            assert!(
                (w[0].segment.b - w[1].segment.a).norm() < 1e-9,
                "links must chain end-to-start"
            );
        }
    }

    #[test]
    fn held_object_extends_gripper() {
        let arm = test_arm();
        let vial = HeldObject::vial();
        let bare = arm.link_capsules(&JointConfig::ZERO, None);
        let held = arm.link_capsules(&JointConfig::ZERO, Some(&vial));
        let bare_grip = &bare[6];
        let held_grip = &held[6];
        assert!(held_grip.segment.length() > bare_grip.segment.length());
        assert!(held_grip.radius >= bare_grip.radius);
        // Lowest point drops (or stays) when holding an object.
        assert!(
            arm.lowest_point(&JointConfig::ZERO, Some(&vial))
                <= arm.lowest_point(&JointConfig::ZERO, None) + 1e-12
        );
    }

    #[test]
    fn tool_position_is_gripper_tip() {
        let arm = test_arm();
        let caps = arm.link_capsules(&JointConfig::ZERO, None);
        let tip = arm.tool_position(&JointConfig::ZERO);
        assert!((caps[6].segment.b - tip).norm() < 1e-9);
    }

    #[test]
    fn limits_checking() {
        let chain = test_arm().chain().clone();
        let arm = ArmModel::new(
            "Limited",
            chain,
            [JointLimits::new(-1.0, 1.0); 6],
            [0.02; 6],
            0.05,
            0.01,
            JointConfig::ZERO,
            JointConfig::ZERO,
        );
        assert!(arm.within_limits(&JointConfig::ZERO));
        assert!(!arm.within_limits(&JointConfig::ZERO.with_angle(2, 1.5)));
    }

    #[test]
    fn reach_includes_gripper() {
        let arm = test_arm();
        assert!(arm.max_reach() > arm.chain().max_reach());
    }

    #[test]
    fn remounting_moves_capsules() {
        let arm = test_arm().with_base(Pose::from_translation(Vec3::new(1.0, 0.0, 0.0)));
        let caps = arm.link_capsules(&JointConfig::ZERO, None);
        assert!((caps[0].segment.a - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-9);
        assert_eq!(arm.name(), "TestArm");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_held_object_rejected() {
        let _ = HeldObject::new(-0.01, 0.05);
    }
}
