//! The shared envelope for `BENCH_*.json` artifacts.
//!
//! Every benchmark binary that persists results writes one JSON file with
//! the same top-level shape, so downstream tooling (the README perf
//! table, the CI schema check) can consume any artifact without knowing
//! which bench produced it:
//!
//! ```json
//! {
//!   "name": "sweep",
//!   "config": { "quick_mode": false, "laps": 24 },
//!   "results": { "...": "bench-specific payload" }
//! }
//! ```
//!
//! * `name` — the bench binary's name (non-empty string);
//! * `config` — the knobs the run was configured with (object);
//! * `results` — the measured payload (object);
//! * `kind` — optional envelope kind. Absent or `"bench"` means the
//!   generic payload above; `"campaign"` marks a campaign-runner
//!   artifact, whose `results` must carry a `trials` array (objects
//!   with string `trial_id` and `status`) and a `summary` object with a
//!   numeric `done` count; `"service"` marks a rule-service churn
//!   artifact, whose `results` must carry numeric `tenants` (≥ 4),
//!   `commands_per_sec` (≥ [`SERVICE_MIN_CMDS_PER_SEC`] in full mode),
//!   `p50_check_latency_us` / `p99_check_latency_us`, and the broker
//!   backpressure counters (see `validate_service_results`); `"rad"`
//!   marks a streaming-mining artifact,
//!   whose `results` must carry the streaming throughput and drift
//!   fields (see `validate_rad_results`) and, in full mode, clear the
//!   [`RAD_MIN_COMMANDS`] / [`RAD_MIN_COMMANDS_PER_SEC`] floors.
//!   Unknown kinds are rejected.
//!
//! [`write_artifact`] builds and writes the envelope; [`validate`]
//! checks an already-parsed artifact (the `bench_schema` binary runs it
//! over every `BENCH_*.json` in the repository).

use rabit_util::Json;

/// Builds the `{name, config, results}` envelope.
pub fn envelope(name: &str, config: Json, results: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("config", config),
        ("results", results),
    ])
}

/// Builds the envelope with an explicit `kind` tag.
pub fn envelope_with_kind(name: &str, kind: &str, config: Json, results: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("kind", Json::Str(kind.to_string())),
        ("config", config),
        ("results", results),
    ])
}

/// Checks that `json` is a valid bench artifact envelope: a top-level
/// object carrying a non-empty string `name`, an object `config`, and an
/// object `results`. Extra top-level keys are allowed. When a `kind` tag
/// is present it is dispatched on: `"bench"` adds nothing, `"campaign"`
/// additionally validates the campaign payload, anything else fails.
///
/// Generic (non-campaign) artifacts named `"sweep"` are additionally
/// held to the sweep bench's regression contract — see
/// `validate_sweep_results` in this module.
pub fn validate(json: &Json) -> Result<(), String> {
    if json.as_obj().is_none() {
        return Err("top level is not an object".to_string());
    }
    match json.get("name").and_then(Json::as_str) {
        None => return Err("missing or non-string \"name\"".to_string()),
        Some("") => return Err("\"name\" is empty".to_string()),
        Some(_) => {}
    }
    for key in ["config", "results"] {
        match json.get(key) {
            None => return Err(format!("missing \"{key}\"")),
            Some(v) if v.as_obj().is_none() => return Err(format!("\"{key}\" is not an object")),
            Some(_) => {}
        }
    }
    let generic = match json.get("kind") {
        None => true,
        Some(kind) => match kind.as_str() {
            Some("bench") => true,
            Some("campaign") => {
                validate_campaign_results(json.get("results").unwrap_or(&Json::Null))?;
                false
            }
            Some("service") => {
                validate_service_results(
                    json.get("config").unwrap_or(&Json::Null),
                    json.get("results").unwrap_or(&Json::Null),
                )?;
                false
            }
            Some("rad") => {
                validate_rad_results(
                    json.get("config").unwrap_or(&Json::Null),
                    json.get("results").unwrap_or(&Json::Null),
                )?;
                false
            }
            Some(other) => return Err(format!("unknown envelope kind \"{other}\"")),
            None => return Err("\"kind\" is not a string".to_string()),
        },
    };
    if generic && json.get("name").and_then(Json::as_str) == Some("sweep") {
        validate_sweep_results(
            json.get("config").unwrap_or(&Json::Null),
            json.get("results").unwrap_or(&Json::Null),
        )?;
    }
    Ok(())
}

/// Minimum `wall_speedup` a full-mode (`quick_mode: false`) sweep
/// artifact must carry: the batched SoA kernel with whole-arm
/// certificates must hold at least this wall-clock advantage over dense
/// sampling, or CI's schema check fails the artifact as a performance
/// regression. (The bench targets ≥2×; the gate leaves headroom for
/// noisy machines.)
pub const SWEEP_MIN_WALL_SPEEDUP: f64 = 1.5;

/// The sweep bench's regression contract, checked on every `"sweep"`
/// artifact CI sees:
///
/// * `results.dense` / `results.adaptive` / `results.batched` are
///   objects each carrying the numeric kernel counters
///   (`wall_seconds`, `samples_checked`, `samples_skipped`,
///   `distance_queries`, `distance_evals_batched`,
///   `certificate_spans`);
/// * `results.wall_speedup` is numeric, and at least
///   [`SWEEP_MIN_WALL_SPEEDUP`] when `config.quick_mode` is `false`
///   (quick smoke runs measure too little wall time to gate on).
fn validate_sweep_results(config: &Json, results: &Json) -> Result<(), String> {
    const COUNTERS: [&str; 6] = [
        "wall_seconds",
        "samples_checked",
        "samples_skipped",
        "distance_queries",
        "distance_evals_batched",
        "certificate_spans",
    ];
    for mode in ["dense", "adaptive", "batched"] {
        let block = results
            .get(mode)
            .ok_or_else(|| format!("sweep artifact missing \"results.{mode}\""))?;
        if block.as_obj().is_none() {
            return Err(format!("\"results.{mode}\" is not an object"));
        }
        for key in COUNTERS {
            if block.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!(
                    "sweep \"results.{mode}\" missing numeric \"{key}\""
                ));
            }
        }
    }
    let speedup = results
        .get("wall_speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| "sweep artifact missing numeric \"results.wall_speedup\"".to_string())?;
    let quick = config.get("quick_mode").and_then(Json::as_bool);
    if quick == Some(false) && speedup < SWEEP_MIN_WALL_SPEEDUP {
        return Err(format!(
            "sweep wall_speedup {speedup:.3} below regression gate {SWEEP_MIN_WALL_SPEEDUP}"
        ));
    }
    Ok(())
}

/// Minimum tenant count a `"service"` artifact must report: the bench's
/// point is multi-tenant churn, so a run that exercised fewer labs than
/// this is not measuring the contended path.
pub const SERVICE_MIN_TENANTS: f64 = 4.0;

/// Minimum commit throughput (`commands_per_sec`) a full-mode
/// (`quick_mode: false`) `"service"` artifact must report. The sharded
/// broker with batched admission commits several million commands per
/// second on the reference machine; the floor sits at the ISSUE's
/// acceptance target — ~8× the old one-ticket-per-command broker's
/// 129k cmd/s — so CI fails any change that quietly reverts the
/// amortisation. (Quick smoke runs commit too few commands to gate on.)
pub const SERVICE_MIN_CMDS_PER_SEC: f64 = 1_000_000.0;

/// The rule-service payload shape: numeric `tenants` (at least
/// [`SERVICE_MIN_TENANTS`]), commit throughput `commands_per_sec` (at
/// least [`SERVICE_MIN_CMDS_PER_SEC`] in full mode), the p50/p99 of
/// per-command check latency under churn in microseconds, and the
/// broker's backpressure counters (`queue_depth_peak`, `shed_commands`,
/// `worker_parks`, `worker_steals`) proving the observability surface
/// is wired through.
fn validate_service_results(config: &Json, results: &Json) -> Result<(), String> {
    for key in [
        "tenants",
        "commands_per_sec",
        "p50_check_latency_us",
        "p99_check_latency_us",
        "queue_depth_peak",
        "shed_commands",
        "worker_parks",
        "worker_steals",
    ] {
        if results.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("service artifact missing numeric \"{key}\""));
        }
    }
    let tenants = results.get("tenants").and_then(Json::as_f64).unwrap();
    if tenants < SERVICE_MIN_TENANTS {
        return Err(format!(
            "service artifact ran {tenants} tenants, below the {SERVICE_MIN_TENANTS} multi-tenant floor"
        ));
    }
    if config.get("quick_mode").and_then(Json::as_bool) == Some(false) {
        let rate = results
            .get("commands_per_sec")
            .and_then(Json::as_f64)
            .unwrap();
        if rate < SERVICE_MIN_CMDS_PER_SEC {
            return Err(format!(
                "service throughput {rate:.0} cmd/s below the {SERVICE_MIN_CMDS_PER_SEC} regression floor"
            ));
        }
    }
    Ok(())
}

/// Minimum synthetic commands a full-mode `"rad"` artifact must have
/// streamed through the online miner: the bench's claim is
/// production-scale mining, and the ISSUE acceptance floor is 100M
/// commands in one pass.
pub const RAD_MIN_COMMANDS: f64 = 100_000_000.0;

/// Minimum streaming throughput (commands/second through generation +
/// online mining) a full-mode `"rad"` artifact must sustain. Set to
/// roughly a fifth of what the release build measures on the reference
/// machine, so the gate catches order-of-magnitude regressions (an
/// accidental corpus materialisation, a per-event allocation) without
/// flaking on noisy CI hosts.
pub const RAD_MIN_COMMANDS_PER_SEC: f64 = 2_000_000.0;

/// The streaming-mining payload shape, checked on every `"rad"`
/// artifact:
///
/// * numeric `commands`, `commands_per_sec`, `peak_live_bytes`,
///   `rules_mined`, the four drift-scoring fields
///   (`precision_before_drift` / `recall_before_drift` /
///   `precision_after_drift` / `recall_after_drift`), and the promotion
///   pair `promoted_epoch` / `fleet_rulebase_epoch`;
/// * `fleet_rulebase_epoch` is at least 1 and equals `promoted_epoch` —
///   the fleet really validated against the epoch the mined rules were
///   promoted into;
/// * in full mode (`config.quick_mode: false`), `commands` clears
///   [`RAD_MIN_COMMANDS`] and `commands_per_sec` clears
///   [`RAD_MIN_COMMANDS_PER_SEC`].
fn validate_rad_results(config: &Json, results: &Json) -> Result<(), String> {
    for key in [
        "commands",
        "commands_per_sec",
        "peak_live_bytes",
        "rules_mined",
        "precision_before_drift",
        "recall_before_drift",
        "precision_after_drift",
        "recall_after_drift",
        "promoted_epoch",
        "fleet_rulebase_epoch",
    ] {
        if results.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("rad artifact missing numeric \"{key}\""));
        }
    }
    let promoted = results
        .get("promoted_epoch")
        .and_then(Json::as_f64)
        .unwrap();
    let fleet = results
        .get("fleet_rulebase_epoch")
        .and_then(Json::as_f64)
        .unwrap();
    if fleet < 1.0 {
        return Err(format!(
            "rad artifact fleet_rulebase_epoch {fleet} never left the static epoch"
        ));
    }
    if fleet != promoted {
        return Err(format!(
            "rad artifact fleet_rulebase_epoch {fleet} != promoted_epoch {promoted}"
        ));
    }
    if config.get("quick_mode").and_then(Json::as_bool) == Some(false) {
        let commands = results.get("commands").and_then(Json::as_f64).unwrap();
        if commands < RAD_MIN_COMMANDS {
            return Err(format!(
                "rad artifact streamed {commands} commands, below the {RAD_MIN_COMMANDS} floor"
            ));
        }
        let rate = results
            .get("commands_per_sec")
            .and_then(Json::as_f64)
            .unwrap();
        if rate < RAD_MIN_COMMANDS_PER_SEC {
            return Err(format!(
                "rad artifact throughput {rate:.0} cmd/s below the {RAD_MIN_COMMANDS_PER_SEC} regression floor"
            ));
        }
    }
    Ok(())
}

/// The campaign-specific payload shape: `results.trials` is an array of
/// objects each carrying a string `trial_id` and `status`, and
/// `results.summary` is an object with a numeric `done`.
fn validate_campaign_results(results: &Json) -> Result<(), String> {
    let trials = match results.get("trials") {
        None => return Err("campaign artifact missing \"results.trials\"".to_string()),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| "\"results.trials\" is not an array".to_string())?,
    };
    for (i, trial) in trials.iter().enumerate() {
        if trial.as_obj().is_none() {
            return Err(format!("trial entry {i} is not an object"));
        }
        for key in ["trial_id", "status"] {
            if trial.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("trial entry {i} missing string \"{key}\""));
            }
        }
    }
    let summary = results
        .get("summary")
        .ok_or_else(|| "campaign artifact missing \"results.summary\"".to_string())?;
    if summary.as_obj().is_none() {
        return Err("\"results.summary\" is not an object".to_string());
    }
    match summary.get("done").and_then(Json::as_f64) {
        None => Err("campaign summary missing numeric \"done\"".to_string()),
        Some(_) => Ok(()),
    }
}

/// Writes the enveloped artifact to `BENCH_<name>.json` in the current
/// directory and prints the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_artifact(name: &str, config: Json, results: Json) {
    write_envelope(name, envelope(name, config, results));
}

/// Writes a kind-tagged artifact to `BENCH_<name>.json` in the current
/// directory and prints the path.
///
/// # Panics
///
/// Panics if the envelope does not validate under its kind (a bench
/// bug) or the file cannot be written.
pub fn write_artifact_with_kind(name: &str, kind: &str, config: Json, results: Json) {
    let json = envelope_with_kind(name, kind, config, results);
    if let Err(err) = validate(&json) {
        panic!("artifact {name} invalid under kind {kind}: {err}");
    }
    write_envelope(name, json);
}

fn write_envelope(name: &str, json: Json) {
    debug_assert!(
        validate(&json).is_ok(),
        "write_artifact builds valid envelopes"
    );
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, json.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_and_validates() {
        let json = envelope(
            "demo",
            Json::obj([("quick_mode", Json::Bool(true))]),
            Json::obj([("speedup", Json::Num(5.0))]),
        );
        validate(&json).expect("fresh envelope is valid");
        let reparsed = Json::parse(&json.to_pretty()).expect("pretty output parses");
        validate(&reparsed).expect("round-tripped envelope is valid");
        assert_eq!(reparsed.get("name").and_then(Json::as_str), Some("demo"));
    }

    #[test]
    fn validate_rejects_malformed_artifacts() {
        let cases = [
            (Json::Num(3.0), "top level"),
            (Json::obj([("config", Json::obj([]))]), "name"),
            (
                Json::obj([("name", Json::Str("x".into())), ("config", Json::obj([]))]),
                "results",
            ),
            (
                Json::obj([
                    ("name", Json::Str("x".into())),
                    ("config", Json::Num(1.0)),
                    ("results", Json::obj([])),
                ]),
                "config",
            ),
            (
                Json::obj([
                    ("name", Json::Str("".into())),
                    ("config", Json::obj([])),
                    ("results", Json::obj([])),
                ]),
                "name",
            ),
        ];
        for (json, expect) in cases {
            let err = validate(&json).expect_err("malformed artifact must fail");
            assert!(
                err.contains(expect),
                "error {err:?} should mention {expect:?}"
            );
        }
    }

    fn campaign_results() -> Json {
        Json::obj([
            (
                "summary",
                Json::obj([("trials", Json::Num(2.0)), ("done", Json::Num(2.0))]),
            ),
            (
                "trials",
                Json::Arr(vec![
                    Json::obj([
                        ("trial_id", Json::Str("t0000-a".into())),
                        ("status", Json::Str("done".into())),
                    ]),
                    Json::obj([
                        ("trial_id", Json::Str("t0001-b".into())),
                        ("status", Json::Str("skipped".into())),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn campaign_kind_validates() {
        let json = envelope_with_kind(
            "detection_matrix",
            "campaign",
            Json::obj([]),
            campaign_results(),
        );
        validate(&json).expect("well-formed campaign artifact is valid");
        // `bench` kind and no kind at all stay generic.
        let plain = envelope_with_kind("demo", "bench", Json::obj([]), Json::obj([]));
        validate(&plain).expect("bench kind is the generic envelope");
    }

    #[test]
    fn campaign_kind_rejects_missing_trials() {
        let results = Json::obj([("summary", Json::obj([("done", Json::Num(0.0))]))]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        let err = validate(&json).unwrap_err();
        assert!(err.contains("results.trials"), "{err}");
    }

    #[test]
    fn campaign_kind_rejects_wrong_types() {
        // trials is not an array
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Num(0.0))])),
            ("trials", Json::Str("many".into())),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("not an array"));
        // a trial entry missing its status string
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Num(1.0))])),
            (
                "trials",
                Json::Arr(vec![Json::obj([
                    ("trial_id", Json::Str("t0000-a".into())),
                    ("status", Json::Num(1.0)),
                ])]),
            ),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("status"));
        // summary.done is not numeric
        let results = Json::obj([
            ("summary", Json::obj([("done", Json::Str("two".into()))])),
            ("trials", Json::Arr(vec![])),
        ]);
        let json = envelope_with_kind("c", "campaign", Json::obj([]), results);
        assert!(validate(&json).unwrap_err().contains("done"));
    }

    fn sweep_mode_block(wall: f64) -> Json {
        Json::obj([
            ("wall_seconds", Json::Num(wall)),
            ("samples_checked", Json::Num(100.0)),
            ("samples_skipped", Json::Num(50.0)),
            ("distance_queries", Json::Num(40.0)),
            ("distance_evals_batched", Json::Num(64.0)),
            ("certificate_spans", Json::Num(3.0)),
        ])
    }

    fn sweep_envelope(quick: bool, speedup: f64) -> Json {
        envelope(
            "sweep",
            Json::obj([("quick_mode", Json::Bool(quick))]),
            Json::obj([
                ("dense", sweep_mode_block(2.0)),
                ("adaptive", sweep_mode_block(1.2)),
                ("batched", sweep_mode_block(2.0 / speedup)),
                ("wall_speedup", Json::Num(speedup)),
            ]),
        )
    }

    #[test]
    fn sweep_gate_accepts_fast_full_runs() {
        validate(&sweep_envelope(false, 2.1)).expect("2.1x full run passes the gate");
        validate(&sweep_envelope(true, 1.0)).expect("quick runs are not gated on speedup");
    }

    #[test]
    fn sweep_gate_rejects_regressed_full_runs() {
        let err = validate(&sweep_envelope(false, 1.01)).unwrap_err();
        assert!(err.contains("regression gate"), "{err}");
    }

    #[test]
    fn sweep_gate_requires_counter_fields() {
        // A mode block lacking the batched-lane counter fails.
        let mut stale = sweep_mode_block(1.0);
        if let Json::Obj(pairs) = &mut stale {
            pairs.retain(|(k, _)| k != "distance_evals_batched");
        }
        let json = envelope(
            "sweep",
            Json::obj([("quick_mode", Json::Bool(true))]),
            Json::obj([
                ("dense", sweep_mode_block(2.0)),
                ("adaptive", sweep_mode_block(1.2)),
                ("batched", stale),
                ("wall_speedup", Json::Num(2.0)),
            ]),
        );
        let err = validate(&json).unwrap_err();
        assert!(err.contains("distance_evals_batched"), "{err}");
        // A missing mode block fails too.
        let json = envelope(
            "sweep",
            Json::obj([]),
            Json::obj([
                ("dense", sweep_mode_block(2.0)),
                ("wall_speedup", Json::Num(2.0)),
            ]),
        );
        let err = validate(&json).unwrap_err();
        assert!(err.contains("results.adaptive"), "{err}");
        // wall_speedup must be present and numeric.
        let json = envelope(
            "sweep",
            Json::obj([]),
            Json::obj([
                ("dense", sweep_mode_block(2.0)),
                ("adaptive", sweep_mode_block(1.2)),
                ("batched", sweep_mode_block(1.0)),
            ]),
        );
        let err = validate(&json).unwrap_err();
        assert!(err.contains("wall_speedup"), "{err}");
    }

    fn service_results(tenants: f64) -> Json {
        service_results_at(tenants, 2_500_000.0)
    }

    fn service_results_at(tenants: f64, rate: f64) -> Json {
        Json::obj([
            ("tenants", Json::Num(tenants)),
            ("commands_per_sec", Json::Num(rate)),
            ("p50_check_latency_us", Json::Num(0.12)),
            ("p99_check_latency_us", Json::Num(0.31)),
            ("queue_depth_peak", Json::Num(160.0)),
            ("shed_commands", Json::Num(17.0)),
            ("worker_parks", Json::Num(42.0)),
            ("worker_steals", Json::Num(3.0)),
        ])
    }

    fn service_envelope(quick: bool, results: Json) -> Json {
        envelope_with_kind(
            "service",
            "service",
            Json::obj([("quick_mode", Json::Bool(quick))]),
            results,
        )
    }

    #[test]
    fn service_kind_validates() {
        let json = envelope_with_kind("service", "service", Json::obj([]), service_results(4.0));
        validate(&json).expect("well-formed service artifact is valid");
    }

    #[test]
    fn service_kind_enforces_the_full_mode_throughput_floor() {
        // The old one-ticket-per-command broker's 129k cmd/s must now
        // fail a full-mode artifact...
        let err =
            validate(&service_envelope(false, service_results_at(6.0, 129_241.0))).unwrap_err();
        assert!(err.contains("regression floor"), "{err}");
        // ...while quick smoke runs are exempt from the floor...
        validate(&service_envelope(true, service_results_at(6.0, 129_241.0)))
            .expect("quick runs are not gated on throughput");
        // ...and a batched full run clears it.
        validate(&service_envelope(
            false,
            service_results_at(6.0, 2_500_000.0),
        ))
        .expect("wire-speed full run passes the floor");
    }

    #[test]
    fn service_kind_rejects_missing_or_non_numeric_fields() {
        for key in [
            "tenants",
            "commands_per_sec",
            "p50_check_latency_us",
            "p99_check_latency_us",
            "queue_depth_peak",
            "shed_commands",
            "worker_parks",
            "worker_steals",
        ] {
            let mut results = service_results(4.0);
            if let Json::Obj(pairs) = &mut results {
                pairs.retain(|(k, _)| k != key);
            }
            let json = envelope_with_kind("service", "service", Json::obj([]), results);
            let err = validate(&json).unwrap_err();
            assert!(err.contains(key), "error {err:?} should mention {key:?}");
            let mut results = service_results(4.0);
            if let Json::Obj(pairs) = &mut results {
                for (k, v) in pairs.iter_mut() {
                    if k == key {
                        *v = Json::Str("fast".into());
                    }
                }
            }
            let json = envelope_with_kind("service", "service", Json::obj([]), results);
            assert!(validate(&json).unwrap_err().contains(key));
        }
    }

    #[test]
    fn service_kind_enforces_the_tenant_floor() {
        let json = envelope_with_kind("service", "service", Json::obj([]), service_results(2.0));
        let err = validate(&json).unwrap_err();
        assert!(err.contains("multi-tenant floor"), "{err}");
        let json = envelope_with_kind("service", "service", Json::obj([]), service_results(8.0));
        validate(&json).expect("more tenants than the floor is fine");
    }

    fn rad_results(commands: f64, rate: f64) -> Json {
        Json::obj([
            ("commands", Json::Num(commands)),
            ("commands_per_sec", Json::Num(rate)),
            ("peak_live_bytes", Json::Num(65_536.0)),
            ("rules_mined", Json::Num(3.0)),
            ("precision_before_drift", Json::Num(1.0)),
            ("recall_before_drift", Json::Num(1.0)),
            ("precision_after_drift", Json::Num(1.0)),
            ("recall_after_drift", Json::Num(1.0)),
            ("promoted_epoch", Json::Num(3.0)),
            ("fleet_rulebase_epoch", Json::Num(3.0)),
        ])
    }

    fn rad_envelope(quick: bool, results: Json) -> Json {
        envelope_with_kind(
            "rad",
            "rad",
            Json::obj([("quick_mode", Json::Bool(quick))]),
            results,
        )
    }

    #[test]
    fn rad_kind_validates() {
        let full = rad_envelope(false, rad_results(150_000_000.0, 5_000_000.0));
        validate(&full).expect("fast full run passes the floors");
        // Quick smoke runs stream far less and are not gated on volume.
        let quick = rad_envelope(true, rad_results(200_000.0, 100_000.0));
        validate(&quick).expect("quick runs skip the throughput floors");
    }

    #[test]
    fn rad_kind_rejects_missing_or_non_numeric_fields() {
        for key in [
            "commands",
            "commands_per_sec",
            "peak_live_bytes",
            "rules_mined",
            "precision_after_drift",
            "promoted_epoch",
            "fleet_rulebase_epoch",
        ] {
            let mut results = rad_results(150_000_000.0, 5_000_000.0);
            if let Json::Obj(pairs) = &mut results {
                pairs.retain(|(k, _)| k != key);
            }
            let err = validate(&rad_envelope(false, results)).unwrap_err();
            assert!(err.contains(key), "error {err:?} should mention {key:?}");
        }
    }

    #[test]
    fn rad_kind_enforces_the_full_mode_floors() {
        let err =
            validate(&rad_envelope(false, rad_results(1_000_000.0, 5_000_000.0))).unwrap_err();
        assert!(err.contains("floor"), "{err}");
        let err = validate(&rad_envelope(false, rad_results(150_000_000.0, 10_000.0))).unwrap_err();
        assert!(err.contains("regression floor"), "{err}");
    }

    #[test]
    fn rad_kind_requires_the_fleet_to_see_the_promoted_epoch() {
        let mut results = rad_results(150_000_000.0, 5_000_000.0);
        if let Json::Obj(pairs) = &mut results {
            for (k, v) in pairs.iter_mut() {
                if k == "fleet_rulebase_epoch" {
                    *v = Json::Num(0.0);
                }
            }
        }
        let err = validate(&rad_envelope(true, results)).unwrap_err();
        assert!(err.contains("static epoch"), "{err}");
        let mut results = rad_results(150_000_000.0, 5_000_000.0);
        if let Json::Obj(pairs) = &mut results {
            for (k, v) in pairs.iter_mut() {
                if k == "fleet_rulebase_epoch" {
                    *v = Json::Num(2.0);
                }
            }
        }
        let err = validate(&rad_envelope(true, results)).unwrap_err();
        assert!(err.contains("promoted_epoch"), "{err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let json = envelope_with_kind("c", "telemetry", Json::obj([]), Json::obj([]));
        let err = validate(&json).unwrap_err();
        assert!(err.contains("unknown envelope kind"), "{err}");
        let mut bad = envelope("c", Json::obj([]), Json::obj([]));
        if let Json::Obj(pairs) = &mut bad {
            pairs.push(("kind".to_string(), Json::Num(7.0)));
        }
        assert!(validate(&bad).unwrap_err().contains("kind"));
    }
}
