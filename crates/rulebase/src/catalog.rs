//! The device catalog: static metadata RABIT learns from the JSON
//! configuration files (paper §II-C).
//!
//! The catalog answers questions the live [`LabState`] cannot: which
//! devices *have* doors, what an action device's firmware threshold is,
//! where an arm's home/sleep positions are, and which cuboid an idle arm
//! occupies. It is populated by `rabit-config` from JSON and consumed by
//! every rule.
//!
//! [`LabState`]: rabit_devices::LabState

use rabit_devices::{DeviceId, DeviceType};
use rabit_geometry::{Aabb, Vec3};
use std::collections::{BTreeMap, BTreeSet};

/// Static metadata for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMeta {
    /// The device's id.
    pub id: DeviceId,
    /// Taxonomy type.
    pub device_type: DeviceType,
    /// Whether the device has a door in front of its working volume.
    pub has_door: bool,
    /// Free-form tags custom rules can target (e.g. `"centrifuge"`).
    pub tags: BTreeSet<String>,
    /// Firmware threshold on the action value, if any (rule III-11).
    pub action_threshold: Option<f64>,
    /// Whether this action device hosts a container while running (the
    /// Hein hotplate/centrifuge/thermoshaker do; the Berlinguette spray
    /// nozzles and XRF source act on their surroundings instead — §V-B:
    /// "action devices with spraying and not spraying being their primary
    /// actions"). Rules III-5/6 only bind hosting devices.
    pub hosts_container: bool,
    /// Home (ready) location for robot arms.
    pub home_location: Option<Vec3>,
    /// Sleep (stowed) location for robot arms.
    pub sleep_location: Option<Vec3>,
    /// The cuboid a sleeping arm occupies — time multiplexing models idle
    /// arms "as 3D cuboid spaces (identically to other devices)" (§IV).
    pub sleep_volume: Option<Aabb>,
    /// The region an arm may move in under space multiplexing (the
    /// "software-defined wall" splits the deck into such regions).
    pub allowed_region: Option<Aabb>,
}

impl DeviceMeta {
    /// Creates metadata with just an id and type; everything else unset.
    pub fn new(id: impl Into<DeviceId>, device_type: DeviceType) -> Self {
        DeviceMeta {
            id: id.into(),
            device_type,
            has_door: false,
            tags: BTreeSet::new(),
            action_threshold: None,
            hosts_container: true,
            home_location: None,
            sleep_location: None,
            sleep_volume: None,
            allowed_region: None,
        }
    }

    /// Marks an action device as acting on its surroundings rather than a
    /// contained container (spray nozzles, X-ray sources); rules III-5/6
    /// will not demand a container inside it.
    pub fn without_container_hosting(mut self) -> Self {
        self.hosts_container = false;
        self
    }

    /// Marks the device as having a door.
    ///
    /// # Panics
    ///
    /// Panics if the device type cannot have a door (containers and robot
    /// arms — paper §II-A restricts doors to dosing systems and action
    /// devices).
    pub fn with_door(mut self) -> Self {
        assert!(
            self.device_type.may_have_door(),
            "{} devices cannot have doors",
            self.device_type
        );
        self.has_door = true;
        self
    }

    /// Adds a tag.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Sets the firmware action threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.action_threshold = Some(threshold);
        self
    }

    /// Sets robot-arm home and sleep locations.
    pub fn with_arm_positions(mut self, home: Vec3, sleep: Vec3) -> Self {
        self.home_location = Some(home);
        self.sleep_location = Some(sleep);
        self
    }

    /// Sets the sleeping-arm cuboid.
    pub fn with_sleep_volume(mut self, volume: Aabb) -> Self {
        self.sleep_volume = Some(volume);
        self
    }

    /// Sets the space-multiplexing region.
    pub fn with_allowed_region(mut self, region: Aabb) -> Self {
        self.allowed_region = Some(region);
        self
    }

    /// Returns `true` if this device carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(tag)
    }
}

/// The full device catalog for a lab.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceCatalog {
    devices: BTreeMap<DeviceId, DeviceMeta>,
}

impl DeviceCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        DeviceCatalog::default()
    }

    /// Adds a device (builder style).
    pub fn with(mut self, meta: DeviceMeta) -> Self {
        self.insert(meta);
        self
    }

    /// Adds or replaces a device.
    pub fn insert(&mut self, meta: DeviceMeta) {
        self.devices.insert(meta.id.clone(), meta);
    }

    /// Looks up a device.
    pub fn get(&self, id: &DeviceId) -> Option<&DeviceMeta> {
        self.devices.get(id)
    }

    /// The device's type, if known.
    pub fn device_type(&self, id: &DeviceId) -> Option<&DeviceType> {
        self.get(id).map(|m| &m.device_type)
    }

    /// Whether the device has a door (unknown devices: `false`).
    pub fn has_door(&self, id: &DeviceId) -> bool {
        self.get(id).is_some_and(|m| m.has_door)
    }

    /// Whether the device is a robot arm.
    pub fn is_robot_arm(&self, id: &DeviceId) -> bool {
        matches!(self.device_type(id), Some(DeviceType::RobotArm))
    }

    /// Whether the device is a container.
    pub fn is_container(&self, id: &DeviceId) -> bool {
        matches!(self.device_type(id), Some(DeviceType::Container))
    }

    /// Whether the device carries `tag`.
    pub fn has_tag(&self, id: &DeviceId, tag: &str) -> bool {
        self.get(id).is_some_and(|m| m.has_tag(tag))
    }

    /// All devices of a given type.
    pub fn of_type<'a>(
        &'a self,
        device_type: &'a DeviceType,
    ) -> impl Iterator<Item = &'a DeviceMeta> + 'a {
        self.devices
            .values()
            .filter(move |m| &m.device_type == device_type)
    }

    /// All robot arms.
    pub fn robot_arms(&self) -> impl Iterator<Item = &DeviceMeta> {
        self.of_type(&DeviceType::RobotArm)
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceMeta> {
        self.devices.values()
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

impl FromIterator<DeviceMeta> for DeviceCatalog {
    fn from_iter<I: IntoIterator<Item = DeviceMeta>>(iter: I) -> Self {
        let mut c = DeviceCatalog::new();
        for m in iter {
            c.insert(m);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("dosing_device", DeviceType::DosingSystem)
                    .with_door()
                    .with_tag("doser"),
            )
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag("centrifuge")
                    .with_threshold(15_000.0),
            )
            .with(DeviceMeta::new("hotplate", DeviceType::ActionDevice).with_threshold(340.0))
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.1)),
            )
            .with(DeviceMeta::new("vial_NW", DeviceType::Container))
    }

    #[test]
    fn lookups() {
        let c = sample_catalog();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert!(c.has_door(&"dosing_device".into()));
        assert!(!c.has_door(&"hotplate".into()));
        assert!(!c.has_door(&"unknown".into()));
        assert!(c.is_robot_arm(&"viperx".into()));
        assert!(c.is_container(&"vial_NW".into()));
        assert!(c.has_tag(&"centrifuge".into(), "centrifuge"));
        assert!(!c.has_tag(&"hotplate".into(), "centrifuge"));
        assert_eq!(
            c.get(&"hotplate".into()).unwrap().action_threshold,
            Some(340.0)
        );
    }

    #[test]
    fn type_queries() {
        let c = sample_catalog();
        assert_eq!(c.of_type(&DeviceType::ActionDevice).count(), 2);
        assert_eq!(c.robot_arms().count(), 1);
        assert_eq!(c.iter().count(), 5);
    }

    #[test]
    fn arm_positions() {
        let c = sample_catalog();
        let arm = c.get(&"viperx".into()).unwrap();
        assert_eq!(arm.home_location, Some(Vec3::new(0.3, 0.0, 0.3)));
        assert_eq!(arm.sleep_location, Some(Vec3::new(0.1, 0.0, 0.1)));
        assert!(arm.sleep_volume.is_none());
    }

    #[test]
    #[should_panic(expected = "cannot have doors")]
    fn container_door_rejected() {
        let _ = DeviceMeta::new("vial", DeviceType::Container).with_door();
    }

    #[test]
    fn collect_from_iterator() {
        let c: DeviceCatalog = vec![
            DeviceMeta::new("a", DeviceType::Container),
            DeviceMeta::new("b", DeviceType::RobotArm),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn volumes_and_regions() {
        let m = DeviceMeta::new("ned2", DeviceType::RobotArm)
            .with_sleep_volume(Aabb::new(Vec3::ZERO, Vec3::splat(0.2)))
            .with_allowed_region(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)));
        assert!(m.sleep_volume.is_some());
        assert!(m.allowed_region.is_some());
    }
}
