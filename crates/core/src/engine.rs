//! The RABIT engine: the Fig. 2 execution algorithm.

use crate::alert::{Alert, StopPolicy};
use crate::builder::RabitBuilder;
use crate::faults::{FaultPlan, RecoveryCounters, RecoveryPolicy};
use crate::lab::Lab;
use crate::trajcheck::{SweepStats, TrajectoryValidator, TrajectoryVerdict};
use rabit_devices::{ActionKind, Command, DeviceId, LabState};
use rabit_rulebase::{transition, DeviceCatalog, Rulebase, RulebaseSnapshot};
use std::collections::BTreeSet;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct RabitConfig {
    /// Numeric tolerance for the `S_actual ≠ S_expected` comparison
    /// (sensor jitter below this never raises a malfunction alert).
    pub state_tolerance: f64,
    /// What to do on alert.
    pub stop_policy: StopPolicy,
    /// Skip the post-execution malfunction check (ablation knob).
    pub skip_malfunction_check: bool,
    /// Stop rule evaluation at the first violation (the paper's
    /// stop-on-first-alert deployment fast path, routed through
    /// [`Rulebase::check_first`]). Off by default so interactive runs and
    /// tests report every violation; fleet runs turn it on.
    ///
    /// [`Rulebase::check_first`]: rabit_rulebase::Rulebase::check_first
    pub first_violation_only: bool,
    /// How the engine treats *transient* alerts (device faults and
    /// malfunctions): alert immediately (the paper's behaviour, and the
    /// default), retry with backoff, retry then safe-stop, or
    /// quarantine the device and continue degraded. Genuine rule
    /// violations are never retried.
    pub recovery: RecoveryPolicy,
}

impl Default for RabitConfig {
    fn default() -> Self {
        RabitConfig {
            state_tolerance: 1e-6,
            stop_policy: StopPolicy::StopImmediately,
            skip_malfunction_check: false,
            first_violation_only: false,
            recovery: RecoveryPolicy::AlertImmediately,
        }
    }
}

/// How one command fared through [`Rabit::step`], beyond "no alert".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Executed and verified on the first attempt.
    Executed,
    /// Executed and verified after recovery retries.
    Recovered {
        /// Retry attempts it took (≥ 1).
        retries: u32,
    },
    /// Not executed: the addressed device was already quarantined and
    /// the run continues degraded.
    SkippedQuarantined,
    /// Not executed: retries exhausted, the device was quarantined just
    /// now, and the run continues degraded.
    Quarantined,
}

impl StepOutcome {
    /// Whether the command actually executed on its device.
    pub fn executed(&self) -> bool {
        matches!(self, StepOutcome::Executed | StepOutcome::Recovered { .. })
    }
}

/// Outcome of a full workflow run.
#[derive(Debug)]
pub struct RunReport {
    /// Commands executed successfully before any stop.
    pub executed: usize,
    /// The alert that stopped the run, if any.
    pub alert: Option<Alert>,
    /// Total virtual lab time consumed (seconds), including RABIT's
    /// overhead.
    pub lab_time_s: f64,
    /// The share of `lab_time_s` attributable to RABIT (status fetches +
    /// simulator checks).
    pub rabit_overhead_s: f64,
    /// Trajectory validations served from the validator's verdict cache
    /// during this run (zero without a caching validator).
    pub cache_hits: u64,
    /// Trajectory validations that missed the verdict cache and ran in
    /// full during this run.
    pub cache_misses: u64,
    /// Trajectory polling-grid samples the validator collision-checked
    /// during this run (zero without a sweeping validator).
    pub samples_checked: u64,
    /// Polling-grid samples the validator's adaptive sweep kernel proved
    /// hit-free and skipped during this run (zero for dense validators).
    pub samples_skipped: u64,
    /// Per-primitive signed-distance evaluations the validator issued for
    /// skip decisions during this run.
    pub distance_queries: u64,
    /// Lane slots the validator pushed through its batched (4-wide)
    /// distance kernels during this run, padding included.
    pub distance_evals_batched: u64,
    /// Whole-arm certificate spans the validator's adaptive sweep kernel
    /// accepted during this run.
    pub certificate_spans: u64,
    /// Recovery activity during this run (retries, recoveries,
    /// quarantines, safe-stops). All zeros under
    /// [`RecoveryPolicy::AlertImmediately`].
    pub recovery: RecoveryCounters,
    /// Faults the lab's armed session injected during this run (zero
    /// without a fault plan).
    pub faults_injected: u64,
    /// The rulebase epoch this run validated against
    /// ([`rabit_rulebase::STATIC_EPOCH`] for pinned rulebases and for
    /// unchecked runs). With a live rule store, this records which
    /// published snapshot governed the run.
    pub rulebase_epoch: u64,
}

impl RunReport {
    /// Whether the workflow ran to completion with no alert.
    pub fn completed(&self) -> bool {
        self.alert.is_none()
    }

    /// Fraction of this run's trajectory validations served from the
    /// verdict cache, or `None` if no validations happened (no validator
    /// attached, or no robot motions in the workflow).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Fraction of this run's trajectory grid samples the adaptive sweep
    /// kernel skipped, `skipped / (checked + skipped)`, or `None` if the
    /// validator processed no samples.
    pub fn skip_rate(&self) -> Option<f64> {
        let total = self.samples_checked + self.samples_skipped;
        (total > 0).then(|| self.samples_skipped as f64 / total as f64)
    }
}

/// The RABIT middleware: intercepts each command, validates it against
/// the rulebase (and optionally an attached trajectory simulator),
/// executes it, and verifies the resulting device state.
///
/// # Example
///
/// ```
/// use rabit_core::{Lab, Rabit, RabitConfig};
/// use rabit_devices::{ActionKind, Command, DosingDevice, RobotArm};
/// use rabit_geometry::{Aabb, Vec3};
/// use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
/// use rabit_devices::DeviceType;
///
/// let mut lab = Lab::new()
///     .with_device(RobotArm::new("arm", Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.2)))
///     .with_device(DosingDevice::new("doser", Aabb::new(Vec3::ZERO, Vec3::new(0.2, 0.2, 0.3))));
/// let catalog = DeviceCatalog::new()
///     .with(DeviceMeta::new("arm", DeviceType::RobotArm))
///     .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door());
/// let mut rabit = Rabit::new(Rulebase::standard(), catalog, RabitConfig::default());
/// rabit.initialize(&mut lab);
///
/// // Entering the doser with its door closed: stopped before execution.
/// let cmd = Command::new("arm", ActionKind::MoveInsideDevice { device: "doser".into() });
/// let alert = rabit.step(&mut lab, &cmd).unwrap_err();
/// assert_eq!(alert.headline(), "Invalid Command!");
/// assert!(lab.damage_log().is_empty()); // nothing broke
/// ```
pub struct Rabit {
    rulebase: RulebaseSnapshot,
    catalog: DeviceCatalog,
    config: RabitConfig,
    validator: Option<Box<dyn TrajectoryValidator>>,
    current: LabState,
    overhead_s: f64,
    fault_plan: FaultPlan,
    quarantined: BTreeSet<DeviceId>,
    recovery_totals: RecoveryCounters,
}

impl Rabit {
    /// Creates an engine from a rulebase, catalog, and configuration.
    ///
    /// **Deprecated-by-convention:** prefer [`Rabit::builder`], which
    /// assembles the engine in one expression — rulebase, catalog,
    /// config, validator, and fault plan — instead of `new` +
    /// [`Rabit::with_validator`] + [`Rabit::config_mut`] mutation. This
    /// constructor stays as a thin shim so existing call sites compile.
    /// Accepts either an owned [`Rulebase`] (pinned at
    /// [`rabit_rulebase::STATIC_EPOCH`]) or an epoch-stamped
    /// [`RulebaseSnapshot`] published by a live rule store.
    pub fn new(
        rulebase: impl Into<RulebaseSnapshot>,
        catalog: DeviceCatalog,
        config: RabitConfig,
    ) -> Self {
        Rabit {
            rulebase: rulebase.into(),
            catalog,
            config,
            validator: None,
            current: LabState::new(),
            overhead_s: 0.0,
            fault_plan: FaultPlan::none(),
            quarantined: BTreeSet::new(),
            recovery_totals: RecoveryCounters::default(),
        }
    }

    /// Starts a [`RabitBuilder`]: the one-expression way to assemble an
    /// engine (rulebase → catalog → config → validator → fault plan).
    pub fn builder() -> RabitBuilder {
        RabitBuilder::new()
    }

    /// Attaches an Extended Simulator as trajectory validator
    /// (`SimAvailable` becomes true).
    pub fn with_validator(mut self, validator: Box<dyn TrajectoryValidator>) -> Self {
        self.validator = Some(validator);
        self
    }

    /// Carries a fault plan: [`Rabit::initialize`] arms it on the lab
    /// (unless the lab already has a session, e.g. from
    /// [`Substrate::instantiate_with`]).
    ///
    /// [`Substrate::instantiate_with`]: crate::Substrate::instantiate_with
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Detaches the trajectory validator.
    pub fn detach_validator(&mut self) -> Option<Box<dyn TrajectoryValidator>> {
        self.validator.take()
    }

    /// Narrow-phase collision tests the attached validator has performed
    /// (zero when no validator is attached). Instrumentation for the
    /// broad-phase pruning benchmarks.
    pub fn validator_narrow_checks(&self) -> u64 {
        self.validator
            .as_ref()
            .map_or(0, |v| v.narrow_checks_performed())
    }

    /// Verdict-cache `(hits, misses)` of the attached validator — `(0, 0)`
    /// when no validator is attached or it has no cache. Instrumentation
    /// for the hot-path benchmarks and fleet cache-efficiency reports.
    pub fn validator_cache_stats(&self) -> (u64, u64) {
        self.validator
            .as_ref()
            .map_or((0, 0), |v| (v.cache_hits(), v.cache_misses()))
    }

    /// Sweep-kernel counters of the attached validator as a
    /// [`SweepStats`] snapshot — all zero when no validator is attached
    /// or it does no sampling sweep. Instrumentation for the adaptive
    /// conservative-advancement benchmarks.
    pub fn validator_sweep_stats(&self) -> SweepStats {
        self.validator
            .as_ref()
            .map_or(SweepStats::default(), |v| v.sweep_stats())
    }

    /// The rulebase (for inspection).
    pub fn rulebase(&self) -> &Rulebase {
        &self.rulebase
    }

    /// The epoch-stamped snapshot this engine validates against.
    pub fn rulebase_snapshot(&self) -> &RulebaseSnapshot {
        &self.rulebase
    }

    /// The rulebase epoch this engine validates against. Caches keyed on
    /// rule identity (the verdict cache) compose this into their keys.
    pub fn rulebase_epoch(&self) -> u64 {
        self.rulebase.epoch()
    }

    /// Mutable rulebase access (the evaluation adds extension rules
    /// between configurations). Copy-on-write: forks the shared snapshot
    /// if other holders exist and bumps the local epoch, so the attached
    /// validator's verdict cache treats the edited rulebase as a new
    /// generation.
    pub fn rulebase_mut(&mut self) -> &mut Rulebase {
        self.rulebase.make_mut()
    }

    /// The engine configuration.
    pub fn config(&self) -> &RabitConfig {
        &self.config
    }

    /// Mutable configuration access (fleet runs flip
    /// [`RabitConfig::first_violation_only`] on before starting).
    pub fn config_mut(&mut self) -> &mut RabitConfig {
        &mut self.config
    }

    /// The device catalog.
    pub fn catalog(&self) -> &DeviceCatalog {
        &self.catalog
    }

    /// RABIT's accumulated virtual overhead so far (seconds).
    pub fn overhead_s(&self) -> f64 {
        self.overhead_s
    }

    /// The engine's view of the current lab state (`S_current`).
    pub fn current_state(&self) -> &LabState {
        &self.current
    }

    /// The fault plan this engine carries (empty unless set via
    /// [`Rabit::with_fault_plan`] or the builder).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Accumulated recovery activity across every run of this engine.
    /// Per-run deltas land in [`RunReport::recovery`].
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.recovery_totals
    }

    /// Whether a device has been quarantined by the
    /// [`RecoveryPolicy::Quarantine`] policy.
    pub fn is_quarantined(&self, device: &DeviceId) -> bool {
        self.quarantined.contains(device)
    }

    /// The quarantined devices, in order.
    pub fn quarantined_devices(&self) -> impl Iterator<Item = &DeviceId> {
        self.quarantined.iter()
    }

    /// Fig. 2, Lines 1-3: acquire `S_initial` and set `S_current`.
    /// If the engine carries a fault plan and the lab has no session
    /// armed yet, the plan is armed here.
    pub fn initialize(&mut self, lab: &mut Lab) -> &LabState {
        if !self.fault_plan.is_empty() && !lab.has_fault_session() {
            lab.arm_faults(self.fault_plan.session());
        }
        let before = lab.clock().now_s();
        let reported = lab.fetch_state();
        self.overhead_s += lab.clock().now_s() - before;
        // Sensed variables overwrite beliefs; configured beliefs (see
        // [`Rabit::believe`]) survive initialization.
        self.current.overlay(&reported);
        &self.current
    }

    /// Records a configured belief about an unsensed state variable
    /// (e.g. "the vial in slot A1 starts empty and capped", "a container
    /// already sits in the hotplate"). The paper's JSON configuration
    /// carries such initial facts; devices without sensors can never
    /// report them.
    pub fn believe(
        &mut self,
        device: &rabit_devices::DeviceId,
        key: rabit_devices::StateKey,
        value: impl Into<rabit_devices::Value>,
    ) {
        self.current.set(device, key, value);
    }

    /// Fig. 2, Lines 5-16: process one command, with the configured
    /// [`RecoveryPolicy`] deciding what happens on *transient* failures
    /// (device faults and malfunctions). Rule violations and trajectory
    /// collisions — the bugs RABIT exists to stop — are never retried.
    ///
    /// # Errors
    ///
    /// Returns the [`Alert`] that stopped the experiment:
    /// * [`Alert::InvalidCommand`] if a rulebase precondition fails — the
    ///   command is **not** executed;
    /// * [`Alert::InvalidTrajectory`] if the attached simulator predicts a
    ///   collision — the command is **not** executed;
    /// * [`Alert::DeviceFault`] if the device itself refuses;
    /// * [`Alert::DeviceMalfunction`] if the post-state does not match the
    ///   expectation.
    ///
    /// The last two surface only after the recovery policy's retries are
    /// exhausted; under [`RecoveryPolicy::Quarantine`] they never
    /// surface at all — the device is quarantined and `step` returns
    /// [`StepOutcome::Quarantined`] instead.
    // Alerts are the cold path: a large Err variant costs nothing on the
    // hot (Ok) path, and boxing it would complicate every caller.
    #[allow(clippy::result_large_err)]
    pub fn step(&mut self, lab: &mut Lab, command: &Command) -> Result<StepOutcome, Alert> {
        // Degraded continuation: commands to a quarantined device are
        // skipped, not executed and not alerted on.
        if self.quarantined.contains(&command.actor) {
            self.recovery_totals.skipped_quarantined += 1;
            return Ok(StepOutcome::SkippedQuarantined);
        }

        // Lines 6-7: precondition check. Deployment stops on the first
        // alert anyway, so `first_violation_only` skips the rest of the
        // scan once one rule fires.
        let violations: Vec<rabit_rulebase::Violation> = if self.config.first_violation_only {
            self.rulebase
                .check_first(command, &self.current, &self.catalog)
                .into_iter()
                .collect()
        } else {
            self.rulebase
                .check(command, &self.current, &self.catalog)
                .into_vec()
        };
        if !violations.is_empty() {
            self.stop(lab);
            return Err(Alert::InvalidCommand {
                command: command.clone(),
                violations,
            });
        }

        // Lines 8-10: trajectory check for robot commands, if a simulator
        // is available.
        if command.action.is_robot_motion() {
            if let Some(validator) = &mut self.validator {
                // Tell the validator which rulebase generation governs
                // this check, so epoch-keyed verdict caches can never
                // serve an entry computed under different rules.
                validator.note_rulebase_epoch(self.rulebase.epoch());
                let verdict = validator.validate(command, &self.current);
                let cost = validator.check_latency_s();
                lab.advance_clock(cost);
                self.overhead_s += cost;
                if let TrajectoryVerdict::Collision(collision) = verdict {
                    self.stop(lab);
                    return Err(Alert::InvalidTrajectory {
                        command: command.clone(),
                        collision,
                    });
                }
            }
        }

        // Lines 11-16, wrapped in the recovery loop. Each attempt
        // recomputes S_expected from the (possibly rolled-forward)
        // current state, so a retry after a dropped command expects the
        // right thing.
        let retry = self.config.recovery.retry();
        let max_attempts = retry.map_or(1, |r| r.max_attempts.max(1));
        let mut retries = 0u32;
        loop {
            match self.execute_and_verify(lab, command) {
                Ok(()) => {
                    return Ok(if retries == 0 {
                        StepOutcome::Executed
                    } else {
                        self.recovery_totals.recovered += 1;
                        StepOutcome::Recovered { retries }
                    });
                }
                Err(alert) => {
                    if retries + 1 < max_attempts {
                        // Back off on the virtual clock, then retry. The
                        // backoff is RABIT overhead: the lab would have
                        // been idle without it.
                        let backoff = retry.expect("retries imply a policy").backoff_s(retries);
                        lab.advance_clock(backoff);
                        self.overhead_s += backoff;
                        self.recovery_totals.retries += 1;
                        retries += 1;
                        continue;
                    }
                    // Exhausted (or never retryable): escalate per policy.
                    return match self.config.recovery {
                        RecoveryPolicy::AlertImmediately | RecoveryPolicy::Retry(_) => {
                            self.stop(lab);
                            Err(alert)
                        }
                        RecoveryPolicy::RetryThenSafeStop(_) => {
                            self.recovery_totals.safe_stops += 1;
                            self.safe_stop(lab);
                            Err(alert)
                        }
                        RecoveryPolicy::Quarantine(_) => {
                            self.quarantined.insert(command.actor.clone());
                            self.recovery_totals.quarantined += 1;
                            Ok(StepOutcome::Quarantined)
                        }
                    };
                }
            }
        }
    }

    /// One execution attempt: S_expected, execute, fetch S_actual,
    /// compare, commit (Fig. 2, Lines 11-16). Escalation (stop,
    /// safe-stop, quarantine) is the caller's job.
    #[allow(clippy::result_large_err)]
    fn execute_and_verify(&mut self, lab: &mut Lab, command: &Command) -> Result<(), Alert> {
        // Line 11: S_expected.
        let expected = transition::expected_state(&self.catalog, &self.current, command);

        // Line 12: execute.
        if let Err(error) = lab.apply(command) {
            return Err(Alert::DeviceFault {
                command: command.clone(),
                error,
            });
        }

        // Lines 13-16: fetch S_actual, compare, commit. Devices only
        // report the variables they can sense; believed variables (vial
        // contents, containment) are rolled forward from the expectation.
        let before = lab.clock().now_s();
        let actual = lab.fetch_state();
        self.overhead_s += lab.clock().now_s() - before;
        let diffs = if self.config.skip_malfunction_check {
            Vec::new()
        } else {
            expected.diff_reported(&actual, self.config.state_tolerance)
        };
        self.current = expected;
        self.current.overlay(&actual);
        if !diffs.is_empty() {
            return Err(Alert::DeviceMalfunction {
                command: command.clone(),
                diffs,
            });
        }
        Ok(())
    }

    /// Runs a whole workflow, stopping at the first alert
    /// (`alertAndStop`).
    pub fn run(&mut self, lab: &mut Lab, commands: &[Command]) -> RunReport {
        let t0 = lab.clock().now_s();
        let overhead0 = self.overhead_s;
        let (hits0, misses0) = self.validator_cache_stats();
        let sweep0 = self.validator_sweep_stats();
        let recovery0 = self.recovery_totals;
        self.initialize(lab);
        let faults0 = lab.fault_stats().total_injected();
        let mut executed = 0;
        let mut alert = None;
        for command in commands {
            match self.step(lab, command) {
                Ok(outcome) => {
                    if outcome.executed() {
                        executed += 1;
                    }
                }
                Err(a) => {
                    alert = Some(a);
                    break;
                }
            }
        }
        let (hits1, misses1) = self.validator_cache_stats();
        let sweep = self.validator_sweep_stats().since(&sweep0);
        RunReport {
            executed,
            alert,
            lab_time_s: lab.clock().now_s() - t0,
            rabit_overhead_s: self.overhead_s - overhead0,
            cache_hits: hits1 - hits0,
            cache_misses: misses1 - misses0,
            samples_checked: sweep.samples_checked,
            samples_skipped: sweep.samples_skipped,
            distance_queries: sweep.distance_queries,
            distance_evals_batched: sweep.distance_evals_batched,
            certificate_spans: sweep.certificate_spans,
            recovery: self.recovery_totals.since(&recovery0),
            faults_injected: lab.fault_stats().total_injected() - faults0,
            rulebase_epoch: self.rulebase.epoch(),
        }
    }

    /// Executes a workflow with NO safety checking — the baseline of the
    /// latency-overhead experiment, and how damage happens.
    pub fn run_unchecked(lab: &mut Lab, commands: &[Command]) -> RunReport {
        let t0 = lab.clock().now_s();
        let mut executed = 0;
        let mut alert = None;
        for command in commands {
            match lab.apply(command) {
                Ok(()) => executed += 1,
                Err(error) => {
                    alert = Some(Alert::DeviceFault {
                        command: command.clone(),
                        error,
                    });
                    break;
                }
            }
        }
        RunReport {
            executed,
            alert,
            lab_time_s: lab.clock().now_s() - t0,
            rabit_overhead_s: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            samples_checked: 0,
            samples_skipped: 0,
            distance_queries: 0,
            distance_evals_batched: 0,
            certificate_spans: 0,
            recovery: RecoveryCounters::default(),
            faults_injected: lab.fault_stats().total_injected(),
            rulebase_epoch: rabit_rulebase::STATIC_EPOCH,
        }
    }

    /// `alertAndStop`'s stop side: under [`StopPolicy::FailSafe`], park
    /// every arm at its sleep position so nothing is left dangling.
    fn stop(&mut self, lab: &mut Lab) {
        if self.config.stop_policy == StopPolicy::FailSafe {
            self.safe_stop(lab);
        }
    }

    /// Parks every arm at its sleep position, unconditionally (the
    /// timeout + safe-stop recovery escalation).
    fn safe_stop(&mut self, lab: &mut Lab) {
        let arms: Vec<DeviceId> = self.catalog.robot_arms().map(|m| m.id.clone()).collect();
        for arm in arms {
            let _ = lab.apply(&Command::new(arm, ActionKind::MoveToSleep));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::{Device, DeviceType, DosingDevice, Malfunction, RobotArm, StateKey, Vial};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_rulebase::DeviceMeta;

    fn lab() -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "arm",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("arm", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container))
    }

    fn rabit() -> Rabit {
        Rabit::new(Rulebase::standard(), catalog(), RabitConfig::default())
    }

    #[test]
    fn initialize_snapshots_all_devices() {
        let mut lab = lab();
        let mut r = rabit();
        let s = r.initialize(&mut lab);
        assert_eq!(s.len(), 3);
        assert!(r.overhead_s() > 0.0, "status fetches cost time");
    }

    #[test]
    fn invalid_command_stops_before_execution() {
        let mut lab = lab();
        let mut r = rabit();
        r.initialize(&mut lab);
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let alert = r.step(&mut lab, &cmd).unwrap_err();
        assert!(matches!(alert, Alert::InvalidCommand { .. }));
        // Nothing executed → no damage, arm still outside.
        assert!(lab.damage_log().is_empty());
        let arm = lab.device(&"arm".into()).unwrap().as_arm().unwrap();
        assert!(arm.inside_of().is_none());
    }

    #[test]
    fn safe_workflow_passes_and_updates_state() {
        let mut lab = lab();
        let mut r = rabit();
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new(
                "arm",
                ActionKind::MoveInsideDevice {
                    device: "doser".into(),
                },
            ),
            Command::new("arm", ActionKind::MoveOutOfDevice),
            Command::new("doser", ActionKind::SetDoor { open: false }),
        ];
        let report = r.run(&mut lab, &commands);
        assert!(report.completed(), "alert: {:?}", report.alert);
        assert_eq!(report.executed, 4);
        assert!(report.lab_time_s > 0.0);
        assert!(report.rabit_overhead_s > 0.0);
        assert!(report.rabit_overhead_s < report.lab_time_s);
        assert_eq!(
            r.current_state()
                .get_bool(&"doser".into(), &StateKey::DoorOpen),
            Some(false)
        );
    }

    #[test]
    fn device_malfunction_detected() {
        let mut lab = lab();
        // Stuck door: SetDoor acknowledged but nothing moves.
        if let Some(crate::lab::LabDevice::Dosing(doser)) = lab.device_mut(&"doser".into()) {
            doser.inject_malfunction(Some(Malfunction::SilentNoop));
        }
        let mut r = rabit();
        r.initialize(&mut lab);
        let alert = r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true }),
            )
            .unwrap_err();
        match alert {
            Alert::DeviceMalfunction { diffs, .. } => {
                assert!(diffs.iter().any(|d| d.key == StateKey::DoorOpen));
            }
            other => panic!("expected malfunction, got {other:?}"),
        }
    }

    #[test]
    fn device_fault_propagates() {
        let mut lab = lab();
        let mut r = rabit();
        r.initialize(&mut lab);
        // Firmware rejects: dosing device already dosing? Use unsupported
        // action instead: asking the vial to move.
        let alert = r
            .step(&mut lab, &Command::new("vial", ActionKind::MoveHome))
            .unwrap_err();
        assert!(matches!(alert, Alert::DeviceFault { .. }));
        assert!(!alert.is_rabit_detection());
    }

    #[test]
    fn trajectory_validator_blocks_motion() {
        struct AlwaysCollide;
        impl TrajectoryValidator for AlwaysCollide {
            fn validate(&mut self, _: &Command, _: &LabState) -> TrajectoryVerdict {
                TrajectoryVerdict::Collision(crate::trajcheck::CollisionReport::coarse("grid", 0.5))
            }
            fn check_latency_s(&self) -> f64 {
                2.0
            }
        }
        let mut lab = lab();
        let mut r = rabit().with_validator(Box::new(AlwaysCollide));
        r.initialize(&mut lab);
        let overhead0 = r.overhead_s();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.3),
            },
        );
        let alert = r.step(&mut lab, &cmd).unwrap_err();
        assert!(matches!(alert, Alert::InvalidTrajectory { .. }));
        assert!(alert.to_string().contains("50%"));
        assert!(
            (r.overhead_s() - overhead0 - 2.0) > -1e-9,
            "GUI cost charged"
        );
        // Non-motion commands skip the validator.
        let door = Command::new("doser", ActionKind::SetDoor { open: true });
        assert!(r.step(&mut lab, &door).is_ok());
    }

    #[test]
    fn fail_safe_policy_parks_arms() {
        let mut lab = lab();
        let config = RabitConfig {
            stop_policy: StopPolicy::FailSafe,
            ..RabitConfig::default()
        };
        let mut r = Rabit::new(Rulebase::standard(), catalog(), config);
        r.initialize(&mut lab);
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let _ = r.step(&mut lab, &cmd).unwrap_err();
        let arm = lab.device(&"arm".into()).unwrap().as_arm().unwrap();
        assert!(arm.at_sleep(), "fail-safe must park the arm");
    }

    #[test]
    fn unchecked_run_lets_damage_happen() {
        let mut lab = lab();
        let commands = vec![Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        )];
        let report = Rabit::run_unchecked(&mut lab, &commands);
        assert!(report.completed());
        assert_eq!(lab.damage_log().len(), 1, "the door broke");
        assert_eq!(report.rabit_overhead_s, 0.0);
    }

    #[test]
    fn run_reports_partial_progress() {
        let mut lab = lab();
        let mut r = rabit();
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
            Command::new(
                "arm",
                ActionKind::MoveInsideDevice {
                    device: "doser".into(),
                },
            ),
            Command::new("doser", ActionKind::SetDoor { open: true }),
        ];
        let report = r.run(&mut lab, &commands);
        assert_eq!(report.executed, 2);
        assert!(matches!(report.alert, Some(Alert::InvalidCommand { .. })));
    }

    #[test]
    fn skip_malfunction_check_ablation() {
        let mut lab = lab();
        if let Some(crate::lab::LabDevice::Dosing(d)) = lab.device_mut(&"doser".into()) {
            d.inject_malfunction(Some(Malfunction::SilentNoop));
        }
        let config = RabitConfig {
            skip_malfunction_check: true,
            ..RabitConfig::default()
        };
        let mut r = Rabit::new(Rulebase::standard(), catalog(), config);
        r.initialize(&mut lab);
        assert!(r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true })
            )
            .is_ok());
    }

    #[test]
    fn validator_detach_and_accessors() {
        let mut lab = lab();
        let mut r = rabit().with_validator(Box::new(crate::trajcheck::ApproveAll));
        r.initialize(&mut lab);
        assert_eq!(r.catalog().len(), 3);
        assert_eq!(r.rulebase().len(), 11);
        // With the validator attached, motions are swept (ApproveAll says
        // yes); after detaching, SimAvailable is false again.
        let detached = r.detach_validator();
        assert!(detached.is_some());
        assert!(r.detach_validator().is_none());
        let mv = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.4),
            },
        );
        assert!(r.step(&mut lab, &mv).is_ok());
    }

    #[test]
    fn beliefs_can_be_revised() {
        let mut lab = lab();
        let mut r = rabit();
        r.initialize(&mut lab);
        let vial = rabit_devices::DeviceId::new("vial");
        r.believe(&vial, StateKey::SolidMg, 5.0);
        assert_eq!(
            r.current_state().get_number(&vial, &StateKey::SolidMg),
            Some(5.0)
        );
        r.believe(&vial, StateKey::SolidMg, 7.0);
        assert_eq!(
            r.current_state().get_number(&vial, &StateKey::SolidMg),
            Some(7.0)
        );
    }

    #[test]
    fn run_report_time_accounting() {
        let mut lab = lab();
        let mut r = rabit();
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
        ];
        let report = r.run(&mut lab, &commands);
        assert!(report.completed());
        // Overhead is part of total lab time, and both are positive.
        assert!(report.rabit_overhead_s > 0.0);
        assert!(report.lab_time_s > report.rabit_overhead_s);
        // Device time ≈ 2 door motions × 2 s.
        let device_time = report.lab_time_s - report.rabit_overhead_s;
        assert!((device_time - 4.0).abs() < 1e-9, "{device_time}");
    }

    #[test]
    fn state_tolerance_suppresses_jitter() {
        // Inject a tiny sensor offset; with a loose tolerance no alert.
        let mut lab = Lab::new().with_device(rabit_devices::Hotplate::new(
            "hp",
            Aabb::new(Vec3::ZERO, Vec3::splat(0.2)),
        ));
        let catalog = DeviceCatalog::new()
            .with(DeviceMeta::new("hp", DeviceType::ActionDevice).with_threshold(340.0));
        // Pre-place a vial-like container so rules 5/6 pass.
        let state_fix = |lab: &mut Lab| {
            if let Some(crate::lab::LabDevice::Hotplate(h)) = lab.device_mut(&"hp".into()) {
                h.insert_container(DeviceId::new("ghost_vial"));
            }
        };
        state_fix(&mut lab);
        lab.add_device(Vial::new("ghost_vial", Vec3::ZERO));
        if let Some(crate::lab::LabDevice::Vial(v)) = lab.device_mut(&"ghost_vial".into()) {
            v.add_solid(5.0);
        }
        let config = RabitConfig {
            state_tolerance: 0.5,
            ..RabitConfig::default()
        };
        let mut r = Rabit::new(Rulebase::standard(), catalog, config);
        if let Some(crate::lab::LabDevice::Hotplate(h)) = lab.device_mut(&"hp".into()) {
            h.inject_malfunction(Some(Malfunction::SensorOffset(0.1)));
        }
        r.initialize(&mut lab);
        // Containment is unsensed: tell RABIT the vial is already inside
        // (a configured initial fact) and non-empty.
        r.believe(
            &"hp".into(),
            StateKey::ContainedObject,
            Some(DeviceId::new("ghost_vial")),
        );
        r.believe(&"ghost_vial".into(), StateKey::SolidMg, 5.0);
        let res = r.step(
            &mut lab,
            &Command::new("hp", ActionKind::StartAction { value: 60.0 }),
        );
        assert!(res.is_ok(), "0.1° of jitter must not alarm: {res:?}");
    }

    use crate::faults::{FaultKind, FaultPlan, FaultSchedule, RecoveryPolicy, RetryPolicy};

    fn drop_first_doser_command() -> FaultPlan {
        FaultPlan::seeded(11).with_on(
            "doser",
            FaultKind::DropCommand,
            FaultSchedule::AtSteps(vec![0]),
        )
    }

    #[test]
    fn dropped_command_without_recovery_is_a_malfunction() {
        let mut lab = lab();
        let mut r = rabit().with_fault_plan(drop_first_doser_command());
        r.initialize(&mut lab);
        let alert = r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true }),
            )
            .unwrap_err();
        assert!(
            matches!(alert, Alert::DeviceMalfunction { .. }),
            "a silently dropped command surfaces as S_actual ≠ S_expected: {alert:?}"
        );
        assert!(!r.recovery_counters().any());
        assert_eq!(lab.fault_stats().dropped, 1);
    }

    #[test]
    fn retry_policy_recovers_a_dropped_command() {
        let mut lab = lab();
        let mut r = Rabit::builder()
            .catalog(catalog())
            .recovery(RecoveryPolicy::Retry(RetryPolicy::default()))
            .fault_plan(drop_first_doser_command())
            .build();
        r.initialize(&mut lab);
        let outcome = r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true }),
            )
            .expect("the retry re-sends the dropped command");
        assert_eq!(outcome, StepOutcome::Recovered { retries: 1 });
        assert!(outcome.executed());
        let counters = r.recovery_counters();
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.recovered, 1);
        // The door really opened on the second attempt.
        assert_eq!(
            lab.fetch_state()
                .get_bool(&"doser".into(), &StateKey::DoorOpen),
            Some(true)
        );
    }

    #[test]
    fn crash_window_outlasted_by_backoff() {
        let plan = FaultPlan::seeded(3).with_on(
            "doser",
            FaultKind::DeviceCrash { downtime_s: 0.5 },
            FaultSchedule::AtSteps(vec![0]),
        );
        let mut lab = lab();
        let mut r = Rabit::builder()
            .catalog(catalog())
            .recovery(RecoveryPolicy::Retry(RetryPolicy {
                max_attempts: 3,
                backoff_base_s: 1.0,
                backoff_factor: 2.0,
            }))
            .fault_plan(plan)
            .build();
        r.initialize(&mut lab);
        let outcome = r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true }),
            )
            .expect("1 s of backoff outlasts the 0.5 s crash window");
        assert!(matches!(outcome, StepOutcome::Recovered { .. }));
        assert_eq!(lab.fault_stats().crashes, 1);
    }

    #[test]
    fn quarantine_policy_continues_degraded() {
        // Every doser command is dropped — the device is hopeless.
        let plan = FaultPlan::seeded(7).with_on(
            "doser",
            FaultKind::DropCommand,
            FaultSchedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let mut lab = lab();
        let mut r = Rabit::builder()
            .catalog(catalog())
            .recovery(RecoveryPolicy::Quarantine(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            }))
            .fault_plan(plan)
            .build();
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
        ];
        let report = r.run(&mut lab, &commands);
        assert!(
            report.completed(),
            "quarantine never alerts: {:?}",
            report.alert
        );
        assert_eq!(report.executed, 0, "nothing actually ran");
        assert!(r.is_quarantined(&"doser".into()));
        assert_eq!(r.quarantined_devices().count(), 1);
        assert_eq!(report.recovery.quarantined, 1);
        assert_eq!(report.recovery.skipped_quarantined, 1);
        assert!(report.faults_injected >= 2);
    }

    #[test]
    fn retry_then_safe_stop_parks_arms() {
        let plan = FaultPlan::seeded(9).with_on(
            "doser",
            FaultKind::DropCommand,
            FaultSchedule::EveryNth {
                period: 1,
                offset: 0,
            },
        );
        let mut lab = lab();
        let mut r = Rabit::builder()
            .catalog(catalog())
            .recovery(RecoveryPolicy::RetryThenSafeStop(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            }))
            .fault_plan(plan)
            .build();
        r.initialize(&mut lab);
        let alert = r
            .step(
                &mut lab,
                &Command::new("doser", ActionKind::SetDoor { open: true }),
            )
            .unwrap_err();
        assert!(matches!(alert, Alert::DeviceMalfunction { .. }));
        assert_eq!(r.recovery_counters().safe_stops, 1);
        let arm = lab.device(&"arm".into()).unwrap().as_arm().unwrap();
        assert!(arm.at_sleep(), "safe-stop must park the arm");
    }

    #[test]
    fn empty_fault_plan_is_inert() {
        let mut lab = lab();
        let mut r = rabit().with_fault_plan(FaultPlan::none());
        r.initialize(&mut lab);
        assert!(!lab.has_fault_session(), "empty plans arm nothing");
        let commands = vec![
            Command::new("doser", ActionKind::SetDoor { open: true }),
            Command::new("doser", ActionKind::SetDoor { open: false }),
        ];
        let report = r.run(&mut lab, &commands);
        assert!(report.completed());
        assert_eq!(report.faults_injected, 0);
        assert!(!report.recovery.any());
    }
}
