//! The trajectory-validation hook (`SimAvailable` / `ValidTrajectory` in
//! Fig. 2).
//!
//! When an Extended Simulator is attached, RABIT routes every robot-arm
//! move through it before execution; "in the absence of such a simulator,
//! only the target location is checked" (§II-B) — that fallback is rule
//! III-3 in the rulebase.

use rabit_devices::{Command, LabState};

/// The simulator's verdict on a proposed robot motion.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryVerdict {
    /// The full trajectory is collision-free.
    Safe,
    /// The trajectory collides.
    Collision {
        /// What the arm (or its held object) would hit.
        with: String,
        /// Fraction of the motion at which the collision occurs (0-1).
        at_fraction: f64,
    },
    /// The simulator could not evaluate this command (e.g. unknown arm);
    /// RABIT falls back to target-only checking.
    Unavailable,
}

/// A trajectory validator: implemented by the Extended Simulator
/// (`rabit-sim`), and mockable in tests.
pub trait TrajectoryValidator: Send {
    /// Evaluates the trajectory implied by `command` from the current
    /// state.
    fn validate(&mut self, command: &Command, state: &LabState) -> TrajectoryVerdict;

    /// The simulated wall-clock cost of one validation call in seconds
    /// (the paper's GUI-bound simulator costs ~2 s per check; headless
    /// mode collapses this).
    fn check_latency_s(&self) -> f64 {
        0.0
    }

    /// Total narrow-phase collision tests this validator has performed —
    /// the cost a broad-phase index prunes. Validators without a notion
    /// of collision checking report zero.
    fn narrow_checks_performed(&self) -> u64 {
        0
    }

    /// Validations served from a verdict cache. Validators without a
    /// cache report zero.
    fn cache_hits(&self) -> u64 {
        0
    }

    /// Validations that missed the verdict cache and ran in full.
    /// Validators without a cache report zero.
    fn cache_misses(&self) -> u64 {
        0
    }
}

/// A validator that approves everything — useful as a baseline and in
/// tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproveAll;

impl TrajectoryValidator for ApproveAll {
    fn validate(&mut self, _command: &Command, _state: &LabState) -> TrajectoryVerdict {
        TrajectoryVerdict::Safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    #[test]
    fn approve_all_is_safe_and_free() {
        let mut v = ApproveAll;
        let cmd = Command::new("arm", ActionKind::MoveHome);
        assert_eq!(v.validate(&cmd, &LabState::new()), TrajectoryVerdict::Safe);
        assert_eq!(v.check_latency_s(), 0.0);
    }

    #[test]
    fn verdict_equality() {
        let c = TrajectoryVerdict::Collision {
            with: "grid".into(),
            at_fraction: 0.4,
        };
        assert_ne!(c, TrajectoryVerdict::Safe);
        assert_ne!(TrajectoryVerdict::Unavailable, TrajectoryVerdict::Safe);
    }
}
