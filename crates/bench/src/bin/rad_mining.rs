//! Regenerates the §II-A rulebase-construction step: mining rules from
//! the (synthetic) Robot Arm Dataset.

use rabit_bench::report::render_table;
use rabit_rad::{generate_corpus, mine, score, MineParams, RadGenParams};

fn main() {
    println!("§II-A — rule mining from the Robot Arm Dataset (synthetic corpus)\n");
    let params = RadGenParams::default();
    let corpus = generate_corpus(&params);
    let events: usize = corpus.iter().map(|t| t.len()).sum();
    println!(
        "Corpus: {} sessions, {} traced commands (noise rate {:.0}%)\n",
        corpus.len(),
        events,
        params.noise_rate * 100.0
    );

    let mined = mine(&corpus, &MineParams::default());
    let rows: Vec<Vec<String>> = mined
        .iter()
        .map(|r| {
            vec![
                r.name(),
                r.support().to_string(),
                format!("{:.1}%", r.confidence() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Mined rule", "Support", "Confidence"], &rows)
    );

    let (precision, recall) = score(&mined);
    println!(
        "\nAgainst the ground-truth conventions: precision {:.2}, recall {:.2}",
        precision, recall
    );
    println!(
        "Paper's examples recovered: \"device doors must be opened before a robot arm \
         can enter them\" and \"solids must be added to containers before liquids\"."
    );

    // The RATracer→RAD pipeline: sessions captured by actually running
    // randomized workflows on the (simulated) testbed, then mined.
    let captured = rabit_rad::generate_lab_corpus(60, 11);
    let captured_events: usize = captured.iter().map(|t| t.len()).sum();
    let mined_captured = mine(&captured, &MineParams::default());
    let (pc, rc) = score(&mined_captured);
    println!(
        "\nLab-captured corpus (pass-through RATracer on the testbed): \
         {} sessions, {} commands → {} rules mined, precision {:.2}, recall {:.2}",
        captured.len(),
        captured_events,
        mined_captured.len(),
        pc,
        rc
    );

    // Sensitivity: confidence thresholds vs corpus noise.
    println!("\nMining sensitivity (min confidence 0.9):");
    let mut rows = Vec::new();
    for noise in [0.0, 0.05, 0.2, 0.4, 0.6] {
        let corpus = generate_corpus(&RadGenParams {
            noise_rate: noise,
            ..params
        });
        let mined = mine(&corpus, &MineParams::default());
        let (p, r) = score(&mined);
        rows.push(vec![
            format!("{:.0}%", noise * 100.0),
            mined.len().to_string(),
            format!("{p:.2}"),
            format!("{r:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Session noise", "Rules mined", "Precision", "Recall"],
            &rows
        )
    );
}
