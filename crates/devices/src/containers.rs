//! Containers: vials and the grid that holds them.

use crate::command::ActionKind;
use crate::device::{is_silent_noop, Device, DeviceError, LatencyModel, Malfunction};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::{Aabb, Vec3};
use std::collections::BTreeMap;

/// A vial: the canonical **Container** device. Holds solid (mg) and
/// liquid (mL), and has a stopper (cap).
#[derive(Debug, Clone, PartialEq)]
pub struct Vial {
    id: DeviceId,
    location: Vec3,
    solid_mg: f64,
    liquid_ml: f64,
    capacity_mg: f64,
    capacity_ml: f64,
    stopper_on: bool,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl Vial {
    /// Standard Hein-Lab 20 mL vial capacity in millilitres.
    pub const DEFAULT_CAPACITY_ML: f64 = 20.0;
    /// Default solid capacity in milligrams (Fig. 1(b) caps doses at 10 mg).
    pub const DEFAULT_CAPACITY_MG: f64 = 10.0;

    /// Creates an empty, capped vial resting at `location`.
    pub fn new(id: impl Into<DeviceId>, location: Vec3) -> Self {
        Vial {
            id: id.into(),
            location,
            solid_mg: 0.0,
            liquid_ml: 0.0,
            capacity_mg: Self::DEFAULT_CAPACITY_MG,
            capacity_ml: Self::DEFAULT_CAPACITY_ML,
            stopper_on: true,
            malfunction: None,
            latency: LatencyModel::ZERO,
        }
    }

    /// Overrides the capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not strictly positive.
    pub fn with_capacities(mut self, capacity_mg: f64, capacity_ml: f64) -> Self {
        assert!(
            capacity_mg > 0.0 && capacity_ml > 0.0,
            "capacities must be positive"
        );
        self.capacity_mg = capacity_mg;
        self.capacity_ml = capacity_ml;
        self
    }

    /// Current solid contents (mg).
    pub fn solid_mg(&self) -> f64 {
        self.solid_mg
    }

    /// Current liquid contents (mL).
    pub fn liquid_ml(&self) -> f64 {
        self.liquid_ml
    }

    /// Whether the stopper is on.
    pub fn has_stopper(&self) -> bool {
        self.stopper_on
    }

    /// Returns `true` if the vial holds neither solid nor liquid.
    pub fn is_empty(&self) -> bool {
        self.solid_mg <= 0.0 && self.liquid_ml <= 0.0
    }

    /// Current resting location.
    pub fn location(&self) -> Vec3 {
        self.location
    }

    /// Moves the vial (called by the environment when an arm carries it).
    pub fn set_location(&mut self, location: Vec3) {
        self.location = location;
    }

    /// Adds solid. Overflow spills: contents saturate at capacity and the
    /// overflow amount is returned (the "spilling solid out of the vial"
    /// low-severity damage class of Table V).
    pub fn add_solid(&mut self, mg: f64) -> f64 {
        let space = (self.capacity_mg - self.solid_mg).max(0.0);
        let added = mg.min(space);
        self.solid_mg += added;
        mg - added
    }

    /// Adds liquid; returns the spilled overflow (mL).
    pub fn add_liquid(&mut self, ml: f64) -> f64 {
        let space = (self.capacity_ml - self.liquid_ml).max(0.0);
        let added = ml.min(space);
        self.liquid_ml += added;
        ml - added
    }

    /// Removes up to `mg` of solid, returning the amount actually removed.
    pub fn take_solid(&mut self, mg: f64) -> f64 {
        let taken = mg.min(self.solid_mg);
        self.solid_mg -= taken;
        taken
    }

    /// Removes up to `ml` of liquid, returning the amount actually removed.
    pub fn take_liquid(&mut self, ml: f64) -> f64 {
        let taken = ml.min(self.liquid_ml);
        self.liquid_ml -= taken;
        taken
    }
}

impl Device for Vial {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::Container
    }

    fn fetch_state(&self) -> DeviceState {
        // A vial has no sensors: its status "command" can only report the
        // static facts from its datasheet. Location, contents, and
        // stopper state are *believed* variables that RABIT rolls forward
        // through postconditions — which is why a workflow that lost its
        // vial (Bug C) looks indistinguishable from a healthy one.
        DeviceState::new()
            .with(StateKey::CapacityMg, self.capacity_mg)
            .with(StateKey::CapacityMl, self.capacity_ml)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        if is_silent_noop(self.malfunction) {
            return Ok(());
        }
        match action {
            ActionKind::Cap => {
                self.stopper_on = true;
                Ok(())
            }
            ActionKind::Decap => {
                self.stopper_on = false;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn footprint(&self) -> Option<Aabb> {
        // A vial is ~28 mm wide and ~60 mm tall.
        Some(Aabb::from_center_half_extents(
            self.location + Vec3::new(0.0, 0.0, 0.03),
            Vec3::new(0.014, 0.014, 0.03),
        ))
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

/// A vial grid/rack: a stationary holder with named slots ("NW", "SE", …).
/// Not one of the four interactive types — it is a passive obstacle with
/// occupancy, which rule III-3 ("robot arm can move to any location not
/// occupied by any object") consults.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    id: DeviceId,
    footprint: Aabb,
    slots: BTreeMap<String, Vec3>,
    occupancy: BTreeMap<String, Option<DeviceId>>,
}

impl Grid {
    /// Creates a grid occupying `footprint` with the given named slots.
    pub fn new(
        id: impl Into<DeviceId>,
        footprint: Aabb,
        slots: impl IntoIterator<Item = (String, Vec3)>,
    ) -> Self {
        let slots: BTreeMap<String, Vec3> = slots.into_iter().collect();
        let occupancy = slots.keys().map(|k| (k.clone(), None)).collect();
        Grid {
            id: id.into(),
            footprint,
            slots,
            occupancy,
        }
    }

    /// The position of a named slot.
    pub fn slot_position(&self, slot: &str) -> Option<Vec3> {
        self.slots.get(slot).copied()
    }

    /// Slot names in order.
    pub fn slot_names(&self) -> impl Iterator<Item = &str> {
        self.slots.keys().map(String::as_str)
    }

    /// The object occupying `slot`, if any.
    pub fn occupant(&self, slot: &str) -> Option<&DeviceId> {
        self.occupancy.get(slot).and_then(Option::as_ref)
    }

    /// Marks `slot` occupied by `object`.
    ///
    /// # Errors
    ///
    /// Fails if the slot does not exist or is already occupied.
    pub fn occupy(&mut self, slot: &str, object: DeviceId) -> Result<(), DeviceError> {
        match self.occupancy.get_mut(slot) {
            None => Err(DeviceError::InvalidState {
                device: self.id.clone(),
                reason: format!("no slot named '{slot}'"),
            }),
            Some(Some(existing)) => Err(DeviceError::InvalidState {
                device: self.id.clone(),
                reason: format!("slot '{slot}' already holds {existing}"),
            }),
            Some(empty) => {
                *empty = Some(object);
                Ok(())
            }
        }
    }

    /// Clears `slot`, returning the previous occupant.
    pub fn vacate(&mut self, slot: &str) -> Option<DeviceId> {
        self.occupancy.get_mut(slot).and_then(Option::take)
    }
}

impl Device for Grid {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::Custom("grid".to_string())
    }

    fn fetch_state(&self) -> DeviceState {
        // A cardboard grid has no sensors: its status command reports
        // only the static cuboid. Slot occupancy is physical ground truth
        // (used by the damage oracle), invisible to RABIT — which is why
        // vial-less experiments (Bug C) go undetected.
        DeviceState::new().with(StateKey::Footprint, self.footprint)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        Err(DeviceError::UnsupportedAction {
            device: self.id.clone(),
            action: action.label(),
        })
    }

    fn footprint(&self) -> Option<Aabb> {
        Some(self.footprint)
    }

    fn latency(&self) -> LatencyModel {
        LatencyModel::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vial_contents_lifecycle() {
        let mut v = Vial::new("vial_NW", Vec3::new(0.537, 0.018, 0.1));
        assert!(v.is_empty());
        assert!(v.has_stopper());
        assert_eq!(v.add_solid(5.0), 0.0);
        assert_eq!(v.solid_mg(), 5.0);
        assert!(!v.is_empty());
        // Overflow spills.
        assert_eq!(v.add_solid(8.0), 3.0);
        assert_eq!(v.solid_mg(), 10.0);
        assert_eq!(v.add_liquid(25.0), 5.0);
        assert_eq!(v.liquid_ml(), 20.0);
        assert_eq!(v.take_solid(4.0), 4.0);
        assert_eq!(v.take_solid(100.0), 6.0);
        assert_eq!(v.solid_mg(), 0.0);
        assert_eq!(v.take_liquid(30.0), 20.0);
        assert!(v.is_empty());
    }

    #[test]
    fn vial_cap_decap() {
        let mut v = Vial::new("v", Vec3::ZERO);
        v.execute(&ActionKind::Decap).unwrap();
        assert!(!v.has_stopper());
        v.execute(&ActionKind::Cap).unwrap();
        assert!(v.has_stopper());
        let err = v.execute(&ActionKind::MoveHome).unwrap_err();
        assert!(matches!(err, DeviceError::UnsupportedAction { .. }));
    }

    #[test]
    fn vial_state_snapshot_reports_only_static_facts() {
        let v = Vial::new("v", Vec3::new(0.1, 0.2, 0.0));
        let s = v.fetch_state();
        // No sensors: only the datasheet capacities are reported.
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_number(&StateKey::CapacityMg), Some(10.0));
        assert_eq!(s.get_number(&StateKey::CapacityMl), Some(20.0));
        assert!(s.get(&StateKey::HasStopper).is_none());
        assert!(s.get(&StateKey::Location).is_none());
        assert_eq!(v.device_type(), DeviceType::Container);
        assert!(v
            .footprint()
            .unwrap()
            .contains_point(Vec3::new(0.1, 0.2, 0.02)));
    }

    #[test]
    fn vial_silent_noop_malfunction() {
        let mut v = Vial::new("v", Vec3::ZERO);
        v.inject_malfunction(Some(Malfunction::SilentNoop));
        v.execute(&ActionKind::Decap).unwrap(); // acknowledged…
        assert!(v.has_stopper()); // …but nothing happened
        v.inject_malfunction(None);
        v.execute(&ActionKind::Decap).unwrap();
        assert!(!v.has_stopper());
    }

    #[test]
    fn vial_relocation() {
        let mut v = Vial::new("v", Vec3::ZERO);
        v.set_location(Vec3::new(0.15, 0.45, 0.1));
        assert_eq!(v.location(), Vec3::new(0.15, 0.45, 0.1));
        assert!(v
            .footprint()
            .unwrap()
            .contains_point(Vec3::new(0.15, 0.45, 0.12)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = Vial::new("v", Vec3::ZERO).with_capacities(0.0, 1.0);
    }

    fn test_grid() -> Grid {
        Grid::new(
            "grid",
            Aabb::new(Vec3::new(0.4, -0.1, 0.0), Vec3::new(0.7, 0.2, 0.1)),
            vec![
                ("NW".to_string(), Vec3::new(0.45, 0.15, 0.1)),
                ("SE".to_string(), Vec3::new(0.65, -0.05, 0.1)),
            ],
        )
    }

    #[test]
    fn grid_slots_and_occupancy() {
        let mut g = test_grid();
        assert_eq!(g.slot_names().count(), 2);
        assert!(g.slot_position("NW").is_some());
        assert!(g.slot_position("XX").is_none());
        assert!(g.occupant("NW").is_none());
        g.occupy("NW", DeviceId::new("vial_1")).unwrap();
        assert_eq!(g.occupant("NW").unwrap().as_str(), "vial_1");
        // Double occupancy rejected.
        let err = g.occupy("NW", DeviceId::new("vial_2")).unwrap_err();
        assert!(matches!(err, DeviceError::InvalidState { .. }));
        // Unknown slot rejected.
        assert!(g.occupy("XX", DeviceId::new("vial_2")).is_err());
        assert_eq!(g.vacate("NW").unwrap().as_str(), "vial_1");
        assert!(g.occupant("NW").is_none());
        assert!(g.vacate("NW").is_none());
    }

    #[test]
    fn grid_is_passive() {
        let mut g = test_grid();
        assert!(g.execute(&ActionKind::MoveHome).is_err());
        assert!(g.footprint().is_some());
        let s = g.fetch_state();
        assert!(s.get(&StateKey::Footprint).is_some());
        // No slot sensors: occupancy is not part of the status snapshot.
        assert_eq!(s.len(), 1);
    }
}
