//! Regenerates the Table IV controlled experiments: one unsafe scenario
//! per Hein-Lab custom rule.

use rabit_bench::report::{mark, render_table};
use rabit_bench::scenarios::{rule_scenarios, run_scenario};
use rabit_rulebase::RuleId;
use rabit_testbed::RabitStage;

fn main() {
    println!("Table IV — controlled experiments for the 4 Hein custom rules\n");
    let mut rows = Vec::new();
    let mut all = true;
    for scenario in rule_scenarios()
        .iter()
        .filter(|s| matches!(s.rule, RuleId::Custom(_)))
    {
        let outcome = run_scenario(scenario, RabitStage::Modified);
        all &= outcome.detected && outcome.right_rule;
        rows.push(vec![
            scenario.rule.to_string(),
            scenario.description.to_string(),
            scenario.scenario.to_string(),
            mark(outcome.detected),
        ]);
    }
    println!(
        "{}",
        render_table(&["Rule", "Rule text", "Unsafe scenario", "Detected"], &rows)
    );
    println!(
        "Paper: all scenarios detected. Reproduction: {}",
        if all {
            "all detected ✓"
        } else {
            "MISMATCH ✗"
        }
    );
}
