//! The Hein Lab production experiment deck (Fig. 1(a)).
//!
//! "It consists of a lab computer, a six-axis robot arm [UR3e], and five
//! automation devices: a solid dosing device, an automated syringe pump,
//! a centrifuge, a thermoshaker, and a hotplate." (§II)

use crate::camera::Camera;
use rabit_core::{Lab, LabDevice, Rabit, RabitConfig};
use rabit_devices::{
    Centrifuge, DeviceId, DeviceType, DosingDevice, Grid, Hotplate, LatencyModel, RobotArm,
    SyringePump, Thermoshaker, Vial,
};
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::{presets, ArmModel};
use rabit_rulebase::{extensions, DeviceCatalog, DeviceMeta, Rulebase};
use rabit_sim::{ExtendedSimulator, SimConfig, SimWorld};

/// Stationary device footprints on the production deck (UR3e frame,
/// base at the origin; all within the arm's ~0.5 m reach).
pub mod footprints {
    use rabit_geometry::{Aabb, Vec3};

    /// The vial grid.
    pub fn grid() -> Aabb {
        Aabb::new(Vec3::new(0.28, -0.12, 0.0), Vec3::new(0.42, 0.02, 0.08))
    }

    /// The Mettler Toledo solid dosing device.
    pub fn dosing_device() -> Aabb {
        Aabb::new(Vec3::new(0.02, 0.26, 0.0), Vec3::new(0.20, 0.40, 0.24))
    }

    /// The Tecan syringe pump.
    pub fn syringe_pump() -> Aabb {
        Aabb::new(Vec3::new(-0.35, 0.15, 0.0), Vec3::new(-0.20, 0.30, 0.18))
    }

    /// The IKA hotplate.
    pub fn hotplate() -> Aabb {
        Aabb::new(Vec3::new(-0.40, -0.34, 0.0), Vec3::new(-0.26, -0.20, 0.06))
    }

    /// The Fisher Scientific centrifuge.
    pub fn centrifuge() -> Aabb {
        Aabb::new(Vec3::new(0.12, -0.42, 0.0), Vec3::new(0.30, -0.24, 0.14))
    }

    /// The IKA thermoshaker.
    pub fn thermoshaker() -> Aabb {
        Aabb::new(Vec3::new(-0.42, -0.02, 0.0), Vec3::new(-0.27, 0.13, 0.12))
    }

    /// UR3e's sleep cuboid.
    pub fn ur3e_sleep_volume() -> Aabb {
        Aabb::new(Vec3::new(-0.25, -0.25, 0.0), Vec3::new(0.0, -0.02, 0.30))
    }
}

/// Key deck locations.
pub mod locations {
    use rabit_geometry::Vec3;

    /// Grid slot A1 grasp point (vial grasped near its neck, clear of the
    /// 0.08 m grid box even with the held-vial model).
    pub const GRID_A1: Vec3 = Vec3 {
        x: 0.35,
        y: -0.05,
        z: 0.17,
    };
    /// Safe height above slot A1.
    pub const GRID_A1_SAFE: Vec3 = Vec3 {
        x: 0.35,
        y: -0.05,
        z: 0.28,
    };
    /// Stand-off in front of the dosing device.
    pub const DOSING_APPROACH: Vec3 = Vec3 {
        x: 0.11,
        y: 0.18,
        z: 0.30,
    };
    /// Stand-off beside the hotplate.
    pub const HOTPLATE_APPROACH: Vec3 = Vec3 {
        x: -0.22,
        y: -0.16,
        z: 0.24,
    };
}

/// UR3e logical home/sleep tool positions (matching the kinematic
/// preset's home/sleep configurations).
pub mod arm_positions {
    use rabit_geometry::Vec3;

    /// UR3e home tool position.
    pub const UR3E_HOME: Vec3 = Vec3 {
        x: -0.3887,
        y: -0.1311,
        z: 0.2117,
    };
    /// UR3e sleep tool position (inside the sleep cuboid).
    pub const UR3E_SLEEP: Vec3 = Vec3 {
        x: -0.1209,
        y: -0.1311,
        z: 0.1492,
    };
}

/// The assembled production deck.
pub struct ProductionDeck {
    /// The physical environment.
    pub lab: Lab,
    /// Device metadata for the rulebase.
    pub catalog: DeviceCatalog,
}

impl ProductionDeck {
    /// Builds the deck with one empty, capped vial in grid slot A1.
    pub fn new() -> Self {
        ProductionDeck::with_latency(LatencyModel::PRODUCTION)
    }

    /// Builds the deck with a custom latency model on the arm — the
    /// pipeline's simulator stage replays the same deck at SIMULATED
    /// speed before any real motor turns.
    pub fn with_latency(latency: LatencyModel) -> Self {
        ProductionDeck {
            lab: ProductionDeck::build_lab(latency),
            catalog: ProductionDeck::build_catalog(),
        }
    }

    /// Builds a fresh production lab (one capped vial in grid slot A1) at
    /// the given latency — the recipe the deck's
    /// [`rabit_core::Substrate`]s instantiate from.
    pub fn build_lab(latency: LatencyModel) -> Lab {
        use arm_positions::*;
        let mut grid = Grid::new(
            "grid",
            footprints::grid(),
            vec![
                ("A1".to_string(), locations::GRID_A1),
                ("A2".to_string(), Vec3::new(0.31, -0.05, 0.17)),
                ("B1".to_string(), Vec3::new(0.35, -0.09, 0.17)),
                ("B2".to_string(), Vec3::new(0.31, -0.09, 0.17)),
            ],
        );
        grid.occupy("A1", "vial".into()).expect("fresh grid slot");

        let mut lab = Lab::new()
            .with_device(RobotArm::new("ur3e", UR3E_HOME, UR3E_SLEEP).with_latency(latency))
            .with_device(Vial::new("vial", locations::GRID_A1))
            .with_device(grid)
            .with_device(
                DosingDevice::new("dosing_device", footprints::dosing_device())
                    .with_firmware_max_dose(50.0),
            )
            .with_device(
                SyringePump::new("syringe_pump", footprints::syringe_pump())
                    .with_firmware_max_volume(25.0),
            )
            .with_device(Centrifuge::new("centrifuge", footprints::centrifuge()))
            .with_device(
                Hotplate::new("hotplate", footprints::hotplate()).with_firmware_limit(340.0),
            )
            .with_device(Thermoshaker::new(
                "thermoshaker",
                footprints::thermoshaker(),
            ));
        lab.add_device(LabDevice::Custom(Box::new(Camera::new("camera"))));
        lab.set_arm_kinematics("ur3e", Vec3::ZERO, presets::ur3e().max_reach());
        lab
    }

    /// Builds the deck's device catalog (pure metadata, no lab state).
    pub fn build_catalog() -> DeviceCatalog {
        use arm_positions::*;
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("ur3e", DeviceType::RobotArm)
                    .with_arm_positions(UR3E_HOME, UR3E_SLEEP)
                    .with_sleep_volume(footprints::ur3e_sleep_volume()),
            )
            .with(DeviceMeta::new("vial", DeviceType::Container))
            .with(DeviceMeta::new(
                "grid",
                DeviceType::Custom("grid".to_string()),
            ))
            .with(DeviceMeta::new("dosing_device", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("syringe_pump", DeviceType::DosingSystem))
            .with(
                DeviceMeta::new("centrifuge", DeviceType::ActionDevice)
                    .with_door()
                    .with_tag("centrifuge")
                    .with_threshold(15_000.0),
            )
            .with(DeviceMeta::new("hotplate", DeviceType::ActionDevice).with_threshold(340.0))
            .with(DeviceMeta::new("thermoshaker", DeviceType::ActionDevice).with_threshold(3_000.0))
            .with(DeviceMeta::new(
                "camera",
                DeviceType::Custom("camera".to_string()),
            ))
    }

    /// The deployed production RABIT: Hein rules + the held-object
    /// extension (single arm, so no multiplexing rules are needed).
    pub fn rabit(&self) -> Rabit {
        Rabit::new(
            production_rulebase(),
            self.catalog.clone(),
            RabitConfig::default(),
        )
    }

    /// The same engine with the Extended Simulator attached (`gui` picks
    /// the 2 s GUI mode or headless).
    pub fn rabit_with_simulator(&self, gui: bool) -> Rabit {
        self.rabit()
            .with_validator(Box::new(self.extended_simulator(gui)))
    }

    /// The cuboid obstacle world the Extended Simulator sweeps the
    /// deck's trajectories against: the platform plus the six stationary
    /// device footprints.
    pub fn simulator_world() -> SimWorld {
        SimWorld::new()
            .with_platform(1.0)
            .with_obstacle("grid", footprints::grid())
            .with_obstacle("dosing_device", footprints::dosing_device())
            .with_obstacle("syringe_pump", footprints::syringe_pump())
            .with_obstacle("centrifuge", footprints::centrifuge())
            .with_obstacle("hotplate", footprints::hotplate())
            .with_obstacle("thermoshaker", footprints::thermoshaker())
    }

    /// The kinematic arm models the Extended Simulator mirrors (the UR3e
    /// at the origin).
    pub fn simulator_arms() -> Vec<(DeviceId, ArmModel)> {
        vec![(DeviceId::new("ur3e"), presets::ur3e())]
    }

    /// Builds the Extended Simulator over the production deck (`gui`
    /// picks the 2 s GUI mode or headless).
    pub fn build_extended_simulator(gui: bool) -> ExtendedSimulator {
        let config = SimConfig {
            gui,
            ..SimConfig::default()
        };
        let mut sim = ExtendedSimulator::new(ProductionDeck::simulator_world(), config);
        for (id, model) in ProductionDeck::simulator_arms() {
            sim.add_arm(id, model);
        }
        sim
    }

    /// The Extended Simulator over this deck (see
    /// [`ProductionDeck::build_extended_simulator`]).
    pub fn extended_simulator(&self, gui: bool) -> ExtendedSimulator {
        ProductionDeck::build_extended_simulator(gui)
    }

    /// Footprint of a named deck device.
    pub fn footprint_of(&self, name: &str) -> Option<Aabb> {
        match name {
            "grid" => Some(footprints::grid()),
            "dosing_device" => Some(footprints::dosing_device()),
            "syringe_pump" => Some(footprints::syringe_pump()),
            "centrifuge" => Some(footprints::centrifuge()),
            "hotplate" => Some(footprints::hotplate()),
            "thermoshaker" => Some(footprints::thermoshaker()),
            _ => None,
        }
    }
}

impl Default for ProductionDeck {
    fn default() -> Self {
        ProductionDeck::new()
    }
}

/// The deployed production rulebase: the 15 Hein Lab rules plus the
/// held-object clearance extension (16 rules; the deck has one arm, so
/// no multiplexing rules are needed). A thin wrapper over the shared
/// [`extensions::extended_hein_rulebase`] builder (the testbed composes
/// the same way with a different [`extensions::ExtensionSet`]).
pub fn production_rulebase() -> Rulebase {
    extensions::extended_hein_rulebase(extensions::ExtensionSet::held_object_only())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deck_inventory_matches_the_paper() {
        let mut deck = ProductionDeck::new();
        let state = deck.lab.fetch_state();
        // arm + vial + grid + 5 devices + camera = 9.
        assert_eq!(state.len(), 9);
        for id in [
            "ur3e",
            "dosing_device",
            "syringe_pump",
            "centrifuge",
            "hotplate",
            "thermoshaker",
        ] {
            assert!(state.device(&id.into()).is_some(), "{id} missing");
        }
    }

    #[test]
    fn footprints_do_not_overlap() {
        let deck = ProductionDeck::new();
        let names = [
            "grid",
            "dosing_device",
            "syringe_pump",
            "centrifuge",
            "hotplate",
            "thermoshaker",
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert!(
                    !deck
                        .footprint_of(a)
                        .unwrap()
                        .intersects(&deck.footprint_of(b).unwrap()),
                    "{a} overlaps {b}"
                );
            }
        }
    }

    #[test]
    fn everything_is_within_reach() {
        let arm = presets::ur3e();
        let reach = arm.max_reach();
        for p in [
            locations::GRID_A1,
            locations::GRID_A1_SAFE,
            locations::DOSING_APPROACH,
            locations::HOTPLATE_APPROACH,
            arm_positions::UR3E_HOME,
            arm_positions::UR3E_SLEEP,
        ] {
            assert!(p.norm() <= reach, "{p} beyond reach {reach:.3}");
        }
    }

    #[test]
    fn logical_and_kinematic_home_positions_agree() {
        let arm = presets::ur3e();
        let kin_home = arm.tool_position(&arm.home_configuration());
        assert!(
            kin_home.distance(arm_positions::UR3E_HOME) < 1e-3,
            "kinematic home {kin_home} vs logical {}",
            arm_positions::UR3E_HOME
        );
        let kin_sleep = arm.tool_position(&arm.sleep_configuration());
        assert!(kin_sleep.distance(arm_positions::UR3E_SLEEP) < 1e-3);
    }

    #[test]
    fn sleep_position_is_inside_sleep_volume_and_clear_of_devices() {
        assert!(footprints::ur3e_sleep_volume().contains_point(arm_positions::UR3E_SLEEP));
        let deck = ProductionDeck::new();
        for name in [
            "grid",
            "dosing_device",
            "syringe_pump",
            "centrifuge",
            "hotplate",
            "thermoshaker",
        ] {
            let fp = deck.footprint_of(name).unwrap();
            assert!(
                !fp.contains_point(arm_positions::UR3E_SLEEP),
                "sleep inside {name}"
            );
            assert!(
                !fp.contains_point(arm_positions::UR3E_HOME),
                "home inside {name}"
            );
            assert!(
                !fp.intersects(&footprints::ur3e_sleep_volume()),
                "{name} overlaps the sleep volume"
            );
        }
    }

    #[test]
    fn production_firmware_limits_are_armed() {
        let deck = ProductionDeck::new();
        if let Some(LabDevice::Hotplate(h)) = deck.lab.device(&"hotplate".into()) {
            assert_eq!(h.firmware_limit(), 340.0);
        } else {
            panic!("hotplate missing");
        }
    }

    #[test]
    fn rabit_builders() {
        let deck = ProductionDeck::new();
        assert_eq!(deck.rabit().rulebase().len(), 16); // 15 + held-object
        let _with_sim = deck.rabit_with_simulator(false);
    }
}
