//! Property-based tests over the geometry substrate's invariants.

use proptest::prelude::*;
use rabit_geometry::{calibrate, collide, Aabb, Capsule, Mat3, Pose, Segment, Vec3};

fn small_f64() -> impl Strategy<Value = f64> {
    -10.0..10.0f64
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f64(), small_f64(), small_f64()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_angle() -> impl Strategy<Value = f64> {
    -std::f64::consts::PI..std::f64::consts::PI
}

fn rotation() -> impl Strategy<Value = Mat3> {
    (vec3(), unit_angle()).prop_filter_map("axis must be nonzero", |(axis, angle)| {
        Mat3::rotation_axis_angle(axis, angle)
    })
}

fn pose() -> impl Strategy<Value = Pose> {
    (rotation(), vec3()).prop_map(|(r, t)| Pose::new(r, t))
}

fn aabb() -> impl Strategy<Value = Aabb> {
    (vec3(), vec3()).prop_map(|(a, b)| Aabb::new(a, b))
}

proptest! {
    #[test]
    fn cross_product_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        prop_assert!((c.dot(a)).abs() < 1e-6);
        prop_assert!((c.dot(b)).abs() < 1e-6);
    }

    #[test]
    fn triangle_inequality(a in vec3(), b in vec3(), c in vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn rotation_preserves_length(r in rotation(), v in vec3()) {
        prop_assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
        prop_assert!(r.is_rotation(1e-7));
    }

    #[test]
    fn pose_inverse_roundtrips(p in pose(), v in vec3()) {
        let back = p.inverse().transform_point(p.transform_point(v));
        prop_assert!((back - v).norm() < 1e-8);
    }

    #[test]
    fn pose_composition_is_sequential_application(a in pose(), b in pose(), v in vec3()) {
        let lhs = a.compose(&b).transform_point(v);
        let rhs = a.transform_point(b.transform_point(v));
        prop_assert!((lhs - rhs).norm() < 1e-8);
    }

    #[test]
    fn aabb_closest_point_is_inside_and_no_farther(b in aabb(), p in vec3()) {
        let cp = b.closest_point(p);
        prop_assert!(b.contains_point(cp) || b.distance_to_point(cp) < 1e-9);
        // No corner is closer than the reported closest point.
        for corner in b.corners() {
            prop_assert!(p.distance(cp) <= p.distance(corner) + 1e-9);
        }
    }

    #[test]
    fn aabb_inflation_monotone(b in aabb(), m in 0.0..2.0f64, p in vec3()) {
        // Inflating can only decrease point distance.
        prop_assert!(b.inflated(m).distance_to_point(p) <= b.distance_to_point(p) + 1e-9);
        if b.contains_point(p) {
            prop_assert!(b.inflated(m).contains_point(p));
        }
    }

    #[test]
    fn segment_aabb_distance_lower_bounds_point_distances(
        b in aabb(), a1 in vec3(), a2 in vec3(), t in 0.0..1.0f64
    ) {
        let seg = Segment::new(a1, a2);
        let d = collide::segment_aabb_distance(&seg, &b);
        // The distance from any sampled point on the segment can't be
        // smaller than the reported minimum (up to ternary-search error).
        let sample = seg.point_at(t);
        prop_assert!(b.distance_to_point(sample) >= d - 1e-6);
    }

    #[test]
    fn segment_distance_is_symmetric(a1 in vec3(), a2 in vec3(), b1 in vec3(), b2 in vec3()) {
        let s1 = Segment::new(a1, a2);
        let s2 = Segment::new(b1, b2);
        let d12 = s1.distance_to_segment(&s2);
        let d21 = s2.distance_to_segment(&s1);
        prop_assert!((d12 - d21).abs() < 1e-9);
        // And it lower-bounds endpoint distances.
        prop_assert!(d12 <= a1.distance(b1) + 1e-9);
        prop_assert!(d12 <= a2.distance(b2) + 1e-9);
    }

    #[test]
    fn capsule_intersection_consistent_with_distance(
        a1 in vec3(), a2 in vec3(), r1 in 0.01..1.0f64,
        b1 in vec3(), b2 in vec3(), r2 in 0.01..1.0f64
    ) {
        let c1 = Capsule::new(a1, a2, r1);
        let c2 = Capsule::new(b1, b2, r2);
        prop_assert_eq!(
            c1.intersects_capsule(&c2),
            c1.distance_to_capsule(&c2) <= 0.0
        );
    }

    #[test]
    fn kabsch_recovers_applied_transform(p in pose()) {
        // A non-degenerate cloud.
        let src = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.5, 0.5, 0.5),
        ];
        let dst: Vec<Vec3> = src.iter().map(|v| p.transform_point(*v)).collect();
        let fit = calibrate::fit_rigid_transform(&src, &dst).unwrap();
        prop_assert!(fit.rms_error < 1e-6, "rms = {}", fit.rms_error);
    }
}
