//! Adaptive conservative-advancement sweep benchmark.
//!
//! Runs the standard fleet workload — serial guarded fig5 safe-workflow
//! runs on the testbed, verdict cache disabled so every validation
//! really sweeps — under the dense sampling kernel and the adaptive
//! conservative-advancement kernel, and compares:
//!
//! * wall time per command,
//! * polling-grid samples evaluated versus skipped,
//! * narrow-phase obstacle tests (the cost the kernel exists to cut),
//! * clearance distance queries (the price the kernel pays instead).
//!
//! The two configurations must agree on every verdict — the adaptive
//! kernel only skips samples it proves hit-free — so the benchmark
//! asserts all runs complete in both modes.
//!
//! Writes `BENCH_sweep.json` and prints the tables. `--quick` runs a
//! reduced pass for CI smoke checks.
//!
//! Run with `cargo run --release -p rabit-bench --bin sweep`.

use rabit_bench::report::render_table;
use rabit_buginject::RabitStage;
use rabit_testbed::{workflows, Testbed};
use rabit_tracer::Tracer;
use rabit_util::Json;
use std::time::Instant;

struct SweepResult {
    wall_s: f64,
    commands: usize,
    samples_checked: u64,
    samples_skipped: u64,
    narrow_checks: u64,
    distance_queries: u64,
}

/// Serial guarded runs of the fig5 safe workflow with a fresh lab per
/// lap and one long-lived engine, the shape of a deployed RABIT
/// instance. The verdict cache is off so every lap's validations sweep.
fn run_workload(laps: usize, dense: bool) -> SweepResult {
    let tb = Testbed::new();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let mut sim = tb.extended_simulator(false);
    sim.config_mut().verdict_cache = false;
    sim.config_mut().dense_sampling = dense;
    let mut rabit = tb.rabit(RabitStage::Modified).with_validator(Box::new(sim));
    rabit.config_mut().first_violation_only = true;

    let mut labs: Vec<_> = (0..laps).map(|_| Testbed::new().lab).collect();
    let t0 = Instant::now();
    for lab in &mut labs {
        let report = Tracer::guarded(lab, &mut rabit).run(&wf);
        assert!(report.completed(), "fig5 safe workflow must complete");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let (samples_checked, samples_skipped, distance_queries) = rabit.validator_sweep_stats();
    SweepResult {
        wall_s,
        commands: laps * wf.len(),
        samples_checked,
        samples_skipped,
        narrow_checks: rabit.validator_narrow_checks(),
        distance_queries,
    }
}

/// Best-of-N wall clock over fresh workloads; counters are deterministic
/// across repeats, so the last repeat's are as good as any.
fn best_of(repeats: usize, laps: usize, dense: bool) -> SweepResult {
    let mut best = run_workload(laps, dense);
    for _ in 1..repeats {
        let next = run_workload(laps, dense);
        assert_eq!(
            next.samples_checked, best.samples_checked,
            "sweep counters must be deterministic across repeats"
        );
        best.wall_s = best.wall_s.min(next.wall_s);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (laps, repeats) = if quick { (4, 1) } else { (24, 3) };

    let dense = best_of(repeats, laps, true);
    let adaptive = best_of(repeats, laps, false);

    assert_eq!(
        dense.samples_skipped, 0,
        "dense sampling must not skip anything"
    );
    let total = adaptive.samples_checked + adaptive.samples_skipped;
    assert_eq!(
        total, dense.samples_checked,
        "both kernels must walk the same polling grid"
    );
    let skip_rate = adaptive.samples_skipped as f64 / total.max(1) as f64;
    let narrow_reduction = dense.narrow_checks as f64 / adaptive.narrow_checks.max(1) as f64;
    let dense_ns = dense.wall_s / dense.commands as f64 * 1e9;
    let adaptive_ns = adaptive.wall_s / adaptive.commands as f64 * 1e9;

    println!(
        "Adaptive sweep ({laps} laps of the fig5 safe workflow, \
         verdict cache off, best of {repeats})\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "ns/command",
                "samples checked",
                "samples skipped",
                "narrow checks",
                "distance queries",
            ],
            &[
                vec![
                    "dense".into(),
                    format!("{dense_ns:.0}"),
                    dense.samples_checked.to_string(),
                    dense.samples_skipped.to_string(),
                    dense.narrow_checks.to_string(),
                    dense.distance_queries.to_string(),
                ],
                vec![
                    "adaptive".into(),
                    format!("{adaptive_ns:.0}"),
                    adaptive.samples_checked.to_string(),
                    adaptive.samples_skipped.to_string(),
                    adaptive.narrow_checks.to_string(),
                    adaptive.distance_queries.to_string(),
                ],
            ]
        )
    );
    println!(
        "skip rate: {:.1}%   narrow-phase reduction: {:.2}x   wall speedup: {:.2}x",
        skip_rate * 100.0,
        narrow_reduction,
        dense.wall_s / adaptive.wall_s
    );

    let side = |r: &SweepResult, ns: f64| {
        Json::obj([
            ("wall_seconds", Json::Num(r.wall_s)),
            ("ns_per_command", Json::Num(ns)),
            ("commands", Json::Num(r.commands as f64)),
            ("samples_checked", Json::Num(r.samples_checked as f64)),
            ("samples_skipped", Json::Num(r.samples_skipped as f64)),
            ("narrow_checks", Json::Num(r.narrow_checks as f64)),
            ("distance_queries", Json::Num(r.distance_queries as f64)),
        ])
    };
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("laps", Json::Num(laps as f64)),
        ("repeats", Json::Num(repeats as f64)),
        ("workflow", Json::Str("fig5_safe".into())),
        ("verdict_cache", Json::Bool(false)),
    ]);
    let results = Json::obj([
        ("dense", side(&dense, dense_ns)),
        ("adaptive", side(&adaptive, adaptive_ns)),
        ("skip_rate", Json::Num(skip_rate)),
        ("narrow_phase_reduction", Json::Num(narrow_reduction)),
        ("wall_speedup", Json::Num(dense.wall_s / adaptive.wall_s)),
    ]);
    rabit_bench::schema::write_artifact("sweep", config, results);
}
