//! The Table I stage comparison, quantified.
//!
//! The paper's Table I rates the three stages qualitatively (speed of
//! exploration, device precision, accuracy of results, risk of damage).
//! This harness measures each dimension on the same reference workflow:
//!
//! * **speed** — commands per virtual second running the safe Fig. 5
//!   workflow with each stage's latency model;
//! * **precision** — the positional repeatability σ of the stage's arms;
//! * **accuracy** — timing fidelity relative to production (how closely
//!   the stage's per-command time matches the real lab's);
//! * **risk** — the damage cost incurred when the 16-bug suite runs
//!   *unguarded* in the stage, weighted by what the stage's equipment
//!   costs (virtual = free, cardboard mockups = cheap, lab = expensive).

use rabit_buginject::catalog;
use rabit_core::Severity;
use rabit_devices::{ActionKind, Command, LatencyModel};
use rabit_geometry::noise::PositionNoise;
use rabit_geometry::Vec3;
use rabit_testbed::{workflows, Testbed};
use rabit_tracer::Tracer;

/// One of RABIT's three deployment stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1: the Extended Simulator.
    Simulator,
    /// Stage 2: the low-fidelity testbed.
    Testbed,
    /// Stage 3: the production lab.
    Production,
}

impl Stage {
    /// All three stages, in deployment order.
    pub fn all() -> [Stage; 3] {
        [Stage::Simulator, Stage::Testbed, Stage::Production]
    }

    /// The stage's name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Simulator => "Simulator",
            Stage::Testbed => "Testbed",
            Stage::Production => "Production",
        }
    }

    fn latency(&self) -> LatencyModel {
        match self {
            Stage::Simulator => LatencyModel::SIMULATED,
            Stage::Testbed => LatencyModel::TESTBED,
            Stage::Production => LatencyModel::PRODUCTION,
        }
    }

    /// Positional repeatability (σ, metres): zero in simulation,
    /// centimetre-scale on the educational arms, sub-millimetre on the
    /// UR3e (vendor repeatability ±0.03 mm, dominated in practice by
    /// calibration drift).
    pub fn precision_sigma_m(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0,
            Stage::Testbed => 0.013,
            Stage::Production => 0.0005,
        }
    }

    /// Cost multiplier of damaging this stage's equipment.
    fn damage_cost_multiplier(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0, // nothing physical can break
            Stage::Testbed => 1.0,   // cardboard and toy arms
            Stage::Production => 50.0,
        }
    }

    /// Per-experiment setup/reset cost (seconds): zero for a simulator
    /// restart, minutes of repositioning mockups on the testbed, and the
    /// chemical prep + cleanup of a real run. This, not raw arm speed, is
    /// what makes exploration "High / Medium / Low" across the stages.
    fn setup_cost_s(&self) -> f64 {
        match self {
            Stage::Simulator => 0.0,
            Stage::Testbed => 60.0,
            Stage::Production => 900.0,
        }
    }
}

/// Measured Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// The stage.
    pub stage: Stage,
    /// Commands per virtual second on the reference workflow.
    pub commands_per_second: f64,
    /// Arm repeatability σ (metres).
    pub precision_sigma_m: f64,
    /// Mean measured placement error over repeated moves (metres):
    /// commanded vs achieved tool position through the full lab pipeline.
    pub measured_placement_error_m: f64,
    /// Per-command time relative to production (1.0 = production-real).
    pub timing_fidelity: f64,
    /// Total damage cost of running the 16-bug suite unguarded.
    pub unguarded_risk_cost: f64,
}

fn severity_weight(severity: Severity) -> f64 {
    match severity {
        Severity::Low => 1.0,
        Severity::MediumLow => 3.0,
        Severity::MediumHigh => 8.0,
        Severity::High => 25.0,
    }
}

/// Virtual seconds per command of the reference workflow in a stage:
/// `(raw, amortised)` where `amortised` folds in the per-experiment setup
/// cost. Exploration speed uses the amortised figure; timing fidelity the
/// raw one.
fn seconds_per_command(stage: Stage) -> (f64, f64) {
    let mut tb = Testbed::with_latency(stage.latency());
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let report = Tracer::pass_through(&mut tb.lab).run(&wf);
    assert!(report.completed(), "reference workflow must complete");
    let n = report.executed as f64;
    (
        report.lab_time_s / n,
        (report.lab_time_s + stage.setup_cost_s()) / n,
    )
}

/// Mean placement error of the stage's arm over `trials` commanded
/// moves, measured through the lab pipeline with the stage's noise model.
fn placement_error(stage: Stage, trials: usize) -> f64 {
    let mut total = 0.0;
    for seed in 0..trials as u64 {
        let mut tb = Testbed::with_latency(stage.latency());
        tb.lab.set_arm_noise(
            "viperx",
            PositionNoise::gaussian(stage.precision_sigma_m()),
            seed,
        );
        let target = Vec3::new(0.40, 0.10, 0.30);
        tb.lab
            .apply(&Command::new(
                "viperx",
                ActionKind::MoveToLocation { target },
            ))
            .expect("free-space move");
        let achieved = tb
            .lab
            .device(&"viperx".into())
            .unwrap()
            .as_arm()
            .unwrap()
            .location();
        total += achieved.distance(target);
    }
    total / trials as f64
}

/// Damage cost of running every catalogued bug unguarded in a lab with
/// the stage's latency model and cost structure.
fn unguarded_risk(stage: Stage) -> f64 {
    let mut total = 0.0;
    for bug in catalog() {
        let mut tb = Testbed::with_latency(stage.latency());
        let wf = bug.buggy_workflow(&tb.locations);
        let _ = Tracer::pass_through(&mut tb.lab).run(&wf);
        for event in tb.lab.damage_log() {
            total += severity_weight(event.severity);
        }
    }
    total * stage.damage_cost_multiplier()
}

/// Measures one stage.
pub fn profile_stage(stage: Stage) -> StageProfile {
    let (raw, amortised) = seconds_per_command(stage);
    let (prod_raw, _) = seconds_per_command(Stage::Production);
    StageProfile {
        stage,
        commands_per_second: 1.0 / amortised,
        precision_sigma_m: stage.precision_sigma_m(),
        measured_placement_error_m: placement_error(stage, 60),
        timing_fidelity: raw / prod_raw,
        unguarded_risk_cost: unguarded_risk(stage),
    }
}

/// Measures all three stages.
pub fn profile_all() -> Vec<StageProfile> {
    Stage::all().into_iter().map(profile_stage).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_orderings_hold() {
        let profiles = profile_all();
        let [sim, tb, prod] = [&profiles[0], &profiles[1], &profiles[2]];
        // Speed of exploration: High / Medium / Low.
        assert!(sim.commands_per_second > tb.commands_per_second);
        assert!(tb.commands_per_second >= prod.commands_per_second);
        // Device precision: Low / Medium / High (σ shrinks).
        assert!(sim.precision_sigma_m <= tb.precision_sigma_m);
        assert!(prod.precision_sigma_m < tb.precision_sigma_m);
        // Measured placement error tracks the configured repeatability:
        // E[‖ε‖] = σ·√(8/π).
        assert_eq!(sim.measured_placement_error_m, 0.0);
        let predicted = PositionNoise::gaussian(tb.precision_sigma_m).expected_error_norm();
        assert!(
            (tb.measured_placement_error_m - predicted).abs() / predicted < 0.35,
            "measured {:.4} vs predicted {predicted:.4}",
            tb.measured_placement_error_m
        );
        assert!(prod.measured_placement_error_m < tb.measured_placement_error_m);
        // Accuracy of results: Low / Medium / High (fidelity → 1).
        assert!((prod.timing_fidelity - 1.0).abs() < 1e-9);
        assert!(sim.timing_fidelity < tb.timing_fidelity);
        assert!(tb.timing_fidelity <= 2.0);
        // Risk of damage: Low / Medium / High.
        assert_eq!(sim.unguarded_risk_cost, 0.0);
        assert!(tb.unguarded_risk_cost > 0.0);
        assert!(prod.unguarded_risk_cost > tb.unguarded_risk_cost);
    }

    #[test]
    fn stage_names() {
        assert_eq!(Stage::all().len(), 3);
        assert_eq!(Stage::Simulator.name(), "Simulator");
    }
}
