//! Loom-style interleaving stress for the MPMC ring buffer.
//!
//! The workspace has no model checker, so this suite forces scheduling
//! diversity the way the fault-injection runtime does: seeded latency
//! spikes. Each thread draws from its own deterministic [`Rng`] stream
//! and occasionally sleeps or yields at the worst possible moments
//! (between reserving a slot and publishing it, between claiming and
//! releasing), so slow-producer/fast-consumer, out-of-order publish,
//! and multi-lap wrap interleavings are all exercised. Every seed runs
//! the same schedule again on re-execution — failures reproduce.

use rabit_util::ring::{Parker, RingBuffer};
use rabit_util::rng::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Seeded scheduling jitter: mostly nothing, sometimes a yield,
/// occasionally a real sleep (the "latency spike").
fn jitter(rng: &mut Rng) {
    match rng.next_u64() % 32 {
        0 => std::thread::sleep(Duration::from_micros(rng.next_u64() % 80)),
        1..=4 => std::thread::yield_now(),
        _ => {}
    }
}

/// Runs `producers` push threads against `consumers` pop threads on a
/// deliberately tiny ring, with seeded latency spikes on both sides.
/// Asserts (a) nothing is lost or duplicated and (b) each consumer saw
/// every producer's items as an increasing subsequence — the per-tenant
/// FIFO property the broker's lanes rely on.
fn stress(seed: u64, producers: usize, consumers: usize, per_producer: usize, capacity: usize) {
    let ring = Arc::new(RingBuffer::with_capacity(capacity));
    let space = Arc::new(Parker::new());
    let items = Arc::new(Parker::new());
    let received = Arc::new(AtomicUsize::new(0));
    let total = producers * per_producer;
    let mut views: Vec<Vec<(usize, usize)>> = Vec::new();

    std::thread::scope(|scope| {
        for producer in 0..producers {
            let ring = Arc::clone(&ring);
            let space = Arc::clone(&space);
            let items = Arc::clone(&items);
            let mut rng = Rng::seed_from_u64(seed ^ (producer as u64).wrapping_mul(0x9E37));
            scope.spawn(move || {
                for seq in 0..per_producer {
                    let mut item = (producer, seq);
                    loop {
                        let ticket = space.ticket();
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                space.park(ticket);
                            }
                        }
                    }
                    items.unpark_all();
                    jitter(&mut rng);
                }
            });
        }

        let mut handles = Vec::new();
        for consumer in 0..consumers {
            let ring = Arc::clone(&ring);
            let space = Arc::clone(&space);
            let items = Arc::clone(&items);
            let received = Arc::clone(&received);
            let mut rng = Rng::seed_from_u64(seed ^ (consumer as u64).wrapping_mul(0xC2B2) ^ 1);
            handles.push(scope.spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let ticket = items.ticket();
                    if let Some(item) = ring.try_pop() {
                        received.fetch_add(1, Ordering::AcqRel);
                        seen.push(item);
                        space.unpark_all();
                        jitter(&mut rng);
                        continue;
                    }
                    if received.load(Ordering::Acquire) >= total {
                        return seen;
                    }
                    items.park(ticket);
                }
            }));
        }
        // Final drain may leave consumers parked with no producer left
        // to wake them: the last popper broadcasts the exit condition.
        for handle in handles {
            items.unpark_all();
            views.push(handle.join().expect("consumer panicked"));
        }
    });

    let mut counts = vec![vec![0usize; per_producer]; producers];
    for view in &views {
        let mut last_seen = vec![None::<usize>; producers];
        for &(producer, seq) in view {
            counts[producer][seq] += 1;
            assert!(
                last_seen[producer].is_none_or(|last| last < seq),
                "seed {seed}: consumer view reordered producer {producer}"
            );
            last_seen[producer] = Some(seq);
        }
    }
    for (producer, seqs) in counts.iter().enumerate() {
        for (seq, &count) in seqs.iter().enumerate() {
            assert_eq!(
                count, 1,
                "seed {seed}: item ({producer},{seq}) seen {count} times"
            );
        }
    }
}

#[test]
fn mpsc_under_seeded_latency_spikes() {
    for seed in 0..6 {
        stress(0xA11CE + seed, 4, 1, 800, 8);
    }
}

#[test]
fn mpmc_under_seeded_latency_spikes() {
    for seed in 0..6 {
        stress(0xB0B + seed, 4, 3, 600, 4);
    }
}

#[test]
fn single_slot_pairs_force_maximum_contention() {
    // Capacity 2 (the minimum) makes every push race every pop.
    for seed in 0..4 {
        stress(0xFACADE + seed, 2, 2, 500, 2);
    }
}
