//! Proximity sensors: the new device class the paper's Berlinguette visit
//! motivates.
//!
//! "For safety concerns, they used sensors earlier, but due to the
//! possibility of frequent false alarms and malfunction, they do not use
//! them anymore. … by incorporating sensors, which could be treated as a
//! new device class, one could imagine enhancing RABIT to respond to
//! sensor inputs that indicate a robot arm is approaching the area that
//! is occupied." (§V-B)
//!
//! A [`ProximitySensor`] watches a region of the deck and reports whether
//! something (typically a person) occupies it. Unlike the lab's abandoned
//! hard-wired interlocks, a sensor under RABIT feeds a *rule*
//! ([`occupied`-gated motion][crate::StateKey::Custom]) — so its false
//! alarms stop an experiment gracefully instead of killing power.

use crate::command::ActionKind;
use crate::device::{Device, DeviceError, LatencyModel, Malfunction};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::Aabb;

/// The custom state variable a proximity sensor reports.
pub const OCCUPIED_KEY: &str = "occupied";

/// A proximity/occupancy sensor watching a region of the deck.
#[derive(Debug, Clone, PartialEq)]
pub struct ProximitySensor {
    id: DeviceId,
    watched_region: Aabb,
    occupied: bool,
    malfunction: Option<Malfunction>,
}

impl ProximitySensor {
    /// Creates a sensor watching `region`, initially clear.
    pub fn new(id: impl Into<DeviceId>, watched_region: Aabb) -> Self {
        ProximitySensor {
            id: id.into(),
            watched_region,
            occupied: false,
            malfunction: None,
        }
    }

    /// The watched region.
    pub fn watched_region(&self) -> Aabb {
        self.watched_region
    }

    /// Ground truth: something entered/left the region (set by the
    /// environment or test harness, the way a person walks up to a deck).
    pub fn set_occupied(&mut self, occupied: bool) {
        self.occupied = occupied;
    }

    /// Whether the region is physically occupied.
    pub fn occupied(&self) -> bool {
        self.occupied
    }
}

impl Device for ProximitySensor {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::Custom("proximity_sensor".to_string())
    }

    fn fetch_state(&self) -> DeviceState {
        // A stuck sensor reads clear regardless of reality — the
        // malfunction class that made the Berlinguette Lab abandon
        // hard-wired sensors.
        let reading = match self.malfunction {
            Some(Malfunction::SilentNoop) => false,
            _ => self.occupied,
        };
        DeviceState::new().with(StateKey::Custom(OCCUPIED_KEY.to_string()), reading)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        Err(DeviceError::UnsupportedAction {
            device: self.id.clone(),
            action: action.label(),
        })
    }

    fn latency(&self) -> LatencyModel {
        LatencyModel {
            motion_s: 0.0,
            process_s: 0.0,
            status_s: 0.002,
        }
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::Vec3;

    fn sensor() -> ProximitySensor {
        ProximitySensor::new(
            "deck_sensor",
            Aabb::new(Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.0, 1.0, 2.0)),
        )
    }

    #[test]
    fn reports_occupancy() {
        let mut s = sensor();
        assert!(!s.occupied());
        assert_eq!(
            s.fetch_state()
                .get_bool(&StateKey::Custom(OCCUPIED_KEY.into())),
            Some(false)
        );
        s.set_occupied(true);
        assert!(s.occupied());
        assert_eq!(
            s.fetch_state()
                .get_bool(&StateKey::Custom(OCCUPIED_KEY.into())),
            Some(true)
        );
    }

    #[test]
    fn sensors_are_passive() {
        let mut s = sensor();
        assert!(s.execute(&ActionKind::MoveHome).is_err());
        assert_eq!(
            s.device_type(),
            DeviceType::Custom("proximity_sensor".into())
        );
        assert!(s.watched_region().contains_point(Vec3::ZERO));
    }

    #[test]
    fn stuck_sensor_reads_clear() {
        let mut s = sensor();
        s.set_occupied(true);
        s.inject_malfunction(Some(Malfunction::SilentNoop));
        assert_eq!(
            s.fetch_state()
                .get_bool(&StateKey::Custom(OCCUPIED_KEY.into())),
            Some(false),
            "a stuck sensor is blind — the failure mode the lab feared"
        );
    }
}
