//! Real compute cost of the kinematics substrate: forward kinematics,
//! inverse kinematics, and trajectory sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use rabit_geometry::Vec3;
use rabit_kinematics::ik::{solve_position, IkParams};
use rabit_kinematics::presets;
use rabit_kinematics::trajectory::Trajectory;
use std::hint::black_box;

fn bench_trajectory(c: &mut Criterion) {
    let arm = presets::ur3e();
    let q0 = arm.home_configuration();
    let q1 = arm.sleep_configuration();

    let mut group = c.benchmark_group("kinematics");
    group.bench_function("forward_kinematics", |b| {
        b.iter(|| black_box(arm.chain().end_effector_pose(black_box(q0.angles()))))
    });
    group.bench_function("link_capsules", |b| {
        b.iter(|| black_box(arm.link_capsules(black_box(&q0), None)))
    });
    let target = arm.tool_position(&q0) + Vec3::new(0.05, 0.03, -0.04);
    group.bench_function("ik_solve_nearby", |b| {
        b.iter(|| {
            black_box(solve_position(
                &arm,
                &q0,
                black_box(target),
                &IkParams::default(),
            ))
        })
    });
    group.finish();

    let traj = Trajectory::linear(q0, q1);
    let mut group = c.benchmark_group("trajectory");
    group.bench_function("sample_every_50ms", |b| {
        b.iter(|| black_box(traj.sample_every(black_box(0.05))))
    });
    group.bench_function("swept_capsules_20", |b| {
        b.iter(|| black_box(traj.swept_capsules(&arm, None, black_box(20))))
    });
    group.finish();
}

criterion_group!(benches, bench_trajectory);
criterion_main!(benches);
