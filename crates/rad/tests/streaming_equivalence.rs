//! Differential suite: the streaming pipeline against the batch originals.
//!
//! Three contracts, each checked across a hundred-plus seeded
//! configurations (seed × sessions × noise × drift position × miner
//! thresholds):
//!
//! 1. **Adapter bit-identity** — `generate_corpus` is exactly
//!    `TraceStream::collect()`, and a drifted stream shares the
//!    pre-drift prefix of its undrifted twin.
//! 2. **Miner equivalence** — `OnlineMiner` fed one command at a time
//!    emits rule-for-rule (name, support, confidence) what the
//!    pre-streaming batch miner computed. The reference below is a
//!    self-contained copy of that original algorithm, kept verbatim so
//!    `mine()`'s new delegation to the online miner is checked against
//!    the old code, not against itself.
//! 3. **Lab adapter identity** — `generate_lab_corpus` is exactly
//!    `LabTraceStream::collect()`.

use rabit_devices::{ActionKind, DeviceId};
use rabit_rad::{
    generate_corpus, generate_lab_corpus, mine, LabTraceStream, MineParams, OnlineMiner,
    RadGenParams, TraceStream,
};
use rabit_tracer::Trace;
use std::collections::BTreeMap;

/// The pre-streaming batch miner, copied verbatim (modulo returning
/// plain tuples) from the version `mine()` replaced. Do not "improve"
/// this — its job is to stay what the old code was.
fn reference_mine(corpus: &[Trace], params: &MineParams) -> Vec<(String, usize, f64)> {
    use rabit_rad::{GuardedAction, Toggle};
    let mut guard_counts: BTreeMap<(GuardedAction, Toggle, bool), (usize, usize)> = BTreeMap::new();
    let mut ordering_support = 0usize;
    let mut ordering_ok = 0usize;

    for trace in corpus {
        let mut door_open: BTreeMap<DeviceId, bool> = BTreeMap::new();
        let mut running: BTreeMap<DeviceId, bool> = BTreeMap::new();
        let mut solid_seen: BTreeMap<DeviceId, usize> = BTreeMap::new();
        let mut liquid_seen: BTreeMap<DeviceId, usize> = BTreeMap::new();

        for (idx, cmd) in trace.executed_commands().enumerate() {
            let observations: Vec<(GuardedAction, &DeviceId)> = match &cmd.action {
                ActionKind::MoveInsideDevice { device } => {
                    vec![(GuardedAction::EnterDevice, device)]
                }
                ActionKind::StartAction { .. } | ActionKind::DoseSolid { .. } => {
                    vec![(GuardedAction::StartRunning, &cmd.actor)]
                }
                ActionKind::SetDoor { open: true } => vec![(GuardedAction::OpenDoor, &cmd.actor)],
                _ => vec![],
            };
            for (action, device) in observations {
                if let Some(&open) = door_open.get(device) {
                    for required in [true, false] {
                        let e = guard_counts
                            .entry((action, Toggle::Door, required))
                            .or_default();
                        e.0 += 1;
                        if open == required {
                            e.1 += 1;
                        }
                    }
                }
                if let Some(&run) = running.get(device) {
                    for required in [true, false] {
                        let e = guard_counts
                            .entry((action, Toggle::Running, required))
                            .or_default();
                        e.0 += 1;
                        if run == required {
                            e.1 += 1;
                        }
                    }
                }
            }

            match &cmd.action {
                ActionKind::SetDoor { open } => {
                    door_open.insert(cmd.actor.clone(), *open);
                }
                ActionKind::StartAction { .. } => {
                    running.insert(cmd.actor.clone(), true);
                }
                ActionKind::StopAction => {
                    running.insert(cmd.actor.clone(), false);
                }
                ActionKind::DoseSolid { into, .. } => {
                    solid_seen.entry(into.clone()).or_insert(idx);
                }
                ActionKind::DoseLiquid { into, .. } => {
                    liquid_seen.entry(into.clone()).or_insert(idx);
                }
                _ => {}
            }
        }

        for (container, &l) in &liquid_seen {
            if let Some(&s) = solid_seen.get(container) {
                ordering_support += 1;
                if s < l {
                    ordering_ok += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((action, toggle, required), (support, ok)) in guard_counts {
        let confidence = if support == 0 {
            0.0
        } else {
            ok as f64 / support as f64
        };
        if support >= params.min_support && confidence >= params.min_confidence {
            out.push((
                format!("{action}_requires_{toggle}={required}"),
                support,
                confidence,
            ));
        }
    }
    if ordering_support >= params.min_support {
        let confidence = ordering_ok as f64 / ordering_support as f64;
        if confidence >= params.min_confidence {
            out.push((
                "solid_before_liquid".to_string(),
                ordering_support,
                confidence,
            ));
        }
    }
    out
}

/// The seeded configuration grid: 10 seeds × 2 corpus sizes × 3 noise
/// rates × 3 drift positions = 180 configurations, drift boundaries
/// included (drift at the first session and mid-corpus).
fn configurations() -> Vec<RadGenParams> {
    let mut configs = Vec::new();
    for seed in [1u64, 2, 3, 7, 11, 13, 17, 23, 42, 97] {
        for sessions in [30usize, 80] {
            for noise in [0.0f64, 0.05, 0.2] {
                for drift in [None, Some(1usize), Some(sessions / 2)] {
                    let mut p = RadGenParams::new()
                        .with_seed(seed)
                        .with_sessions(sessions)
                        .with_noise_rate(noise);
                    if let Some(at) = drift {
                        p = p.with_drift_at(at);
                    }
                    configs.push(p);
                }
            }
        }
    }
    assert!(configs.len() >= 100, "property grid covers 100+ configs");
    configs
}

/// Miner thresholds rotated across the grid so equivalence is not only
/// checked at the default cut-offs.
fn mine_params_for(i: usize) -> MineParams {
    match i % 3 {
        0 => MineParams::default(),
        1 => MineParams::new()
            .with_min_support(1)
            .with_min_confidence(0.5),
        _ => MineParams::new()
            .with_min_support(50)
            .with_min_confidence(0.99),
    }
}

#[test]
fn generate_corpus_is_the_stream_collected() {
    for params in configurations() {
        let collected: Vec<Trace> = TraceStream::new(&params).collect();
        assert_eq!(
            collected,
            generate_corpus(&params),
            "adapter bit-identity failed for {params:?}"
        );
    }
}

#[test]
fn drifted_streams_share_the_pre_drift_prefix() {
    for params in configurations() {
        let Some(at) = params.drift_at else { continue };
        let undrifted = RadGenParams {
            drift_at: None,
            ..params
        };
        let prefix: Vec<Trace> = TraceStream::new(&params).take(at).collect();
        let twin: Vec<Trace> = TraceStream::new(&undrifted).take(at).collect();
        assert_eq!(prefix, twin, "prefix diverged before drift for {params:?}");
    }
}

#[test]
fn online_miner_matches_the_reference_batch_miner() {
    for (i, params) in configurations().into_iter().enumerate() {
        let mp = mine_params_for(i);
        let corpus = generate_corpus(&params);
        let expected = reference_mine(&corpus, &mp);

        // Event-at-a-time: the miner never sees a Trace, only commands
        // and session boundaries.
        let mut miner = OnlineMiner::new(mp);
        for trace in TraceStream::new(&params) {
            for cmd in trace.executed_commands() {
                miner.observe(cmd);
            }
            miner.end_session();
        }
        let streamed: Vec<(String, usize, f64)> = miner
            .rules()
            .iter()
            .map(|r| (r.name().to_string(), r.support(), r.confidence()))
            .collect();
        assert_eq!(streamed, expected, "online ≠ batch for {params:?} / {mp:?}");

        // And the batch facade (now built on the online miner) still
        // computes what the old batch code did.
        let batch: Vec<(String, usize, f64)> = mine(&corpus, &mp)
            .iter()
            .map(|r| (r.name().to_string(), r.support(), r.confidence()))
            .collect();
        assert_eq!(
            batch, expected,
            "mine() ≠ old batch for {params:?} / {mp:?}"
        );
    }
}

#[test]
fn lab_corpus_is_the_lab_stream_collected() {
    for seed in [7u64, 9, 1234] {
        let collected: Vec<Trace> = LabTraceStream::new(6, seed).collect();
        assert_eq!(collected, generate_lab_corpus(6, seed));
    }
}
