//! Synthetic Robot Arm Dataset generation.
//!
//! The real RAD contains "three months of command trace data captured in
//! the Hein Lab" by RATracer. This generator produces a synthetic corpus
//! with the same shape: many sessions of parameter-randomised solubility
//! style workflows, each serialised in the shared [`Trace`] format. The
//! corpus embodies the implicit conventions the paper mined from RAD —
//! device doors are opened before arms enter them, solids are added
//! before liquids, devices run with doors closed — so the miner
//! (`rabit-rad::mine`) has real structure to recover.

use rabit_devices::{ActionKind, Command, DeviceId};
use rabit_geometry::Vec3;
use rabit_tracer::{Trace, TraceEvent, TraceOutcome};
use rabit_util::Rng;

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadGenParams {
    /// Number of experiment sessions (the paper's corpus covers ~3 months
    /// of lab work; a session is one workflow run).
    pub sessions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a session deviates from convention (sloppy but
    /// harmless operator behaviour that the miner must tolerate, e.g.
    /// leaving the door open while idle).
    pub noise_rate: f64,
}

impl Default for RadGenParams {
    fn default() -> Self {
        RadGenParams {
            sessions: 200,
            seed: 7,
            noise_rate: 0.05,
        }
    }
}

/// Generates the corpus: one [`Trace`] per session.
pub fn generate_corpus(params: &RadGenParams) -> Vec<Trace> {
    let mut rng = Rng::seed_from_u64(params.seed);
    (0..params.sessions)
        .map(|i| generate_session(i, &mut rng, params.noise_rate))
        .collect()
}

/// One randomized solubility-style session.
fn generate_session(index: usize, rng: &mut Rng, noise_rate: f64) -> Trace {
    let vial: DeviceId = format!("vial_{}", rng.random_range(0..6)).into();
    let amount = rng.random_range(2.0..9.0f64);
    let solvent = rng.random_range(1.0..4.0f64);
    let temp = rng.random_range(40.0..90.0f64);
    let iterations = rng.random_range(1..4usize);

    let mut commands: Vec<Command> = Vec::new();
    let arm = DeviceId::new("ur3e");
    let doser = DeviceId::new("dosing_device");
    let hotplate = DeviceId::new("hotplate");
    let pump = DeviceId::new("syringe_pump");

    let grid_pos = Vec3::new(0.35, -0.05, 0.17);
    let safe = Vec3::new(0.35, -0.05, 0.28);

    commands.push(Command::new(arm.clone(), ActionKind::MoveHome));
    commands.push(Command::new(vial.clone(), ActionKind::Decap));

    // Solid dosing idiom: open door → enter → place → exit → close →
    // dose → open → enter → pick → exit → close.
    commands.push(Command::new(
        doser.clone(),
        ActionKind::SetDoor { open: true },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveToLocation { target: safe },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveToLocation { target: grid_pos },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PickObject {
            object: vial.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveInsideDevice {
            device: doser.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PlaceObject {
            object: vial.clone(),
            into: Some(doser.clone()),
        },
    ));
    commands.push(Command::new(arm.clone(), ActionKind::MoveOutOfDevice));
    // Conventional operators close the door before dosing; sloppy ones
    // sometimes dose with it open (it "worked anyway" in the lab, but the
    // convention is what the miner must recover).
    if !rng.random_bool(noise_rate) {
        commands.push(Command::new(
            doser.clone(),
            ActionKind::SetDoor { open: false },
        ));
    }
    commands.push(Command::new(
        doser.clone(),
        ActionKind::DoseSolid {
            amount_mg: amount,
            into: vial.clone(),
        },
    ));
    commands.push(Command::new(
        doser.clone(),
        ActionKind::SetDoor { open: true },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveInsideDevice {
            device: doser.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PickObject {
            object: vial.clone(),
        },
    ));
    commands.push(Command::new(arm.clone(), ActionKind::MoveOutOfDevice));
    // Conventional operators close the door; sloppy ones sometimes don't.
    if !rng.random_bool(noise_rate) {
        commands.push(Command::new(
            doser.clone(),
            ActionKind::SetDoor { open: false },
        ));
    }

    // Liquid after solid (the Hein convention mined from RAD).
    commands.push(Command::new(
        pump.clone(),
        ActionKind::DoseLiquid {
            volume_ml: solvent,
            into: vial.clone(),
        },
    ));

    for _ in 0..iterations {
        // Stir cycle.
        commands.push(Command::new(
            arm.clone(),
            ActionKind::PlaceObject {
                object: vial.clone(),
                into: Some(hotplate.clone()),
            },
        ));
        commands.push(Command::new(
            hotplate.clone(),
            ActionKind::StartAction { value: temp },
        ));
        commands.push(Command::new(hotplate.clone(), ActionKind::StopAction));
        commands.push(Command::new(
            arm.clone(),
            ActionKind::PickObject {
                object: vial.clone(),
            },
        ));
        commands.push(Command::new(
            pump.clone(),
            ActionKind::DoseLiquid {
                volume_ml: 1.0,
                into: vial.clone(),
            },
        ));
    }

    commands.push(Command::new(
        arm.clone(),
        ActionKind::PlaceObject {
            object: vial.clone(),
            into: None,
        },
    ));
    commands.push(Command::new(vial.clone(), ActionKind::Cap));
    commands.push(Command::new(arm, ActionKind::MoveToSleep));

    // Stamp timestamps: production-ish pacing with jitter.
    let mut trace = Trace::new(format!("rad_session_{index:04}"));
    let mut t = 0.0;
    for (seq, command) in commands.into_iter().enumerate() {
        t += rng.random_range(0.5..3.5);
        trace.record(TraceEvent {
            seq,
            time_s: t,
            command,
            outcome: TraceOutcome::Forwarded,
        });
    }
    trace
}

/// Generates a corpus the way the real RAD was captured: by *running*
/// randomized solubility workflows on the (simulated) testbed with
/// RATracer in pass-through mode. Unlike [`generate_corpus`]'s purely
/// template-based traces, these sessions carry the timestamps and command
/// sequences of genuinely executed lab work.
pub fn generate_lab_corpus(sessions: usize, seed: u64) -> Vec<Trace> {
    use rabit_tracer::Tracer;

    let mut rng = Rng::seed_from_u64(seed);
    (0..sessions)
        .map(|i| {
            let mut tb = rabit_testbed::Testbed::new();
            let loc = tb.locations;
            let grid = loc.grid_nw_viperx;
            let dose_mg = rng.random_range(2.0..8.0f64);
            let mut wf = rabit_tracer::Workflow::new(format!("lab_session_{i:04}"))
                .go_to_sleep("ned2")
                .set_door("dosing_device", true)
                .decap("vial")
                .go_home("viperx")
                .move_to("viperx", grid.pickup_safe_height)
                .pick_up("viperx", "vial", grid.pickup)
                .move_to("viperx", grid.pickup_safe_height)
                .move_to("viperx", loc.dosing_viperx.approach)
                .move_inside("viperx", "dosing_device")
                .then(Command::new(
                    "viperx",
                    ActionKind::PlaceObject {
                        object: "vial".into(),
                        into: Some("dosing_device".into()),
                    },
                ))
                .move_out("viperx")
                .set_door("dosing_device", false)
                .dose_solid("dosing_device", dose_mg, "vial")
                .set_door("dosing_device", true)
                .move_to("viperx", loc.dosing_viperx.approach)
                .move_inside("viperx", "dosing_device")
                .then(Command::new(
                    "viperx",
                    ActionKind::PickObject {
                        object: "vial".into(),
                    },
                ))
                .move_out("viperx")
                .move_to("viperx", grid.pickup_safe_height)
                .place_at("viperx", "vial", grid.pickup)
                .move_to("viperx", grid.pickup_safe_height)
                .set_door("dosing_device", false);
            // Some sessions add solvent after the solid (the convention).
            if rng.random_bool(0.7) {
                wf = wf.dose_liquid("syringe_pump", rng.random_range(1.0..4.0f64), "vial");
            }
            wf = wf.cap("vial").go_home("viperx").go_to_sleep("viperx");
            let report = Tracer::pass_through(&mut tb.lab).run(&wf);
            assert!(report.completed(), "lab session must execute cleanly");
            report.trace
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_is_deterministic() {
        let p = RadGenParams {
            sessions: 10,
            ..RadGenParams::default()
        };
        let a = generate_corpus(&p);
        let b = generate_corpus(&p);
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "same seed, same corpus");
        let c = generate_corpus(&RadGenParams { seed: 8, ..p });
        assert_ne!(a, c, "different seed, different corpus");
    }

    #[test]
    fn sessions_follow_the_door_convention() {
        // In every session, each move_robot_inside is preceded by an
        // open_door with no intervening close_door.
        let corpus = generate_corpus(&RadGenParams {
            sessions: 30,
            ..RadGenParams::default()
        });
        for trace in &corpus {
            let mut door_open = false;
            for cmd in trace.executed_commands() {
                match cmd.to_string().as_str() {
                    "dosing_device.open_door" => door_open = true,
                    "dosing_device.close_door" => door_open = false,
                    s if s.contains("move_robot_inside(dosing_device)") => {
                        assert!(door_open, "{}: entered through closed door", trace.workflow);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn solids_precede_liquids_per_vial() {
        let corpus = generate_corpus(&RadGenParams {
            sessions: 30,
            ..RadGenParams::default()
        });
        for trace in &corpus {
            let cmds: Vec<String> = trace.executed_commands().map(ToString::to_string).collect();
            let first_solid = cmds.iter().position(|c| c.contains("dose_solid"));
            let first_liquid = cmds.iter().position(|c| c.contains("dose_liquid"));
            if let (Some(s), Some(l)) = (first_solid, first_liquid) {
                assert!(s < l, "{}: liquid before solid", trace.workflow);
            }
        }
    }

    #[test]
    fn lab_captured_corpus_executes_and_mines() {
        // The RATracer→RAD pipeline end to end: sessions captured from
        // real (simulated) runs, then mined.
        let corpus = generate_lab_corpus(40, 11);
        assert_eq!(corpus.len(), 40);
        for trace in &corpus {
            assert!(trace.len() > 15, "{} too short", trace.workflow);
            // Executed traces carry real, increasing lab timestamps.
            for w in trace.events.windows(2) {
                assert!(w[1].time_s >= w[0].time_s);
            }
        }
        let mined = crate::mine::mine(&corpus, &crate::mine::MineParams::default());
        let names: Vec<String> = mined.iter().map(|m| m.name()).collect();
        assert!(
            names.contains(&"move_robot_inside_requires_door_open=true".to_string()),
            "door rule must be recoverable from captured sessions: {names:?}"
        );
        assert!(
            names.contains(&"solid_before_liquid".to_string()),
            "{names:?}"
        );
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let corpus = generate_corpus(&RadGenParams {
            sessions: 5,
            ..RadGenParams::default()
        });
        for trace in &corpus {
            for w in trace.events.windows(2) {
                assert!(w[1].time_s > w[0].time_s);
            }
        }
    }
}
