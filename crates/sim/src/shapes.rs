//! Non-cuboid obstacle shapes — the paper's first open challenge.
//!
//! "Real-life, software-controlled devices come in different shapes and
//! sizes, so we need to expand our device descriptions to easily handle
//! objects other than cuboids" (§V-C). Participant P noted that "a
//! centrifuge resembles a hemisphere more than a cuboid and the
//! thermoshaker has a bump at the top" (§V-A).
//!
//! [`ObstacleShape`] extends the simulator's world with exactly those
//! cases: hemispheres, spheres, vertical cylinders, and composites (a box
//! with a bump on top), while keeping the cuboid as the default.

use rabit_geometry::{collide, Aabb, Capsule, Segment, Sphere, Vec3};

/// A vertical cylinder (axis along +z), the shape of stirrers and
/// ultrasonic nozzles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerticalCylinder {
    /// Center of the base circle.
    pub base: Vec3,
    /// Height above the base.
    pub height: f64,
    /// Radius.
    pub radius: f64,
}

impl VerticalCylinder {
    /// Creates a vertical cylinder.
    ///
    /// # Panics
    ///
    /// Panics if `height` or `radius` is not strictly positive.
    pub fn new(base: Vec3, height: f64, radius: f64) -> Self {
        assert!(
            height > 0.0 && radius > 0.0,
            "cylinder needs positive dimensions"
        );
        VerticalCylinder {
            base,
            height,
            radius,
        }
    }

    /// The cylinder's central axis as a capsule of radius `radius` — a
    /// capsule over-approximates the cylinder by its end caps only, which
    /// is the safe direction for collision checking.
    fn as_capsule(&self) -> Capsule {
        Capsule::new(
            self.base,
            self.base + Vec3::new(0.0, 0.0, self.height),
            self.radius,
        )
    }
}

/// An obstacle shape in the simulated world.
#[derive(Debug, Clone, PartialEq)]
pub enum ObstacleShape {
    /// The paper's default: an axis-aligned cuboid.
    Cuboid(Aabb),
    /// A hemisphere sitting dome-up on the deck (the centrifuge).
    /// Conservatively checked as the full sphere clipped to z ≥ base z
    /// via its bounding test — see [`ObstacleShape::intersects_capsule`].
    Hemisphere {
        /// Center of the flat base circle.
        base_center: Vec3,
        /// Radius of the dome.
        radius: f64,
    },
    /// A full sphere (levitated/handled objects).
    Sphere(Sphere),
    /// A vertical cylinder.
    Cylinder(VerticalCylinder),
    /// A union of shapes — e.g. "the thermoshaker has a bump at the top":
    /// a cuboid body plus a hemisphere bump.
    Composite(Vec<ObstacleShape>),
}

impl ObstacleShape {
    /// A cuboid body with a hemispheric bump centred on its top face —
    /// P's thermoshaker.
    pub fn box_with_bump(body: Aabb, bump_radius: f64) -> Self {
        let top = Vec3::new(body.center().x, body.center().y, body.max().z);
        ObstacleShape::Composite(vec![
            ObstacleShape::Cuboid(body),
            ObstacleShape::Hemisphere {
                base_center: top,
                radius: bump_radius,
            },
        ])
    }

    /// Returns `true` if `capsule` touches this shape.
    pub fn intersects_capsule(&self, capsule: &Capsule) -> bool {
        match self {
            ObstacleShape::Cuboid(aabb) => collide::capsule_intersects_aabb(capsule, aabb),
            ObstacleShape::Hemisphere {
                base_center,
                radius,
            } => {
                // Sphere test, then reject hits that lie entirely below
                // the base plane (the dome's flat side faces down).
                let sphere = Sphere::new(*base_center, *radius);
                if collide::sphere_capsule_distance(&sphere, capsule) > 0.0 {
                    return false;
                }
                // The closest point of the capsule axis to the dome centre
                // decides which half the contact is in.
                let (closest, _) = capsule.segment.closest_point_to(*base_center);
                closest.z + capsule.radius >= base_center.z
            }
            ObstacleShape::Sphere(sphere) => {
                collide::sphere_capsule_distance(sphere, capsule) <= 0.0
            }
            ObstacleShape::Cylinder(cyl) => capsule.intersects_capsule(&cyl.as_capsule()),
            ObstacleShape::Composite(parts) => parts.iter().any(|p| p.intersects_capsule(capsule)),
        }
    }

    /// Signed clearance between `capsule` and the *collision volume* this
    /// shape's [`ObstacleShape::intersects_capsule`] tests: a positive
    /// return guarantees no intersection, and — the property the
    /// conservative-advancement sweep rests on — any displaced capsule
    /// whose every point stays within `d < distance` of `capsule` still
    /// cannot intersect.
    ///
    /// Each arm of the match is a sound underestimate of the distance to
    /// the corresponding narrow-phase volume: the cuboid uses the same
    /// capsule–AABB minimisation as the hit test (which can overshoot the
    /// true minimum by ~1e-11, so consumers must keep a small positive
    /// margin); the hemisphere returns the distance to the *full* sphere,
    /// strictly below the distance to the dome; the cylinder measures
    /// against the same axis capsule the hit test over-approximates with;
    /// composites take the minimum over their parts. An empty composite has
    /// infinite clearance.
    pub fn distance_to_capsule(&self, capsule: &Capsule) -> f64 {
        match self {
            ObstacleShape::Cuboid(aabb) => collide::capsule_aabb_distance(capsule, aabb),
            ObstacleShape::Hemisphere {
                base_center,
                radius,
            } => collide::sphere_capsule_distance(&Sphere::new(*base_center, *radius), capsule),
            ObstacleShape::Sphere(sphere) => collide::sphere_capsule_distance(sphere, capsule),
            ObstacleShape::Cylinder(cyl) => capsule.distance_to_capsule(&cyl.as_capsule()),
            ObstacleShape::Composite(parts) => parts
                .iter()
                .map(|p| p.distance_to_capsule(capsule))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// A conservative axis-aligned bound (used for world queries and
    /// debugging displays).
    pub fn bounding_box(&self) -> Aabb {
        match self {
            ObstacleShape::Cuboid(aabb) => *aabb,
            ObstacleShape::Hemisphere {
                base_center,
                radius,
            } => Aabb::new(
                *base_center - Vec3::new(*radius, *radius, 0.0),
                *base_center + Vec3::new(*radius, *radius, *radius),
            ),
            ObstacleShape::Sphere(s) => {
                Aabb::from_center_half_extents(s.center, Vec3::splat(s.radius))
            }
            // Bound of the *collision* volume: the narrow phase checks the
            // axis capsule, whose rounded caps bulge past the flat cylinder
            // ends by `radius`. The bound must cover those caps, or a
            // broad-phase index over the bounds would prune real contacts.
            ObstacleShape::Cylinder(c) => c.as_capsule().bounding_box(),
            ObstacleShape::Composite(parts) => {
                let mut it = parts.iter().map(ObstacleShape::bounding_box);
                let first = it
                    .next()
                    .unwrap_or_else(|| Aabb::new(Vec3::ZERO, Vec3::ZERO));
                it.fold(first, |acc, b| acc.union(&b))
            }
        }
    }
}

/// One primitive of a shape's distance decomposition, as consumed by the
/// world's structure-of-arrays distance index. Each primitive mirrors the
/// corresponding arm of [`ObstacleShape::distance_to_capsule`] exactly —
/// hemispheres decompose to their *full* bounding sphere (the same sound
/// underestimate the scalar path uses) — so a minimum over a shape's
/// primitives reproduces the scalar clearance bit for bit. `bound` is the
/// part's broad-phase bound, matching [`ObstacleShape::bounding_box`] so a
/// primitive-level index prunes no differently than the obstacle-level one.
pub(crate) enum DistancePrim {
    /// An axis-aligned cuboid.
    Box(Aabb),
    /// A capsule volume (the cylinder's axis capsule).
    Capsule {
        /// The capsule's axis segment.
        segment: Segment,
        /// The capsule's radius.
        radius: f64,
        /// Broad-phase bound of the part.
        bound: Aabb,
    },
    /// A sphere (spheres, and hemispheres via their bounding sphere).
    Sphere {
        /// The sphere's center.
        center: Vec3,
        /// The sphere's radius.
        radius: f64,
        /// Broad-phase bound of the part.
        bound: Aabb,
    },
}

impl ObstacleShape {
    /// Visits the distance primitives of this shape in deterministic
    /// (composite-declaration) order.
    pub(crate) fn for_each_distance_prim(&self, f: &mut impl FnMut(DistancePrim)) {
        match self {
            ObstacleShape::Cuboid(aabb) => f(DistancePrim::Box(*aabb)),
            ObstacleShape::Hemisphere {
                base_center,
                radius,
            } => f(DistancePrim::Sphere {
                center: *base_center,
                radius: *radius,
                bound: self.bounding_box(),
            }),
            ObstacleShape::Sphere(s) => f(DistancePrim::Sphere {
                center: s.center,
                radius: s.radius,
                bound: self.bounding_box(),
            }),
            ObstacleShape::Cylinder(cyl) => {
                let capsule = cyl.as_capsule();
                f(DistancePrim::Capsule {
                    segment: capsule.segment,
                    radius: capsule.radius,
                    bound: capsule.bounding_box(),
                })
            }
            ObstacleShape::Composite(parts) => {
                for part in parts {
                    part.for_each_distance_prim(f);
                }
            }
        }
    }
}

impl From<Aabb> for ObstacleShape {
    fn from(aabb: Aabb) -> Self {
        ObstacleShape::Cuboid(aabb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capsule_at(p: Vec3) -> Capsule {
        Capsule::new(p, p + Vec3::new(0.0, 0.0, 0.05), 0.02)
    }

    #[test]
    fn cuboid_matches_aabb_behaviour() {
        let shape: ObstacleShape = Aabb::new(Vec3::ZERO, Vec3::splat(0.2)).into();
        assert!(shape.intersects_capsule(&capsule_at(Vec3::splat(0.1))));
        assert!(!shape.intersects_capsule(&capsule_at(Vec3::splat(0.5))));
        assert_eq!(
            shape.bounding_box(),
            Aabb::new(Vec3::ZERO, Vec3::splat(0.2))
        );
    }

    #[test]
    fn hemisphere_hits_dome_not_underside() {
        // Centrifuge dome: base at z = 0.0, radius 0.15.
        let dome = ObstacleShape::Hemisphere {
            base_center: Vec3::new(0.0, 0.0, 0.0),
            radius: 0.15,
        };
        // Grazing the dome top.
        assert!(dome.intersects_capsule(&capsule_at(Vec3::new(0.0, 0.0, 0.14))));
        // Beside the dome at dome height: within sphere radius? 0.1 away
        // horizontally at z=0.05 → inside the sphere → hit.
        assert!(dome.intersects_capsule(&capsule_at(Vec3::new(0.1, 0.0, 0.05))));
        // Below the base plane: the flat underside is not a surface the
        // arm can hit from below in this model.
        let below = Capsule::new(Vec3::new(0.0, 0.0, -0.30), Vec3::new(0.0, 0.0, -0.10), 0.02);
        assert!(!dome.intersects_capsule(&below));
        // Clearly outside.
        assert!(!dome.intersects_capsule(&capsule_at(Vec3::new(0.5, 0.0, 0.05))));
    }

    #[test]
    fn hemisphere_tighter_than_equivalent_cuboid() {
        // The point of non-cuboid shapes: corners of the bounding box are
        // free space for a hemisphere.
        let dome = ObstacleShape::Hemisphere {
            base_center: Vec3::ZERO,
            radius: 0.15,
        };
        let bounding = ObstacleShape::Cuboid(dome.bounding_box());
        // A capsule at the top corner of the bounding box.
        let corner = capsule_at(Vec3::new(0.12, 0.12, 0.12));
        assert!(
            bounding.intersects_capsule(&corner),
            "cuboid over-approximates"
        );
        assert!(!dome.intersects_capsule(&corner), "hemisphere does not");
    }

    #[test]
    fn cylinder_checks() {
        let cyl =
            ObstacleShape::Cylinder(VerticalCylinder::new(Vec3::new(0.3, 0.0, 0.0), 0.25, 0.04));
        assert!(cyl.intersects_capsule(&capsule_at(Vec3::new(0.33, 0.0, 0.1))));
        assert!(!cyl.intersects_capsule(&capsule_at(Vec3::new(0.45, 0.0, 0.1))));
        let bb = cyl.bounding_box();
        assert!(bb.contains_point(Vec3::new(0.3, 0.0, 0.25)));
    }

    #[test]
    fn composite_box_with_bump() {
        // P's thermoshaker: 0.2×0.2×0.15 body with a 0.05 bump on top.
        let body = Aabb::new(Vec3::new(-0.1, -0.1, 0.0), Vec3::new(0.1, 0.1, 0.15));
        let shape = ObstacleShape::box_with_bump(body, 0.05);
        // Body hit.
        assert!(shape.intersects_capsule(&capsule_at(Vec3::new(0.0, 0.0, 0.1))));
        // Bump hit (above the body top, inside the dome).
        assert!(shape.intersects_capsule(&capsule_at(Vec3::new(0.0, 0.0, 0.17))));
        // Above the bump: free.
        assert!(!shape.intersects_capsule(&capsule_at(Vec3::new(0.0, 0.0, 0.25))));
        // Beside the bump at bump height (outside the dome, outside the
        // body): free — a cuboid tall enough to cover the bump would have
        // blocked this.
        assert!(!shape.intersects_capsule(&capsule_at(Vec3::new(0.09, 0.09, 0.18))));
        // Bounding box covers both parts.
        let bb = shape.bounding_box();
        assert!(bb.contains_point(Vec3::new(0.0, 0.0, 0.19)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_cylinder_rejected() {
        let _ = VerticalCylinder::new(Vec3::ZERO, 0.0, 0.1);
    }

    #[test]
    fn empty_composite_has_degenerate_bound() {
        let shape = ObstacleShape::Composite(vec![]);
        assert!(!shape.intersects_capsule(&capsule_at(Vec3::ZERO)));
        assert_eq!(shape.bounding_box().volume(), 0.0);
    }

    /// The clearance query must never report positive distance for a
    /// capsule the narrow phase calls a hit, and a reported distance `d > 0`
    /// must survive shrinking: moving the capsule by less than `d` (here,
    /// inflating it by less than `d`) cannot create a hit.
    #[test]
    fn distance_is_consistent_with_intersection() {
        let shapes = [
            ObstacleShape::Cuboid(Aabb::new(Vec3::ZERO, Vec3::splat(0.2))),
            ObstacleShape::Hemisphere {
                base_center: Vec3::new(0.3, 0.0, 0.0),
                radius: 0.15,
            },
            ObstacleShape::Sphere(Sphere::new(Vec3::new(0.0, 0.4, 0.2), 0.1)),
            ObstacleShape::Cylinder(VerticalCylinder::new(Vec3::new(-0.3, 0.1, 0.0), 0.25, 0.04)),
            ObstacleShape::box_with_bump(
                Aabb::new(Vec3::new(-0.1, -0.5, 0.0), Vec3::new(0.1, -0.3, 0.15)),
                0.05,
            ),
        ];
        let mut k = 0u32;
        for shape in &shapes {
            for x in -4..=4 {
                for y in -4..=4 {
                    for z in 0..=4 {
                        k += 1;
                        let p = Vec3::new(x as f64 * 0.15, y as f64 * 0.15, z as f64 * 0.1);
                        let cap = Capsule::new(p, p + Vec3::new(0.05, 0.0, 0.08), 0.02);
                        let d = shape.distance_to_capsule(&cap);
                        if shape.intersects_capsule(&cap) {
                            assert!(d <= 1e-9, "hit but distance {d} at {p} (case {k})");
                        }
                        if d > 1e-6 {
                            // Growing the capsule by anything less than d
                            // (minus a safety epsilon) must stay clear.
                            let grown = cap.inflated(d - 1e-9);
                            assert!(
                                !shape.intersects_capsule(&grown),
                                "distance {d} at {p} not conservative (case {k})"
                            );
                        }
                    }
                }
            }
        }
        // Empty composite: infinite clearance.
        assert_eq!(
            ObstacleShape::Composite(vec![]).distance_to_capsule(&capsule_at(Vec3::ZERO)),
            f64::INFINITY
        );
    }

    #[test]
    fn sphere_shape() {
        let s = ObstacleShape::Sphere(Sphere::new(Vec3::new(0.0, 0.0, 0.3), 0.1));
        assert!(s.intersects_capsule(&capsule_at(Vec3::new(0.0, 0.0, 0.25))));
        assert!(!s.intersects_capsule(&capsule_at(Vec3::new(0.3, 0.0, 0.3))));
    }
}
