//! The Table I stage comparison, quantified — produced by campaign
//! plans.
//!
//! The paper's Table I rates the three stages qualitatively (speed of
//! exploration, device precision, accuracy of results, risk of damage).
//! This harness measures each dimension by running three declarative
//! campaign plans (`rabit_campaign::plans::table1_*`) through the
//! resumable campaign runner and folding their artifacts into one
//! profile per stage:
//!
//! * **speed** — commands per virtual second running the safe Fig. 5
//!   workflow with each stage's latency model (`table1_speed_plan`);
//! * **precision** — the positional repeatability σ of the stage's arms;
//! * **accuracy** — timing fidelity relative to production (how closely
//!   the stage's per-command time matches the real lab's);
//! * **risk** — the damage cost incurred when the 16-bug suite runs
//!   *unguarded* in the stage (`table1_risk_plan`), weighted by what the
//!   stage's equipment costs (virtual = free, mockups = cheap, lab =
//!   expensive).
//!
//! Because the numbers come from campaign plans, the same tables can be
//! regenerated — resumably, and bit-identically — by pointing a
//! [`rabit_campaign::CampaignRunner`] at the same plans.
//!
//! The [`Stage`] enum itself (and its latency/noise/cost profiles) lives
//! in `rabit_core::substrate`; this module re-exports it.

use rabit_campaign::{plans, run_ephemeral, TrialResult, TrialState};

pub use rabit_core::Stage;

/// Placement replicates per stage (matches the paper's repeatability
/// protocol).
const PLACEMENT_REPLICATES: usize = 60;

/// Measured Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// The stage.
    pub stage: Stage,
    /// Commands per virtual second on the reference workflow.
    pub commands_per_second: f64,
    /// Arm repeatability σ (metres).
    pub precision_sigma_m: f64,
    /// Mean measured placement error over repeated moves (metres):
    /// commanded vs achieved tool position through the full lab pipeline.
    pub measured_placement_error_m: f64,
    /// Per-command time relative to production (1.0 = production-real).
    pub timing_fidelity: f64,
    /// Total damage cost of running the 16-bug suite unguarded.
    pub unguarded_risk_cost: f64,
}

/// Severity label → damage-cost weight (labels as `Severity` displays
/// them in campaign artifacts).
fn severity_weight(label: &str) -> f64 {
    match label {
        "Low" => 1.0,
        "Medium-Low" => 3.0,
        "Medium-High" => 8.0,
        "High" => 25.0,
        other => panic!("unknown severity label '{other}' in campaign artifact"),
    }
}

fn stage_results(states: &[TrialState], stage: Stage) -> impl Iterator<Item = &TrialResult> {
    states
        .iter()
        .filter_map(|s| s.result.as_ref())
        .filter(move |r| r.stage == stage.name())
}

/// Virtual seconds per command of the reference workflow in a stage:
/// `(raw, amortised)` where `amortised` folds in the per-experiment setup
/// cost. Exploration speed uses the amortised figure; timing fidelity the
/// raw one.
fn seconds_per_command(states: &[TrialState], stage: Stage) -> (f64, f64) {
    let result = stage_results(states, stage)
        .next()
        .expect("speed plan has one trial per stage");
    assert_eq!(
        result.outcome, "completed",
        "reference workflow must complete"
    );
    let n = result.executed as f64;
    (
        result.lab_time_s / n,
        (result.lab_time_s + stage.setup_cost_s()) / n,
    )
}

/// Mean placement error of the stage's arm across the placement plan's
/// seeded replicates.
fn placement_error(states: &[TrialState], stage: Stage) -> f64 {
    let errors: Vec<f64> = stage_results(states, stage)
        .map(|r| {
            r.placement_error_m
                .expect("placement trials record an error")
        })
        .collect();
    assert_eq!(errors.len(), PLACEMENT_REPLICATES);
    errors.iter().sum::<f64>() / errors.len() as f64
}

/// Damage cost of running every catalogued bug unguarded in a lab with
/// the stage's latency model and cost structure.
fn unguarded_risk(states: &[TrialState], stage: Stage) -> f64 {
    let raw: f64 = stage_results(states, stage)
        .flat_map(|r| r.damage.iter())
        .map(|label| severity_weight(label))
        .sum();
    raw * stage.damage_cost_multiplier()
}

/// Measures all three stages by running the Table I campaign plans.
pub fn profile_all() -> Vec<StageProfile> {
    let (_, speed) =
        run_ephemeral(plans::table1_speed_plan(), 3).expect("table1 speed campaign runs");
    let (_, risk) = run_ephemeral(plans::table1_risk_plan(), 4).expect("table1 risk campaign runs");
    let (_, placement) = run_ephemeral(plans::table1_placement_plan(PLACEMENT_REPLICATES), 4)
        .expect("table1 placement campaign runs");
    let (prod_raw, _) = seconds_per_command(&speed, Stage::Production);
    Stage::all()
        .into_iter()
        .map(|stage| {
            let (raw, amortised) = seconds_per_command(&speed, stage);
            StageProfile {
                stage,
                commands_per_second: 1.0 / amortised,
                precision_sigma_m: stage.precision_sigma_m(),
                measured_placement_error_m: placement_error(&placement, stage),
                timing_fidelity: raw / prod_raw,
                unguarded_risk_cost: unguarded_risk(&risk, stage),
            }
        })
        .collect()
}

/// Measures one stage (runs the full Table I campaigns and selects the
/// stage's row).
pub fn profile_stage(stage: Stage) -> StageProfile {
    profile_all()
        .into_iter()
        .find(|p| p.stage == stage)
        .expect("profile_all covers every stage")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::noise::PositionNoise;

    #[test]
    fn table_i_orderings_hold() {
        let profiles = profile_all();
        let [sim, tb, prod] = [&profiles[0], &profiles[1], &profiles[2]];
        // Speed of exploration: High / Medium / Low.
        assert!(sim.commands_per_second > tb.commands_per_second);
        assert!(tb.commands_per_second >= prod.commands_per_second);
        // Device precision: Low / Medium / High (σ shrinks).
        assert!(sim.precision_sigma_m <= tb.precision_sigma_m);
        assert!(prod.precision_sigma_m < tb.precision_sigma_m);
        // Measured placement error tracks the configured repeatability:
        // E[‖ε‖] = σ·√(8/π).
        assert_eq!(sim.measured_placement_error_m, 0.0);
        let predicted = PositionNoise::gaussian(tb.precision_sigma_m).expected_error_norm();
        assert!(
            (tb.measured_placement_error_m - predicted).abs() / predicted < 0.35,
            "measured {:.4} vs predicted {predicted:.4}",
            tb.measured_placement_error_m
        );
        assert!(prod.measured_placement_error_m < tb.measured_placement_error_m);
        // Accuracy of results: Low / Medium / High (fidelity → 1).
        assert!((prod.timing_fidelity - 1.0).abs() < 1e-9);
        assert!(sim.timing_fidelity < tb.timing_fidelity);
        assert!(tb.timing_fidelity <= 2.0);
        // Risk of damage: Low / Medium / High.
        assert_eq!(sim.unguarded_risk_cost, 0.0);
        assert!(tb.unguarded_risk_cost > 0.0);
        assert!(prod.unguarded_risk_cost > tb.unguarded_risk_cost);
    }

    #[test]
    fn stage_names() {
        assert_eq!(Stage::all().len(), 3);
        assert_eq!(Stage::Simulator.name(), "Simulator");
    }
}
