//! Two robot arms in one workspace: the Bug-B collision, and how RABIT's
//! time- and space-multiplexing extensions prevent it (§IV, category 2).
//!
//! ```text
//! cargo run --example multi_arm
//! ```

use rabit::devices::{ActionKind, Command};
use rabit::rulebase::extensions;
use rabit::testbed::{RabitStage, Testbed};
use rabit::tracer::{Tracer, Workflow};

/// ViperX stationed above the grid; Ned2 sent to a "random" location
/// right next to it (Fig. 5, Bug B).
fn bug_b_workflow(tb: &Testbed) -> Workflow {
    let grid = tb.locations.grid_nw_viperx;
    Workflow::new("bug_b")
        .go_home("viperx")
        .move_to("viperx", grid.pickup_safe_height)
        .then(Command::new(
            "ned2",
            ActionKind::MoveToLocation {
                target: tb.locations.random_location_ned2,
            },
        ))
}

fn main() {
    // --- Without multiplexing: the arms collide. ---
    let mut tb = Testbed::new();
    let wf = bug_b_workflow(&tb);
    let mut rabit = tb.rabit(RabitStage::Baseline);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    println!(
        "baseline RABIT: alert = {:?}",
        report.alert.as_ref().map(ToString::to_string)
    );
    for d in tb.lab.damage_log() {
        println!("  physical outcome: {d}");
    }
    assert!(!tb.lab.damage_log().is_empty(), "Bug B collides the arms");

    // --- Time multiplexing: Ned2 may not move while ViperX is awake. ---
    let mut tb = Testbed::new();
    let wf = bug_b_workflow(&tb);
    let mut rabit = tb.rabit(RabitStage::Modified);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    println!(
        "\ntime multiplexing: alert = {}",
        report
            .alert
            .as_ref()
            .map(ToString::to_string)
            .unwrap_or_default()
    );
    assert!(
        tb.lab.damage_log().is_empty(),
        "no collision under time multiplexing"
    );

    // --- Space multiplexing: each arm owns one side of a software wall,
    //     so both may move concurrently — but Ned2's stray target crosses
    //     the wall and is blocked. ---
    let mut tb = Testbed::new();
    let wf = bug_b_workflow(&tb);
    let mut rabit = tb.rabit(RabitStage::Baseline);
    rabit
        .rulebase_mut()
        .push(extensions::space_multiplexing_rule());
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    println!(
        "\nspace multiplexing: alert = {}",
        report
            .alert
            .as_ref()
            .map(ToString::to_string)
            .unwrap_or_default()
    );
    assert!(
        tb.lab.damage_log().is_empty(),
        "no collision under space multiplexing"
    );

    // And under the software wall, both arms genuinely run CONCURRENTLY:
    // the deterministic scheduler interleaves their command streams and
    // the makespan is the slower side, not the sum.
    use rabit::geometry::Vec3;
    use rabit::tracer::run_concurrent;
    let mut tb = Testbed::new();
    let viperx_stream = Workflow::new("viperx_side")
        .move_to("viperx", Vec3::new(0.3, 0.1, 0.4))
        .move_to("viperx", Vec3::new(0.2, -0.1, 0.35))
        .go_home("viperx");
    let ned2_stream = Workflow::new("ned2_side")
        .move_to("ned2", Vec3::new(1.1, 0.1, 0.3))
        .go_home("ned2");
    let mut rabit_engine = tb.rabit(RabitStage::Baseline);
    rabit_engine
        .rulebase_mut()
        .push(extensions::space_multiplexing_rule());
    let report = run_concurrent(
        &mut tb.lab,
        &mut rabit_engine,
        &[viperx_stream, ned2_stream],
    );
    assert!(report.completed());
    println!(
        "\nconcurrent work under the wall: makespan {:.1} s vs {:.1} s serialised \
         ({:.0}% saved), zero alerts, zero damage.",
        report.makespan_s,
        report.serialized_s,
        report.concurrency_gain() * 100.0
    );
}
