//! The bug-injection framework: the paper's uncontrolled study, made
//! deterministic.
//!
//! "We asked one of our collaborators to modify the experiment scripts …
//! and introduce bugs in them, as if they were a naive programmer. …
//! \[They\] carried out 16 program changes with potentially unsafe
//! consequences." (§IV)
//!
//! * [`catalog`] — the 16 bugs, each a mutation of the safe Fig. 5
//!   workflow, annotated with category, Table V severity, and the
//!   configuration that first detects it;
//! * [`run_study`] — executes the catalog against one of the three RABIT
//!   configurations, scoring detections against the damage oracle;
//! * [`run_study_on`] — the generic form: executes the catalog against
//!   any [`rabit_core::Substrate`] realising the testbed deck, so the
//!   same 16 bugs replay at every stage of the promotion pipeline;
//! * [`false_positives`] — the safe-workflow suite behind the paper's
//!   "RABIT never produced any false positives";
//! * [`fault_families`] / [`run_fault_family_on`] — the catalog
//!   generalized into parametric fault families (stale reads, dropped
//!   commands, crashes, …) swept deterministically under any
//!   [`rabit_core::RecoveryPolicy`].
//!
//! # Example
//!
//! ```
//! use rabit_buginject::{run_study, RabitStage};
//!
//! let result = run_study(RabitStage::Baseline);
//! assert_eq!(result.detected(), 8); // the paper's 50%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod faults;
mod runner;

pub use catalog::{catalog, Bug, BugCategory, DetectedFrom};
pub use faults::{fault_families, run_fault_family_on, run_fault_study_on, FamilyResult};
pub use runner::{
    false_positives, false_positives_on, run_bug, run_bug_on, run_study, run_study_on,
    run_study_parallel, run_study_parallel_on, BugOutcome, StudyResult,
};
// Re-export the stage enum so harnesses need only this crate.
pub use rabit_testbed::RabitStage;
