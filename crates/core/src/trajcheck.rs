//! The trajectory-validation hook (`SimAvailable` / `ValidTrajectory` in
//! Fig. 2).
//!
//! When an Extended Simulator is attached, RABIT routes every robot-arm
//! move through it before execution; "in the absence of such a simulator,
//! only the target location is checked" (§II-B) — that fallback is rule
//! III-3 in the rulebase.

use rabit_devices::{Command, DeviceId, LabState};
use rabit_geometry::Vec3;
use std::fmt;

/// A structured description of a predicted collision: which obstacle the
/// sweep hit, with which arm link, where, and how far into the motion.
/// Replaces the old free-text payload so alerts are matchable without
/// string parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionReport {
    /// The obstacle (device or environment region) the arm would hit.
    pub device: DeviceId,
    /// Index of the colliding arm link, counted from the base (link 0 is
    /// the base itself, which the sweep exempts — reported links start
    /// at 1).
    pub link: usize,
    /// Approximate contact point in deck coordinates (metres): the point
    /// on the colliding link's axis closest to the obstacle.
    pub contact: Vec3,
    /// Fraction of the motion at which the collision occurs (0-1).
    pub at_fraction: f64,
}

impl CollisionReport {
    /// A report with the colliding obstacle and motion fraction but no
    /// link-level geometry (link 0 / origin contact). Used by validators
    /// that predict *that* a collision happens without resolving *where*
    /// on the arm — e.g. mocks and coarse target-only checks.
    pub fn coarse(device: impl Into<DeviceId>, at_fraction: f64) -> Self {
        CollisionReport {
            device: device.into(),
            link: 0,
            contact: Vec3::ZERO,
            at_fraction,
        }
    }
}

impl fmt::Display for CollisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collision with {} at {:.0}% of the motion",
            self.device,
            self.at_fraction * 100.0
        )?;
        if self.link > 0 {
            write!(
                f,
                " (link {} near ({:.3}, {:.3}, {:.3}))",
                self.link, self.contact.x, self.contact.y, self.contact.z
            )?;
        }
        Ok(())
    }
}

/// A snapshot of a validator's sweep-kernel work counters, reported
/// alongside run statistics so benchmarks and reports can attribute cost:
/// how many polling-grid samples were checked vs proved hit-free and
/// skipped, how many exact distance evaluations the clearance machinery
/// issued, how many kernel lane slots they occupied, and how many
/// whole-arm certificate spans were accepted. Validators without a sweep
/// report all-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Polling-grid samples actually collision-checked.
    pub samples_checked: u64,
    /// Samples proved hit-free from clearance + motion bounds and skipped.
    pub samples_skipped: u64,
    /// Per-primitive exact signed-distance evaluations issued.
    pub distance_queries: u64,
    /// Lane slots pushed through the 4-wide batched distance kernels
    /// (including padding lanes; 4 × kernel invocations).
    pub distance_evals_batched: u64,
    /// Whole-arm certificate spans accepted (each certifying a run of
    /// samples hit-free with one world query).
    pub certificate_spans: u64,
}

impl SweepStats {
    /// Componentwise difference `self − earlier` — the work performed
    /// between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &SweepStats) -> SweepStats {
        SweepStats {
            samples_checked: self.samples_checked - earlier.samples_checked,
            samples_skipped: self.samples_skipped - earlier.samples_skipped,
            distance_queries: self.distance_queries - earlier.distance_queries,
            distance_evals_batched: self.distance_evals_batched - earlier.distance_evals_batched,
            certificate_spans: self.certificate_spans - earlier.certificate_spans,
        }
    }
}

/// The simulator's verdict on a proposed robot motion.
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryVerdict {
    /// The full trajectory is collision-free.
    Safe,
    /// The trajectory collides.
    Collision(CollisionReport),
    /// The simulator could not evaluate this command (e.g. unknown arm);
    /// RABIT falls back to target-only checking.
    Unavailable,
}

/// A trajectory validator: implemented by the Extended Simulator
/// (`rabit-sim`), and mockable in tests.
pub trait TrajectoryValidator: Send {
    /// Evaluates the trajectory implied by `command` from the current
    /// state.
    fn validate(&mut self, command: &Command, state: &LabState) -> TrajectoryVerdict;

    /// Tells the validator which rulebase epoch governs the next
    /// [`TrajectoryValidator::validate`] call. The engine invokes this
    /// before every validation so epoch-keyed verdict caches compose
    /// (world_epoch, rulebase_epoch) and can never serve an entry
    /// computed under a different rule generation. Validators without a
    /// cache ignore it (the default is a no-op).
    fn note_rulebase_epoch(&mut self, epoch: u64) {
        let _ = epoch;
    }

    /// The simulated wall-clock cost of one validation call in seconds
    /// (the paper's GUI-bound simulator costs ~2 s per check; headless
    /// mode collapses this).
    fn check_latency_s(&self) -> f64 {
        0.0
    }

    /// Total narrow-phase collision tests this validator has performed —
    /// the cost a broad-phase index prunes. Validators without a notion
    /// of collision checking report zero.
    fn narrow_checks_performed(&self) -> u64 {
        0
    }

    /// Validations served from a verdict cache. Validators without a
    /// cache report zero.
    fn cache_hits(&self) -> u64 {
        0
    }

    /// Validations that missed the verdict cache and ran in full.
    /// Validators without a cache report zero.
    fn cache_misses(&self) -> u64 {
        0
    }

    /// Trajectory polling-grid samples this validator actually
    /// collision-checked. Validators without a sampling sweep report
    /// zero.
    fn samples_checked(&self) -> u64 {
        0
    }

    /// Polling-grid samples an adaptive sweep kernel proved hit-free
    /// from clearance and motion bounds and skipped without checking.
    /// Dense validators report zero.
    fn samples_skipped(&self) -> u64 {
        0
    }

    /// Per-primitive exact signed-distance evaluations issued while
    /// measuring clearance for skip decisions. Dense validators report
    /// zero.
    fn distance_queries(&self) -> u64 {
        0
    }

    /// Lane slots pushed through batched (4-wide) distance kernels,
    /// including padding lanes. Validators without a batched clearance
    /// path report zero.
    fn distance_evals_batched(&self) -> u64 {
        0
    }

    /// Whole-arm certificate spans accepted by an adaptive sweep kernel.
    /// Validators without the certificate report zero.
    fn certificate_spans(&self) -> u64 {
        0
    }

    /// All sweep-kernel work counters as one [`SweepStats`] snapshot.
    fn sweep_stats(&self) -> SweepStats {
        SweepStats {
            samples_checked: self.samples_checked(),
            samples_skipped: self.samples_skipped(),
            distance_queries: self.distance_queries(),
            distance_evals_batched: self.distance_evals_batched(),
            certificate_spans: self.certificate_spans(),
        }
    }
}

/// A validator that approves everything — useful as a baseline and in
/// tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproveAll;

impl TrajectoryValidator for ApproveAll {
    fn validate(&mut self, _command: &Command, _state: &LabState) -> TrajectoryVerdict {
        TrajectoryVerdict::Safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::ActionKind;

    #[test]
    fn approve_all_is_safe_and_free() {
        let mut v = ApproveAll;
        let cmd = Command::new("arm", ActionKind::MoveHome);
        assert_eq!(v.validate(&cmd, &LabState::new()), TrajectoryVerdict::Safe);
        assert_eq!(v.check_latency_s(), 0.0);
    }

    #[test]
    fn verdict_equality() {
        let c = TrajectoryVerdict::Collision(CollisionReport::coarse("grid", 0.4));
        assert_ne!(c, TrajectoryVerdict::Safe);
        assert_ne!(TrajectoryVerdict::Unavailable, TrajectoryVerdict::Safe);
    }

    #[test]
    fn collision_report_display() {
        let coarse = CollisionReport::coarse("grid", 0.5);
        assert_eq!(
            coarse.to_string(),
            "collision with grid at 50% of the motion"
        );
        let detailed = CollisionReport {
            device: "hotplate".into(),
            link: 4,
            contact: Vec3::new(0.31, -0.02, 0.145),
            at_fraction: 0.72,
        };
        let text = detailed.to_string();
        assert!(text.contains("72% of the motion"));
        assert!(text.contains("link 4"));
        assert!(text.contains("0.310"));
    }
}
