//! The Fig. 5 bugs (A-D) on the testbed, across RABIT's three
//! configurations — the paper's uncontrolled-study storyline in one
//! program.
//!
//! ```text
//! cargo run --example testbed_bugs
//! ```

use rabit::buginject::{catalog, run_bug, RabitStage};

fn main() {
    let stages = [
        (RabitStage::Baseline, "baseline"),
        (RabitStage::Modified, "modified"),
        (RabitStage::ModifiedWithSimulator, "with simulator"),
    ];
    let figure_bugs = [
        (
            "bug_a_door_not_reopened",
            "Bug A — door not re-opened before retrieval",
        ),
        (
            "bug_b_arm_collision",
            "Bug B — Ned2 sent next to the stationed ViperX",
        ),
        ("bug_c_pick_omitted", "Bug C — pick_up call omitted"),
        (
            "held_vial_low",
            "Bug D — pickup z lowered to 0.08 while holding",
        ),
        ("silent_skip_path", "footnote 2 — silently skipped waypoint"),
    ];

    for (id, title) in figure_bugs {
        let bug = catalog()
            .into_iter()
            .find(|b| b.id == id)
            .expect("catalogued bug");
        println!("{title}");
        println!("  {}", bug.description);
        for (stage, label) in stages {
            let outcome = run_bug(&bug, stage);
            let verdict = if outcome.detected {
                "DETECTED — experiment halted before the unsafe command".to_string()
            } else if outcome.device_fault {
                format!("device fault — {}", outcome.alert.as_deref().unwrap_or(""))
            } else if outcome.damage.is_empty() {
                "missed (no physical damage this run)".to_string()
            } else {
                format!("MISSED — {}", outcome.damage[0])
            };
            println!("  [{label:>14}] {verdict}");
        }
        println!();
    }
}
