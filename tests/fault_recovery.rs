//! The fault-injection runtime, end to end: an empty plan is inert (all
//! three substrates stay verdict-identical to the fault-free baseline
//! and the per-stage detection counts are unchanged), while a seeded
//! plan produces thread-count-invariant faulted fleets whose recovery
//! counters actually move.

use rabit::buginject::run_study_on;
use rabit::core::{
    FaultKind, FaultPlan, FaultSchedule, RabitConfig, RecoveryPolicy, RetryPolicy, Stage, Substrate,
};
use rabit::testbed::{locations, workflows, Testbed, TestbedSubstrate};
use rabit::tracer::{run_fleet_on, run_fleet_on_faulted, Workflow};

/// With an empty fault plan armed, every substrate's verdict — alert,
/// executed count, virtual lab time, damage — is identical to a plain
/// fault-free instantiation.
#[test]
fn empty_fault_plan_is_verdict_identical_on_all_three_substrates() {
    let wf = workflows::fig5_safe_workflow(&locations());
    let sim = Testbed::simulator_substrate();
    let testbed = Testbed::new();
    let prod = TestbedSubstrate::for_stage(Stage::Production);
    let substrates: Vec<&dyn Substrate> = vec![&sim, &testbed, &prod];
    for substrate in substrates {
        let (mut lab, mut rabit) = substrate.instantiate();
        let baseline = rabit.run(&mut lab, wf.commands());
        let (mut lab2, mut rabit2) = substrate.instantiate_with(&FaultPlan::none());
        let report = rabit2.run(&mut lab2, wf.commands());
        assert_eq!(
            baseline.alert,
            report.alert,
            "verdict drift on {}",
            substrate.name()
        );
        assert_eq!(baseline.executed, report.executed);
        assert_eq!(baseline.lab_time_s, report.lab_time_s);
        assert_eq!(baseline.rabit_overhead_s, report.rabit_overhead_s);
        assert_eq!(lab.damage_log().len(), lab2.damage_log().len());
        assert_eq!(report.faults_injected, 0);
        assert!(!report.recovery.any());
        assert!(!lab2.has_fault_session(), "empty plans arm nothing");
    }
}

/// The PR 3 baseline: per-stage detection counts are untouched by the
/// fault runtime riding along in the engine.
#[test]
fn detection_counts_unchanged_with_fault_support_compiled_in() {
    let pipeline = Testbed::pipeline();
    let counts: Vec<(Stage, usize)> = pipeline
        .substrates()
        .iter()
        .map(|s| (s.stage(), run_study_on(s.as_ref()).detected()))
        .collect();
    assert_eq!(
        counts,
        [
            (Stage::Simulator, 13),
            (Stage::Testbed, 12),
            (Stage::Production, 12),
        ]
    );
}

/// A faulted fleet under a seeded plan is deterministic across 1, 4, and
/// 8 worker threads — run `i` always executes under `plan.for_run(i)` —
/// and its recovery counters are non-zero: the retry policy genuinely
/// rode out injected faults.
#[test]
fn seeded_fault_fleet_is_thread_count_invariant_with_recovery() {
    let loc = locations();
    let wf = workflows::fig5_safe_workflow(&loc);
    let recovery_config = RabitConfig {
        recovery: RecoveryPolicy::Retry(RetryPolicy::default()),
        ..RabitConfig::default()
    };
    let sim = Testbed::simulator_substrate().with_engine_config(recovery_config.clone());
    let tb = TestbedSubstrate::for_stage(Stage::Testbed);
    let jobs: Vec<(&dyn Substrate, &Workflow)> = vec![
        (&sim, &wf),
        (&sim, &wf),
        (&sim, &wf),
        (&tb, &wf),
        (&sim, &wf),
        (&sim, &wf),
        (&sim, &wf),
    ];
    let plan = FaultPlan::seeded(0xDEC0).with(
        FaultKind::DropCommand,
        FaultSchedule::EveryNth {
            period: 4,
            offset: 2,
        },
    );

    let serial = run_fleet_on_faulted(&jobs, 1, &plan);
    let four = run_fleet_on_faulted(&jobs, 4, &plan);
    let eight = run_fleet_on_faulted(&jobs, 8, &plan);

    assert!(
        serial.total_faults_injected() > 0,
        "the seeded plan must actually inject"
    );
    let recovery = serial.total_recovery();
    assert!(
        recovery.recovered > 0,
        "the retry policy must recover dropped commands: {recovery:?}"
    );
    assert!(recovery.retries >= recovery.recovered);

    for other in [&four, &eight] {
        assert_eq!(
            serial.total_faults_injected(),
            other.total_faults_injected()
        );
        assert_eq!(recovery, other.total_recovery());
        for (a, b) in serial.runs.iter().zip(other.runs.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.faults_injected, b.faults_injected, "run {}", a.index);
            assert_eq!(a.report.executed, b.report.executed, "run {}", a.index);
            assert_eq!(
                a.report.alert.as_ref().map(ToString::to_string),
                b.report.alert.as_ref().map(ToString::to_string),
                "run {}",
                a.index
            );
            assert_eq!(a.report.lab_time_s, b.report.lab_time_s, "run {}", a.index);
            assert_eq!(a.report.recovery, b.report.recovery, "run {}", a.index);
        }
    }
}

/// `run_fleet_on_faulted` with the empty plan is exactly `run_fleet_on`.
#[test]
fn faulted_fleet_with_empty_plan_matches_plain_fleet() {
    let loc = locations();
    let wf = workflows::fig5_safe_workflow(&loc);
    let tb = TestbedSubstrate::for_stage(Stage::Testbed);
    let jobs: Vec<(&dyn Substrate, &Workflow)> = vec![(&tb, &wf), (&tb, &wf)];
    let plain = run_fleet_on(&jobs, 2);
    let faulted = run_fleet_on_faulted(&jobs, 2, &FaultPlan::none());
    assert_eq!(faulted.total_faults_injected(), 0);
    for (a, b) in plain.runs.iter().zip(faulted.runs.iter()) {
        assert_eq!(a.report.executed, b.report.executed);
        assert_eq!(a.report.lab_time_s, b.report.lab_time_s);
        assert_eq!(
            a.report.alert.as_ref().map(ToString::to_string),
            b.report.alert.as_ref().map(ToString::to_string)
        );
    }
}

/// Substrate-carried plans flow through `instantiate()`: a testbed
/// profile armed with a drop-everything plan alerts on its own, and a
/// quarantine policy instead completes the run degraded.
#[test]
fn substrate_carried_plans_arm_on_instantiate() {
    let loc = locations();
    let wf = workflows::fig5_safe_workflow(&loc);
    let plan = FaultPlan::seeded(5).with(
        FaultKind::DropCommand,
        FaultSchedule::EveryNth {
            period: 1,
            offset: 0,
        },
    );
    let substrate = TestbedSubstrate::for_stage(Stage::Testbed).with_fault_plan(plan);
    let (mut lab, mut rabit) = substrate.instantiate();
    assert!(lab.has_fault_session(), "the carried plan must arm");
    let report = rabit.run(&mut lab, wf.commands());
    assert!(
        !report.completed(),
        "dropping every command must trip the malfunction check"
    );
    assert!(report.faults_injected > 0);

    // The same substrate under quarantine, on a workflow that only
    // drives the hopeless device: it is isolated after the first
    // exhausted retry and the run continues degraded instead of halting.
    // (On the full Fig. 5 workflow a quarantined device's un-executed
    // commands legitimately trip later rule preconditions — quarantine
    // is degraded continuation, not rule suppression.)
    let doors_only = Workflow::new("doors_only")
        .set_door("dosing_device", true)
        .set_door("dosing_device", false);
    let (mut lab, mut rabit) = substrate.instantiate();
    rabit.config_mut().recovery = RecoveryPolicy::Quarantine(RetryPolicy::default());
    let report = rabit.run(&mut lab, doors_only.commands());
    assert!(
        report.completed(),
        "quarantine never alerts: {:?}",
        report.alert
    );
    assert_eq!(report.recovery.quarantined, 1);
    assert_eq!(report.recovery.skipped_quarantined, 1);
    assert!(rabit.is_quarantined(&"dosing_device".into()));
}
