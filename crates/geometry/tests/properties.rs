//! Property-based tests over the geometry substrate's invariants.
//!
//! Hand-rolled property loops: each property runs `CASES` deterministic
//! cases drawn from the in-tree seeded PRNG, so failures reproduce
//! exactly and the suite needs no external dependency.

use rabit_geometry::{calibrate, collide, Aabb, Capsule, Mat3, Pose, Segment, Vec3};
use rabit_util::Rng;

const CASES: usize = 256;

fn small_f64(rng: &mut Rng) -> f64 {
    rng.random_range(-10.0..10.0)
}

fn vec3(rng: &mut Rng) -> Vec3 {
    Vec3::new(small_f64(rng), small_f64(rng), small_f64(rng))
}

fn rotation(rng: &mut Rng) -> Mat3 {
    loop {
        let axis = vec3(rng);
        let angle = rng.random_range(-std::f64::consts::PI..std::f64::consts::PI);
        if let Some(r) = Mat3::rotation_axis_angle(axis, angle) {
            return r;
        }
    }
}

fn pose(rng: &mut Rng) -> Pose {
    Pose::new(rotation(rng), vec3(rng))
}

fn aabb(rng: &mut Rng) -> Aabb {
    Aabb::new(vec3(rng), vec3(rng))
}

#[test]
fn cross_product_is_orthogonal() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b) = (vec3(&mut rng), vec3(&mut rng));
        let c = a.cross(b);
        assert!((c.dot(a)).abs() < 1e-6);
        assert!((c.dot(b)).abs() < 1e-6);
    }
}

#[test]
fn triangle_inequality() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..CASES {
        let (a, b, c) = (vec3(&mut rng), vec3(&mut rng), vec3(&mut rng));
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }
}

#[test]
fn rotation_preserves_length() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..CASES {
        let r = rotation(&mut rng);
        let v = vec3(&mut rng);
        assert!(((r * v).norm() - v.norm()).abs() < 1e-9);
        assert!(r.is_rotation(1e-7));
    }
}

#[test]
fn pose_inverse_roundtrips() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..CASES {
        let p = pose(&mut rng);
        let v = vec3(&mut rng);
        let back = p.inverse().transform_point(p.transform_point(v));
        assert!((back - v).norm() < 1e-8);
    }
}

#[test]
fn pose_composition_is_sequential_application() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..CASES {
        let (a, b) = (pose(&mut rng), pose(&mut rng));
        let v = vec3(&mut rng);
        let lhs = a.compose(&b).transform_point(v);
        let rhs = a.transform_point(b.transform_point(v));
        assert!((lhs - rhs).norm() < 1e-8);
    }
}

#[test]
fn aabb_closest_point_is_inside_and_no_farther() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..CASES {
        let b = aabb(&mut rng);
        let p = vec3(&mut rng);
        let cp = b.closest_point(p);
        assert!(b.contains_point(cp) || b.distance_to_point(cp) < 1e-9);
        // No corner is closer than the reported closest point.
        for corner in b.corners() {
            assert!(p.distance(cp) <= p.distance(corner) + 1e-9);
        }
    }
}

#[test]
fn aabb_inflation_monotone() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..CASES {
        let b = aabb(&mut rng);
        let m = rng.random_range(0.0..2.0);
        let p = vec3(&mut rng);
        // Inflating can only decrease point distance.
        assert!(b.inflated(m).distance_to_point(p) <= b.distance_to_point(p) + 1e-9);
        if b.contains_point(p) {
            assert!(b.inflated(m).contains_point(p));
        }
    }
}

#[test]
fn segment_aabb_distance_lower_bounds_point_distances() {
    let mut rng = Rng::seed_from_u64(8);
    for _ in 0..CASES {
        let b = aabb(&mut rng);
        let seg = Segment::new(vec3(&mut rng), vec3(&mut rng));
        let t = rng.random_range(0.0..1.0);
        let d = collide::segment_aabb_distance(&seg, &b);
        // The distance from any sampled point on the segment can't be
        // smaller than the reported minimum (up to ternary-search error).
        let sample = seg.point_at(t);
        assert!(b.distance_to_point(sample) >= d - 1e-6);
    }
}

#[test]
fn segment_distance_is_symmetric() {
    let mut rng = Rng::seed_from_u64(9);
    for _ in 0..CASES {
        let (a1, a2) = (vec3(&mut rng), vec3(&mut rng));
        let (b1, b2) = (vec3(&mut rng), vec3(&mut rng));
        let s1 = Segment::new(a1, a2);
        let s2 = Segment::new(b1, b2);
        let d12 = s1.distance_to_segment(&s2);
        let d21 = s2.distance_to_segment(&s1);
        assert!((d12 - d21).abs() < 1e-9);
        // And it lower-bounds endpoint distances.
        assert!(d12 <= a1.distance(b1) + 1e-9);
        assert!(d12 <= a2.distance(b2) + 1e-9);
    }
}

#[test]
fn capsule_intersection_consistent_with_distance() {
    let mut rng = Rng::seed_from_u64(10);
    for _ in 0..CASES {
        let c1 = Capsule::new(vec3(&mut rng), vec3(&mut rng), rng.random_range(0.01..1.0));
        let c2 = Capsule::new(vec3(&mut rng), vec3(&mut rng), rng.random_range(0.01..1.0));
        assert_eq!(
            c1.intersects_capsule(&c2),
            c1.distance_to_capsule(&c2) <= 0.0
        );
    }
}

#[test]
fn kabsch_recovers_applied_transform() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..CASES {
        let p = pose(&mut rng);
        // A non-degenerate cloud.
        let src = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.5, 0.5, 0.5),
        ];
        let dst: Vec<Vec3> = src.iter().map(|v| p.transform_point(*v)).collect();
        let fit = calibrate::fit_rigid_transform(&src, &dst).unwrap();
        assert!(fit.rms_error < 1e-6, "rms = {}", fit.rms_error);
    }
}
