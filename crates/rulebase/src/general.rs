//! The eleven general-purpose rules of Table III.

use crate::rule::{Rule, RuleId};
use rabit_devices::{ActionClass, ActionKind, DeviceId, StateKey, Substance};

/// Builds all eleven general rules, numbered as in Table III.
pub fn general_rules() -> Vec<Rule> {
    vec![
        rule_1_no_entering_closed_doors(),
        rule_2_no_closing_door_on_arm(),
        rule_3_no_moving_into_occupied_space(),
        rule_4_no_double_pick(),
        rule_5_action_needs_container(),
        rule_6_action_needs_nonempty_container(),
        rule_7_transfer_needs_open_stoppers(),
        rule_8_transfer_respects_fill_levels(),
        rule_9_doors_closed_before_running(),
        rule_10_no_opening_door_while_running(),
        rule_11_action_value_within_threshold(),
    ]
}

/// Rule III-1: *Robot arm cannot move into a device whose door is closed.*
pub fn rule_1_no_entering_closed_doors() -> Rule {
    Rule::new(
        RuleId::General(1),
        "Robot arm cannot move into a device whose door is closed",
        |cmd, state, ctx| {
            let ActionKind::MoveInsideDevice { device } = &cmd.action else {
                return None;
            };
            if !ctx.catalog.has_door(device) {
                return None;
            }
            match state.get_bool(device, &StateKey::DoorOpen) {
                Some(true) => None,
                Some(false) => Some(format!(
                    "{} attempted to enter {device} while its door is closed",
                    cmd.actor
                )),
                None => Some(format!(
                    "{} attempted to enter {device} whose door status is unknown",
                    cmd.actor
                )),
            }
        },
    )
    .with_actions(&[ActionClass::MoveInsideDevice])
}

/// Rule III-2: *Device door cannot be closed when the robot is inside the
/// device.*
pub fn rule_2_no_closing_door_on_arm() -> Rule {
    Rule::new(
        RuleId::General(2),
        "Device door cannot be closed when the robot is inside the device",
        |cmd, state, ctx| {
            let ActionKind::SetDoor { open: false } = &cmd.action else {
                return None;
            };
            for arm in ctx.catalog.robot_arms() {
                if state.get_id(&arm.id, &StateKey::InsideOf).flatten() == Some(&cmd.actor) {
                    return Some(format!(
                        "closing {} door while {} is inside",
                        cmd.actor, arm.id
                    ));
                }
            }
            None
        },
    )
    .with_actions(&[ActionClass::CloseDoor])
}

/// Rule III-3: *Robot arm can move to any location not occupied by any
/// object.* Without a simulator only the target location is checked
/// (paper §II-B, Lines 8-10).
pub fn rule_3_no_moving_into_occupied_space() -> Rule {
    Rule::new(
        RuleId::General(3),
        "Robot arm can move to any location not occupied by any object",
        |cmd, state, ctx| {
            let ActionKind::MoveToLocation { target } = &cmd.action else {
                return None;
            };
            let held: Option<&DeviceId> = state.get_id(&cmd.actor, &StateKey::Holding).flatten();
            for (device, dstate) in state.iter() {
                if device == &cmd.actor || Some(device) == held {
                    continue;
                }
                if let Some(fp) = dstate.get(&StateKey::Footprint).and_then(|v| v.as_box()) {
                    if fp.contains_point(*target) {
                        return Some(format!(
                            "{} target {target} lies inside {device}",
                            cmd.actor
                        ));
                    }
                }
            }
            // The deck itself: RABIT models the arm's own dimensions, so a
            // target closer to the platform than the gripper's downward
            // extent collides the bare arm with the platform.
            if target.z <= rabit_devices::physical::ARM_CLEARANCE_M {
                return Some(format!(
                    "{} target {target} would drive the gripper into the mounting platform",
                    cmd.actor
                ));
            }
            let _ = ctx;
            None
        },
    )
    .with_actions(&[ActionClass::MoveToLocation])
}

/// Rule III-4: *Robot arm can pick up an object when it isn't holding
/// something.*
pub fn rule_4_no_double_pick() -> Rule {
    Rule::new(
        RuleId::General(4),
        "Robot arm can pick up an object when it isn't holding something",
        |cmd, state, _| {
            let ActionKind::PickObject { object } = &cmd.action else {
                return None;
            };
            match state.get_id(&cmd.actor, &StateKey::Holding) {
                Some(None) => None,
                Some(Some(held)) => Some(format!(
                    "{} cannot pick up {object}: already holding {held}",
                    cmd.actor
                )),
                None => Some(format!(
                    "{} cannot pick up {object}: holding state unknown",
                    cmd.actor
                )),
            }
        },
    )
    .with_actions(&[ActionClass::PickObject])
}

/// Rule III-5: *Action device can perform actions when a container is
/// inside it.*
pub fn rule_5_action_needs_container() -> Rule {
    Rule::new(
        RuleId::General(5),
        "Action device can perform actions when a container is inside it",
        |cmd, state, ctx| {
            let ActionKind::StartAction { .. } = &cmd.action else {
                return None;
            };
            if !matches!(
                ctx.catalog.device_type(&cmd.actor),
                Some(rabit_devices::DeviceType::ActionDevice)
            ) || !ctx
                .catalog
                .get(&cmd.actor)
                .is_some_and(|m| m.hosts_container)
            {
                return None;
            }
            match state.get_id(&cmd.actor, &StateKey::ContainedObject) {
                Some(Some(_)) => None,
                _ => Some(format!(
                    "{} asked to run with no container inside",
                    cmd.actor
                )),
            }
        },
    )
    .with_actions(&[ActionClass::StartAction])
}

/// Rule III-6: *Action device can perform actions when a container is not
/// empty.*
pub fn rule_6_action_needs_nonempty_container() -> Rule {
    Rule::new(
        RuleId::General(6),
        "Action device can perform actions when a container is not empty",
        |cmd, state, ctx| {
            let ActionKind::StartAction { .. } = &cmd.action else {
                return None;
            };
            if !matches!(
                ctx.catalog.device_type(&cmd.actor),
                Some(rabit_devices::DeviceType::ActionDevice)
            ) || !ctx
                .catalog
                .get(&cmd.actor)
                .is_some_and(|m| m.hosts_container)
            {
                return None;
            }
            let contained = state
                .get_id(&cmd.actor, &StateKey::ContainedObject)
                .flatten()?;
            let solid = state
                .get_number(contained, &StateKey::SolidMg)
                .unwrap_or(0.0);
            let liquid = state
                .get_number(contained, &StateKey::LiquidMl)
                .unwrap_or(0.0);
            if solid <= 0.0 && liquid <= 0.0 {
                Some(format!(
                    "{} asked to run on empty container {contained}",
                    cmd.actor
                ))
            } else {
                None
            }
        },
    )
    .with_actions(&[ActionClass::StartAction])
}

/// Rule III-7: *A substance can be transferred from a delivering container
/// to a receiving container when neither has a stopper on it.*
pub fn rule_7_transfer_needs_open_stoppers() -> Rule {
    Rule::new(
        RuleId::General(7),
        "A substance can be transferred when neither container has a stopper on it",
        |cmd, state, _| {
            let ActionKind::Transfer { from, to, .. } = &cmd.action else {
                return None;
            };
            for c in [from, to] {
                if state.get_bool(c, &StateKey::HasStopper) != Some(false) {
                    return Some(format!("transfer blocked: {c} has its stopper on"));
                }
            }
            None
        },
    )
    .with_actions(&[ActionClass::Transfer])
}

/// Rule III-8: *A substance can be transferred from a filled delivering
/// container to an empty or partially filled receiving container.*
/// Dosing commands are the degenerate case with the dosing system as the
/// (always-filled) delivering side, so the receiving-capacity check
/// applies to them too — this is what catches "adding more solid than the
/// vial could hold" (§V-A).
pub fn rule_8_transfer_respects_fill_levels() -> Rule {
    Rule::new(
        RuleId::General(8),
        "Transfer only from a filled container into one with room to receive",
        |cmd, state, _| {
            let (receiver, substance, amount, source) = match &cmd.action {
                ActionKind::Transfer {
                    from,
                    to,
                    substance,
                    amount,
                } => (to, *substance, *amount, Some(from)),
                ActionKind::DoseSolid { amount_mg, into } => {
                    (into, Substance::Solid, *amount_mg, None)
                }
                ActionKind::DoseLiquid { volume_ml, into } => {
                    (into, Substance::Liquid, *volume_ml, None)
                }
                _ => return None,
            };
            let (level_key, capacity_key) = match substance {
                Substance::Solid => (StateKey::SolidMg, StateKey::CapacityMg),
                Substance::Liquid => (StateKey::LiquidMl, StateKey::CapacityMl),
            };
            if let Some(from) = source {
                let available = state.get_number(from, &level_key).unwrap_or(0.0);
                if available < amount {
                    return Some(format!(
                        "transfer of {amount} from {from}: only {available} available"
                    ));
                }
            }
            let level = state.get_number(receiver, &level_key).unwrap_or(0.0);
            let capacity = state
                .get_number(receiver, &capacity_key)
                .unwrap_or(f64::INFINITY);
            if level + amount > capacity {
                return Some(format!(
                    "{receiver} cannot receive {amount}: {level} of {capacity} already used"
                ));
            }
            None
        },
    )
    .with_actions(&[
        ActionClass::Transfer,
        ActionClass::DoseSolid,
        ActionClass::DoseLiquid,
    ])
}

/// Rule III-9: *Dosing systems or action devices with doors should start
/// dosing or performing an action, respectively, only when their doors
/// are closed.*
pub fn rule_9_doors_closed_before_running() -> Rule {
    Rule::new(
        RuleId::General(9),
        "Devices with doors start running only when their doors are closed",
        |cmd, state, ctx| {
            if !matches!(
                cmd.action,
                ActionKind::StartAction { .. }
                    | ActionKind::DoseSolid { .. }
                    | ActionKind::DoseLiquid { .. }
            ) {
                return None;
            }
            if !ctx.catalog.has_door(&cmd.actor) {
                return None;
            }
            match state.get_bool(&cmd.actor, &StateKey::DoorOpen) {
                Some(false) => None,
                _ => Some(format!("{} cannot start with its door open", cmd.actor)),
            }
        },
    )
    .with_actions(&[
        ActionClass::StartAction,
        ActionClass::DoseSolid,
        ActionClass::DoseLiquid,
    ])
}

/// Rule III-10: *The door of the dosing systems or action devices with
/// doors should be closed when they are running* — i.e. a door may not be
/// opened mid-run.
pub fn rule_10_no_opening_door_while_running() -> Rule {
    Rule::new(
        RuleId::General(10),
        "Device doors stay closed while the device is running",
        |cmd, state, _| {
            let ActionKind::SetDoor { open: true } = &cmd.action else {
                return None;
            };
            if state.get_bool(&cmd.actor, &StateKey::ActionActive) == Some(true) {
                Some(format!("{} door opened while it is running", cmd.actor))
            } else {
                None
            }
        },
    )
    .with_actions(&[ActionClass::OpenDoor])
}

/// Rule III-11: *The action value, such as temperature or stirring speed,
/// for a given action device should not exceed its predefined threshold.*
pub fn rule_11_action_value_within_threshold() -> Rule {
    Rule::new(
        RuleId::General(11),
        "Action value must not exceed the device's predefined threshold",
        |cmd, state, ctx| {
            let ActionKind::StartAction { value } = &cmd.action else {
                return None;
            };
            let threshold = state
                .get_number(&cmd.actor, &StateKey::ActionThreshold)
                .or_else(|| ctx.catalog.get(&cmd.actor).and_then(|m| m.action_threshold));
            match threshold {
                Some(t) if *value > t => Some(format!(
                    "{} action value {value} exceeds threshold {t}",
                    cmd.actor
                )),
                _ => None,
            }
        },
    )
    .with_actions(&[ActionClass::StartAction])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{DeviceCatalog, DeviceMeta};
    use crate::rule::RuleCtx;
    use rabit_devices::{Command, DeviceState, DeviceType, LabState, Value};
    use rabit_geometry::{Aabb, Vec3};

    fn catalog() -> DeviceCatalog {
        DeviceCatalog::new()
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("hotplate", DeviceType::ActionDevice).with_threshold(100.0))
            .with(DeviceMeta::new("arm", DeviceType::RobotArm))
            .with(DeviceMeta::new("vial", DeviceType::Container))
            .with(DeviceMeta::new("vial2", DeviceType::Container))
    }

    fn base_state() -> LabState {
        let mut s = LabState::new();
        s.insert(
            "doser",
            DeviceState::new()
                .with(StateKey::DoorOpen, false)
                .with(StateKey::ActionActive, false)
                .with(
                    StateKey::Footprint,
                    Aabb::new(Vec3::new(0.1, 0.3, 0.0), Vec3::new(0.3, 0.5, 0.3)),
                ),
        );
        s.insert(
            "hotplate",
            DeviceState::new()
                .with(StateKey::ActionActive, false)
                .with(StateKey::ActionThreshold, 100.0)
                .with(StateKey::ContainedObject, None::<DeviceId>),
        );
        s.insert(
            "arm",
            DeviceState::new()
                .with(StateKey::Holding, None::<DeviceId>)
                .with(StateKey::InsideOf, None::<DeviceId>),
        );
        s.insert(
            "vial",
            DeviceState::new()
                .with(StateKey::SolidMg, 0.0)
                .with(StateKey::LiquidMl, 0.0)
                .with(StateKey::CapacityMg, 10.0)
                .with(StateKey::CapacityMl, 20.0)
                .with(StateKey::HasStopper, false),
        );
        s.insert(
            "vial2",
            DeviceState::new()
                .with(StateKey::SolidMg, 5.0)
                .with(StateKey::LiquidMl, 10.0)
                .with(StateKey::CapacityMg, 10.0)
                .with(StateKey::CapacityMl, 20.0)
                .with(StateKey::HasStopper, false),
        );
        s
    }

    fn check(rule: &Rule, cmd: &Command, state: &LabState) -> Option<String> {
        let catalog = catalog();
        let ctx = RuleCtx { catalog: &catalog };
        rule.check(cmd, state, &ctx).map(|v| v.message)
    }

    #[test]
    fn rule1_blocks_entry_through_closed_door() {
        let rule = rule_1_no_entering_closed_doors();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state)
            .unwrap()
            .contains("door is closed"));
        state.set(&"doser".into(), StateKey::DoorOpen, true);
        assert!(check(&rule, &cmd, &state).is_none());
        // Doorless devices are exempt.
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "hotplate".into(),
            },
        );
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule2_blocks_closing_door_on_arm() {
        let rule = rule_2_no_closing_door_on_arm();
        let cmd = Command::new("doser", ActionKind::SetDoor { open: false });
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state).is_none());
        state.set(
            &"arm".into(),
            StateKey::InsideOf,
            Some(DeviceId::new("doser")),
        );
        assert!(check(&rule, &cmd, &state).unwrap().contains("is inside"));
        // Opening is always fine under this rule.
        let cmd = Command::new("doser", ActionKind::SetDoor { open: true });
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule3_blocks_moves_into_footprints() {
        let rule = rule_3_no_moving_into_occupied_space();
        // Inside the doser's cuboid.
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.2, 0.4, 0.1),
            },
        );
        let state = base_state();
        assert!(check(&rule, &cmd, &state).unwrap().contains("inside doser"));
        // Free air above the deck is fine.
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.3),
            },
        );
        assert!(check(&rule, &cmd, &state).is_none());
        // Within the gripper's downward extent of the platform: violation.
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.04),
            },
        );
        assert!(check(&rule, &cmd, &state).unwrap().contains("platform"));
        // Just above the clearance: allowed (the bare arm fits).
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.06),
            },
        );
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule3_ignores_held_object_footprint() {
        let rule = rule_3_no_moving_into_occupied_space();
        let mut state = base_state();
        // The held vial travels with the arm; its footprint must not block.
        state.set(
            &"arm".into(),
            StateKey::Holding,
            Some(DeviceId::new("vial")),
        );
        state.set(
            &"vial".into(),
            StateKey::Footprint,
            Aabb::from_center_half_extents(Vec3::new(0.5, 0.0, 0.2), Vec3::splat(0.02)),
        );
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.5, 0.0, 0.2),
            },
        );
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule4_blocks_double_pick() {
        let rule = rule_4_no_double_pick();
        let cmd = Command::new(
            "arm",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        );
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state).is_none());
        state.set(
            &"arm".into(),
            StateKey::Holding,
            Some(DeviceId::new("vial2")),
        );
        assert!(check(&rule, &cmd, &state)
            .unwrap()
            .contains("already holding"));
    }

    #[test]
    fn rule5_and_6_demand_a_nonempty_container() {
        let r5 = rule_5_action_needs_container();
        let r6 = rule_6_action_needs_nonempty_container();
        let cmd = Command::new("hotplate", ActionKind::StartAction { value: 60.0 });
        let mut state = base_state();
        // No container at all: rule 5 fires, rule 6 stays quiet (nothing
        // to check).
        assert!(check(&r5, &cmd, &state).unwrap().contains("no container"));
        assert!(check(&r6, &cmd, &state).is_none());
        // Empty container: rule 5 passes, rule 6 fires.
        state.set(
            &"hotplate".into(),
            StateKey::ContainedObject,
            Some(DeviceId::new("vial")),
        );
        assert!(check(&r5, &cmd, &state).is_none());
        assert!(check(&r6, &cmd, &state)
            .unwrap()
            .contains("empty container"));
        // Non-empty container: both pass.
        state.set(&"vial".into(), StateKey::SolidMg, 5.0);
        assert!(check(&r6, &cmd, &state).is_none());
        // Dosing systems are exempt from rule 5 (it binds action devices).
        let dose = Command::new("doser", ActionKind::StartAction { value: 5.0 });
        assert!(check(&r5, &dose, &state).is_none());
    }

    #[test]
    fn rule7_blocks_stoppered_transfers() {
        let rule = rule_7_transfer_needs_open_stoppers();
        let cmd = Command::new(
            "arm",
            ActionKind::Transfer {
                from: "vial2".into(),
                to: "vial".into(),
                substance: Substance::Liquid,
                amount: 2.0,
            },
        );
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state).is_none());
        state.set(&"vial".into(), StateKey::HasStopper, true);
        assert!(check(&rule, &cmd, &state).unwrap().contains("stopper"));
    }

    #[test]
    fn rule8_checks_availability_and_capacity() {
        let rule = rule_8_transfer_respects_fill_levels();
        // Transfer more than the source holds.
        let cmd = Command::new(
            "arm",
            ActionKind::Transfer {
                from: "vial".into(), // empty
                to: "vial2".into(),
                substance: Substance::Liquid,
                amount: 2.0,
            },
        );
        let state = base_state();
        assert!(check(&rule, &cmd, &state).unwrap().contains("available"));
        // Dose beyond the receiver's capacity (P's overdose scenario).
        let cmd = Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 12.0,
                into: "vial".into(),
            },
        );
        assert!(check(&rule, &cmd, &state)
            .unwrap()
            .contains("cannot receive"));
        // A sane dose passes.
        let cmd = Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 5.0,
                into: "vial".into(),
            },
        );
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule9_demands_closed_door_to_start() {
        let rule = rule_9_doors_closed_before_running();
        let cmd = Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 5.0,
                into: "vial".into(),
            },
        );
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state).is_none(), "door starts closed");
        state.set(&"doser".into(), StateKey::DoorOpen, true);
        assert!(check(&rule, &cmd, &state).unwrap().contains("door open"));
        // Doorless devices exempt.
        let cmd = Command::new("hotplate", ActionKind::StartAction { value: 50.0 });
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule10_blocks_opening_while_running() {
        let rule = rule_10_no_opening_door_while_running();
        let cmd = Command::new("doser", ActionKind::SetDoor { open: true });
        let mut state = base_state();
        assert!(check(&rule, &cmd, &state).is_none());
        state.set(&"doser".into(), StateKey::ActionActive, true);
        assert!(check(&rule, &cmd, &state).unwrap().contains("running"));
        // Closing while running is fine (that is the safe state).
        let cmd = Command::new("doser", ActionKind::SetDoor { open: false });
        assert!(check(&rule, &cmd, &state).is_none());
    }

    #[test]
    fn rule11_enforces_thresholds() {
        let rule = rule_11_action_value_within_threshold();
        let state = base_state();
        let ok = Command::new("hotplate", ActionKind::StartAction { value: 80.0 });
        assert!(check(&rule, &ok, &state).is_none());
        let hot = Command::new("hotplate", ActionKind::StartAction { value: 150.0 });
        assert!(check(&rule, &hot, &state)
            .unwrap()
            .contains("exceeds threshold"));
        // Threshold can come from the catalog when absent from state.
        let mut state2 = base_state();
        state2.insert("hotplate", DeviceState::new());
        assert!(check(&rule, &hot, &state2).is_some());
    }

    #[test]
    fn all_eleven_rules_built() {
        let rules = general_rules();
        assert_eq!(rules.len(), 11);
        for (i, r) in rules.iter().enumerate() {
            assert_eq!(r.id(), &RuleId::General(i as u8 + 1));
            assert!(!r.description().is_empty());
        }
    }

    #[test]
    fn safe_workflow_commands_trigger_no_rules() {
        // A mini safe sequence: open door, move inside, pick vial.
        let rules = general_rules();
        let catalog = catalog();
        let ctx = RuleCtx { catalog: &catalog };
        let mut state = base_state();
        state.set(&"doser".into(), StateKey::DoorOpen, true);
        let commands = vec![
            Command::new(
                "arm",
                ActionKind::MoveInsideDevice {
                    device: "doser".into(),
                },
            ),
            Command::new(
                "arm",
                ActionKind::PickObject {
                    object: "vial".into(),
                },
            ),
            Command::new("arm", ActionKind::MoveHome),
        ];
        for cmd in &commands {
            for rule in &rules {
                assert!(
                    rule.check(cmd, &state, &ctx).is_none(),
                    "false positive: {} on {cmd}",
                    rule.id()
                );
            }
        }
    }

    #[test]
    fn unknown_holding_state_is_conservative() {
        let rule = rule_4_no_double_pick();
        let cmd = Command::new(
            "arm",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        );
        let mut state = base_state();
        state.insert("arm", DeviceState::new()); // wipe holding info
        assert!(check(&rule, &cmd, &state).unwrap().contains("unknown"));
    }

    #[test]
    fn value_variant_sanity() {
        // Guard against Footprint being stored as a non-box value.
        let mut state = base_state();
        state.set(&"doser".into(), StateKey::Footprint, Value::Bool(true));
        let rule = rule_3_no_moving_into_occupied_space();
        let cmd = Command::new(
            "arm",
            ActionKind::MoveToLocation {
                target: Vec3::new(0.2, 0.4, 0.1),
            },
        );
        // Malformed footprint: no crash, treated as absent.
        assert!(check(&rule, &cmd, &state).is_none());
    }
}
