//! The sim-backed deployment substrate (stage 1 of the pipeline).
//!
//! [`SimulatorSubstrate`] implements [`rabit_core::Substrate`] for the
//! Extended Simulator stage: every run gets a fresh lab from a stored
//! recipe, and a fresh headless [`ExtendedSimulator`] is attached to the
//! engine as its trajectory validator. Because `rabit-sim` sits below the
//! stage crates in the dependency graph, the substrate is *recipe-based*:
//! deck crates (testbed, production) hand it closures that build their
//! lab, rulebase, and catalog, plus the obstacle world and arm models to
//! simulate — see `Testbed::simulator_substrate` and
//! `ProductionDeck::simulator_substrate`.

use crate::simulator::{ExtendedSimulator, SimConfig};
use crate::world::SimWorld;
use rabit_core::{FaultPlan, Lab, RabitConfig, Stage, Substrate, TrajectoryValidator};
use rabit_devices::DeviceId;
use rabit_kinematics::ArmModel;
use rabit_rulebase::{DeviceCatalog, Rulebase, RulebaseSnapshot};

type LabBuilder = Box<dyn Fn() -> Lab + Send + Sync>;
type RulebaseBuilder = Box<dyn Fn() -> RulebaseSnapshot + Send + Sync>;
type CatalogBuilder = Box<dyn Fn() -> DeviceCatalog + Send + Sync>;

/// A [`Substrate`] realising the Extended Simulator stage: a lab recipe
/// plus the simulated world and arm models a fresh validator is built
/// from on every [`Substrate::rabit`] call.
pub struct SimulatorSubstrate {
    name: String,
    world: SimWorld,
    arms: Vec<(DeviceId, ArmModel)>,
    sim_config: SimConfig,
    engine_config: RabitConfig,
    fault_plan: FaultPlan,
    lab: LabBuilder,
    rulebase: RulebaseBuilder,
    catalog: CatalogBuilder,
}

impl SimulatorSubstrate {
    /// A named substrate with an empty world, no arms, the standard
    /// rulebase, and a headless simulator configuration (the pipeline
    /// stage exists to run many virtual experiments fast; GUI latency is
    /// opt-in via [`SimulatorSubstrate::with_sim_config`]).
    pub fn new(name: impl Into<String>) -> Self {
        SimulatorSubstrate {
            name: name.into(),
            world: SimWorld::new(),
            arms: Vec::new(),
            sim_config: SimConfig {
                gui: false,
                ..SimConfig::default()
            },
            engine_config: RabitConfig::default(),
            fault_plan: FaultPlan::none(),
            lab: Box::new(Lab::new),
            rulebase: Box::new(|| Rulebase::standard().into()),
            catalog: Box::new(DeviceCatalog::new),
        }
    }

    /// Sets the obstacle world trajectories are swept against.
    pub fn with_world(mut self, world: SimWorld) -> Self {
        self.world = world;
        self
    }

    /// Registers an arm model the simulator mirrors.
    pub fn with_arm(mut self, id: impl Into<DeviceId>, model: ArmModel) -> Self {
        self.arms.push((id.into(), model));
        self
    }

    /// Sets the lab-construction recipe (called afresh for every run).
    pub fn with_lab(mut self, lab: impl Fn() -> Lab + Send + Sync + 'static) -> Self {
        self.lab = Box::new(lab);
        self
    }

    /// Sets the rulebase-construction recipe. The recipe may return an
    /// owned [`Rulebase`] (pinned at epoch 0) or an epoch-stamped
    /// [`RulebaseSnapshot`] — e.g. a closure over a live rule store that
    /// returns its latest published snapshot on every call.
    pub fn with_rulebase<R: Into<RulebaseSnapshot>>(
        mut self,
        rulebase: impl Fn() -> R + Send + Sync + 'static,
    ) -> Self {
        self.rulebase = Box::new(move || rulebase().into());
        self
    }

    /// Sets the catalog-construction recipe.
    pub fn with_catalog(
        mut self,
        catalog: impl Fn() -> DeviceCatalog + Send + Sync + 'static,
    ) -> Self {
        self.catalog = Box::new(catalog);
        self
    }

    /// Overrides the simulator configuration (GUI latency, poll interval,
    /// cache and broad-phase switches).
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Overrides the engine configuration.
    pub fn with_engine_config(mut self, config: RabitConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Arms every run of this substrate with a fault plan (chaos-style
    /// robustness sweeps). [`Substrate::instantiate_with`] overrides it
    /// per run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builds a fresh Extended Simulator from the stored world and arms —
    /// the validator [`Substrate::validator`] attaches.
    pub fn build_simulator(&self) -> ExtendedSimulator {
        let mut sim = ExtendedSimulator::new(self.world.clone(), self.sim_config);
        for (id, model) in &self.arms {
            sim.add_arm(id.clone(), model.clone());
        }
        sim
    }
}

impl Substrate for SimulatorSubstrate {
    fn name(&self) -> &str {
        &self.name
    }

    fn stage(&self) -> Stage {
        Stage::Simulator
    }

    fn build_lab(&self) -> Lab {
        (self.lab)()
    }

    fn rulebase(&self) -> RulebaseSnapshot {
        (self.rulebase)()
    }

    fn catalog(&self) -> DeviceCatalog {
        (self.catalog)()
    }

    fn validator(&self) -> Option<Box<dyn TrajectoryValidator>> {
        Some(Box::new(self.build_simulator()))
    }

    fn engine_config(&self) -> RabitConfig {
        self.engine_config.clone()
    }

    fn fault_plan(&self) -> FaultPlan {
        self.fault_plan.clone()
    }
}

impl std::fmt::Debug for SimulatorSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorSubstrate")
            .field("name", &self.name)
            .field("obstacles", &self.world.obstacles().len())
            .field("arms", &self.arms.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::{ActionKind, Command, DeviceType, RobotArm};
    use rabit_geometry::{Aabb, Vec3};
    use rabit_kinematics::presets;
    use rabit_rulebase::DeviceMeta;

    fn substrate() -> SimulatorSubstrate {
        let arm = presets::ur3e();
        let home = arm.tool_position(&arm.home_configuration());
        let sleep = arm.tool_position(&arm.sleep_configuration());
        SimulatorSubstrate::new("unit-sim")
            .with_world(SimWorld::new().with_platform(1.0))
            .with_arm("ur3e", presets::ur3e())
            .with_lab(move || Lab::new().with_device(RobotArm::new("ur3e", home, sleep)))
            .with_catalog(move || {
                DeviceCatalog::new().with(
                    DeviceMeta::new("ur3e", DeviceType::RobotArm).with_arm_positions(home, sleep),
                )
            })
    }

    #[test]
    fn substrate_builds_fresh_guarded_engines() {
        let s = substrate();
        assert_eq!(s.stage(), Stage::Simulator);
        assert_eq!(s.name(), "unit-sim");
        assert_eq!(s.stage().damage_cost_multiplier(), 0.0);
        let (mut lab, mut rabit) = s.instantiate();
        // The validator is attached: a reachable free-space move sweeps.
        let arm = presets::ur3e();
        let target = arm.tool_position(&arm.home_configuration()) + Vec3::new(0.05, 0.0, 0.05);
        let report = rabit.run(
            &mut lab,
            &[Command::new("ur3e", ActionKind::MoveToLocation { target })],
        );
        assert!(report.completed(), "alert: {:?}", report.alert);
        assert!(rabit.validator_narrow_checks() > 0 || rabit.validator_cache_stats().1 > 0);
        // Each instantiate() is fresh — no state bleeds between runs.
        let (_, rabit2) = s.instantiate();
        assert_eq!(rabit2.validator_cache_stats(), (0, 0));
    }

    #[test]
    fn simulator_stage_blocks_colliding_motion() {
        let arm = presets::ur3e();
        let home = arm.tool_position(&arm.home_configuration());
        let target = home + Vec3::new(0.0, 0.25, 0.0);
        let wall =
            Aabb::from_center_half_extents(home.lerp(target, 0.5), Vec3::new(0.35, 0.04, 0.35));
        let s = substrate().with_world(SimWorld::new().with_obstacle("hotplate", wall));
        let (mut lab, mut rabit) = s.instantiate();
        let report = rabit.run(
            &mut lab,
            &[Command::new("ur3e", ActionKind::MoveToLocation { target })],
        );
        match &report.alert {
            Some(rabit_core::Alert::InvalidTrajectory { collision, .. }) => {
                assert_eq!(collision.device.as_str(), "hotplate");
            }
            other => panic!("expected a trajectory alert, got {other:?}"),
        }
        assert!(lab.damage_log().is_empty(), "blocked before execution");
    }
}
