//! Parametric fault-family sweeps: the 16-bug catalog, generalized.
//!
//! The §IV study replays a *fixed* catalog of failures. The fault
//! runtime (`rabit_core::faults`) turns each failure shape into a
//! *family* — stale reads, noisy sensors, dropped or duplicated
//! commands, latency spikes, device crashes — that can be injected into
//! any workflow at any rate, under any seed. This module sweeps those
//! families against a deployment substrate and scores, per family:
//!
//! * **detection** — how many faulted runs RABIT halted with one of its
//!   own checks (a dropped command surfaces as `Device malfunction!`);
//! * **recovery** — how many runs a [`RecoveryPolicy`] rode out to
//!   completion instead of halting;
//! * **overhead** — the guarded engine's share of virtual lab time.
//!
//! Sweeps are deterministic: run `i` of a family always executes under
//! `plan.for_run(i)`, so the numbers are identical for any worker-thread
//! count.

use rabit_core::fleet::run_indexed;
use rabit_core::{
    FaultKind, FaultPlan, FaultSchedule, RecoveryCounters, RecoveryPolicy, Substrate,
};
use rabit_testbed::{locations, workflows};
use rabit_tracer::Tracer;

/// The swept fault families: `(family name, plan)` pairs, every plan
/// derived from `seed`. Rates are chosen so a multi-command workflow is
/// reliably hit at least once without drowning in faults.
pub fn fault_families(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    let every_third = || FaultSchedule::EveryNth {
        period: 3,
        offset: 1,
    };
    vec![
        (
            "stale_state",
            FaultPlan::seeded(seed).with(FaultKind::StaleState, every_third()),
        ),
        (
            "noisy_state",
            FaultPlan::seeded(seed ^ 0x1).with(
                FaultKind::NoisyState { sigma: 0.05 },
                FaultSchedule::Bernoulli { probability: 0.5 },
            ),
        ),
        (
            "drop_command",
            FaultPlan::seeded(seed ^ 0x2).with(FaultKind::DropCommand, every_third()),
        ),
        (
            "duplicate_command",
            FaultPlan::seeded(seed ^ 0x3).with(FaultKind::DuplicateCommand, every_third()),
        ),
        (
            "latency_spike",
            FaultPlan::seeded(seed ^ 0x4).with(
                FaultKind::LatencySpike { seconds: 30.0 },
                FaultSchedule::Bernoulli { probability: 0.3 },
            ),
        ),
        (
            "device_crash",
            FaultPlan::seeded(seed ^ 0x5).with(
                FaultKind::DeviceCrash { downtime_s: 1.0 },
                FaultSchedule::AtSteps(vec![1]),
            ),
        ),
    ]
}

/// Aggregated results of sweeping one fault family on one substrate.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// The family's machine-readable name (`FaultKind::family`).
    pub family: String,
    /// Number of faulted runs executed.
    pub runs: usize,
    /// Faults actually injected across all runs.
    pub injected: u64,
    /// Runs halted by a RABIT check (malfunction / invalid command).
    pub detected: usize,
    /// Runs halted by a device fault (crash windows land here).
    pub device_faults: usize,
    /// Runs that completed despite injected faults.
    pub completed: usize,
    /// Runs in which the recovery policy recovered at least one command.
    pub recovered_runs: usize,
    /// Summed recovery activity across all runs.
    pub recovery: RecoveryCounters,
    /// Mean virtual lab time per run (seconds).
    pub mean_lab_time_s: f64,
    /// Mean RABIT overhead per run (seconds) — retry backoff included.
    pub mean_overhead_s: f64,
}

impl FamilyResult {
    /// Fraction of faulted runs RABIT halted with one of its own checks.
    pub fn detection_rate(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.detected as f64 / self.runs as f64
    }

    /// Fraction of runs that completed (rode out every injection).
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.completed as f64 / self.runs as f64
    }
}

/// Sweeps one fault plan on `substrate`: `repeats` runs of the deck's
/// safe workflow on `threads` workers, run `i` armed with
/// `plan.for_run(i)` and the engine set to `policy`. Deterministic for
/// any `threads >= 1`.
pub fn run_fault_family_on(
    substrate: &dyn Substrate,
    family: impl Into<String>,
    plan: &FaultPlan,
    repeats: usize,
    threads: usize,
    policy: RecoveryPolicy,
) -> FamilyResult {
    let loc = locations();
    let wf = workflows::fig5_safe_workflow(&loc);
    let runs = run_indexed(repeats, threads, |i| {
        let (mut lab, mut rabit) = substrate.instantiate_with(&plan.for_run(i as u64));
        rabit.config_mut().recovery = policy;
        rabit.config_mut().first_violation_only = true;
        let report = Tracer::guarded(&mut lab, &mut rabit).run(&wf);
        (report, lab.fault_stats().total_injected())
    });

    let mut result = FamilyResult {
        family: family.into(),
        runs: repeats,
        injected: 0,
        detected: 0,
        device_faults: 0,
        completed: 0,
        recovered_runs: 0,
        recovery: RecoveryCounters::default(),
        mean_lab_time_s: 0.0,
        mean_overhead_s: 0.0,
    };
    for (report, injected) in &runs {
        result.injected += injected;
        match &report.alert {
            Some(alert) if alert.is_rabit_detection() => result.detected += 1,
            Some(_) => result.device_faults += 1,
            None => result.completed += 1,
        }
        if report.recovery.recovered > 0 {
            result.recovered_runs += 1;
        }
        result.recovery.retries += report.recovery.retries;
        result.recovery.recovered += report.recovery.recovered;
        result.recovery.quarantined += report.recovery.quarantined;
        result.recovery.skipped_quarantined += report.recovery.skipped_quarantined;
        result.recovery.safe_stops += report.recovery.safe_stops;
        result.mean_lab_time_s += report.lab_time_s;
        result.mean_overhead_s += report.rabit_overhead_s;
    }
    if repeats > 0 {
        result.mean_lab_time_s /= repeats as f64;
        result.mean_overhead_s /= repeats as f64;
    }
    result
}

/// Sweeps every [`fault_families`] plan on `substrate` under one policy.
pub fn run_fault_study_on(
    substrate: &dyn Substrate,
    seed: u64,
    repeats: usize,
    threads: usize,
    policy: RecoveryPolicy,
) -> Vec<FamilyResult> {
    fault_families(seed)
        .into_iter()
        .map(|(family, plan)| {
            run_fault_family_on(substrate, family, &plan, repeats, threads, policy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_core::RetryPolicy;
    use rabit_testbed::TestbedSubstrate;

    fn substrate() -> TestbedSubstrate {
        TestbedSubstrate::for_stage(rabit_core::Stage::Testbed)
    }

    #[test]
    fn families_cover_all_kinds() {
        let families = fault_families(42);
        let names: Vec<&str> = families.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "stale_state",
                "noisy_state",
                "drop_command",
                "duplicate_command",
                "latency_spike",
                "device_crash"
            ]
        );
        for (name, plan) in &families {
            assert!(!plan.is_empty(), "{name} plan injects nothing");
            assert_eq!(plan.specs()[0].kind.family(), *name);
        }
    }

    #[test]
    fn drop_family_detected_without_recovery() {
        let s = substrate();
        let (_, plan) = fault_families(7)
            .into_iter()
            .find(|(n, _)| *n == "drop_command")
            .unwrap();
        let result = run_fault_family_on(
            &s,
            "drop_command",
            &plan,
            4,
            2,
            RecoveryPolicy::AlertImmediately,
        );
        assert_eq!(result.runs, 4);
        assert!(result.injected > 0, "the schedule must actually fire");
        assert!(
            result.detected > 0,
            "dropped commands must surface as malfunctions: {result:?}"
        );
        assert!(!result.recovery.any(), "no recovery policy, no recovery");
    }

    #[test]
    fn retry_policy_turns_detections_into_completions() {
        let s = substrate();
        let (_, plan) = fault_families(7)
            .into_iter()
            .find(|(n, _)| *n == "drop_command")
            .unwrap();
        let alerted = run_fault_family_on(
            &s,
            "drop_command",
            &plan,
            4,
            1,
            RecoveryPolicy::AlertImmediately,
        );
        let retried = run_fault_family_on(
            &s,
            "drop_command",
            &plan,
            4,
            1,
            RecoveryPolicy::Retry(RetryPolicy::default()),
        );
        assert!(retried.completed > alerted.completed);
        assert!(retried.recovery.recovered > 0);
        assert!(retried.recovered_runs > 0);
        assert!(
            retried.mean_overhead_s > alerted.mean_overhead_s,
            "backoff is charged as RABIT overhead"
        );
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let s = substrate();
        let policy = RecoveryPolicy::Retry(RetryPolicy::default());
        let (_, plan) = fault_families(99)
            .into_iter()
            .find(|(n, _)| *n == "noisy_state")
            .unwrap();
        let serial = run_fault_family_on(&s, "noisy_state", &plan, 6, 1, policy);
        let parallel = run_fault_family_on(&s, "noisy_state", &plan, 6, 4, policy);
        assert_eq!(serial.injected, parallel.injected);
        assert_eq!(serial.detected, parallel.detected);
        assert_eq!(serial.completed, parallel.completed);
        assert_eq!(serial.recovery, parallel.recovery);
        assert_eq!(serial.mean_lab_time_s, parallel.mean_lab_time_s);
    }
}
