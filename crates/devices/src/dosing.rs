//! Dosing systems: the solid dosing device (Mettler Toledo) and the
//! automated syringe pump (Tecan).

use crate::command::ActionKind;
use crate::device::{is_silent_noop, Device, DeviceError, LatencyModel, Malfunction};
use crate::id::{DeviceId, DeviceType};
use crate::state::DeviceState;
use crate::value::StateKey;
use rabit_geometry::Aabb;

/// The solid dosing device: a **Dosing System** with a software-controlled
/// glass door — the device whose door "there have been instances of …
/// breaking because the programmer forgot to call `open_door()`"
/// (paper footnote 1).
#[derive(Debug, Clone, PartialEq)]
pub struct DosingDevice {
    id: DeviceId,
    footprint: Aabb,
    door_open: bool,
    dosing: bool,
    contained: Option<DeviceId>,
    /// Pending amount dispensed by the last `DoseSolid` (consumed by the
    /// environment when crediting the receiving vial).
    last_dose_mg: f64,
    /// Optional firmware cap on a single dose (mg).
    firmware_max_dose_mg: Option<f64>,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl DosingDevice {
    /// Creates a dosing device occupying `footprint`, door closed, empty.
    pub fn new(id: impl Into<DeviceId>, footprint: Aabb) -> Self {
        DosingDevice {
            id: id.into(),
            footprint,
            door_open: false,
            dosing: false,
            contained: None,
            last_dose_mg: 0.0,
            firmware_max_dose_mg: None,
            malfunction: None,
            latency: LatencyModel::PRODUCTION,
        }
    }

    /// Sets a firmware limit on the dose size.
    pub fn with_firmware_max_dose(mut self, mg: f64) -> Self {
        self.firmware_max_dose_mg = Some(mg);
        self
    }

    /// Overrides the latency model (testbed mockups are cardboard-quick).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Whether the glass door is open.
    pub fn door_open(&self) -> bool {
        self.door_open
    }

    /// Whether the device is currently dispensing.
    pub fn dosing(&self) -> bool {
        self.dosing
    }

    /// The container inside the device, if any.
    pub fn contained(&self) -> Option<&DeviceId> {
        self.contained.as_ref()
    }

    /// Places a container inside (called by the environment when an arm
    /// drops a vial in).
    pub fn insert_container(&mut self, container: DeviceId) {
        self.contained = Some(container);
    }

    /// Removes the contained container, returning it.
    pub fn remove_container(&mut self) -> Option<DeviceId> {
        self.contained.take()
    }

    /// Takes (and clears) the amount dispensed by the last dose command.
    pub fn take_last_dose(&mut self) -> f64 {
        std::mem::take(&mut self.last_dose_mg)
    }
}

impl Device for DosingDevice {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::DosingSystem
    }

    fn fetch_state(&self) -> DeviceState {
        // The door actuator and the dosing controller report their own
        // state; whether a vial sits in the chamber is NOT sensed — RABIT
        // believes it via pick/place postconditions.
        DeviceState::new()
            .with(StateKey::DoorOpen, self.door_open)
            .with(StateKey::ActionActive, self.dosing)
            .with(StateKey::Footprint, self.footprint)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::SetDoor { open } => {
                if is_silent_noop(self.malfunction) {
                    return Ok(()); // stuck door: acknowledged, unmoved
                }
                self.door_open = *open;
                Ok(())
            }
            ActionKind::DoseSolid { amount_mg, into: _ } => {
                if let Some(limit) = self.firmware_max_dose_mg {
                    if *amount_mg > limit {
                        return Err(DeviceError::FirmwareLimit {
                            device: self.id.clone(),
                            requested: *amount_mg,
                            limit,
                        });
                    }
                }
                if self.dosing {
                    return Err(DeviceError::InvalidState {
                        device: self.id.clone(),
                        reason: "already dosing".to_string(),
                    });
                }
                if is_silent_noop(self.malfunction) {
                    return Ok(());
                }
                // Dosing completes synchronously in the model: "Dosing
                // stops when amount is dispensed" (Fig. 1(b) comment).
                self.last_dose_mg = *amount_mg;
                Ok(())
            }
            ActionKind::StartAction { value } => {
                // `run_action(delay, quantity)` in Fig. 5 is a dose start.
                self.execute(&ActionKind::DoseSolid {
                    amount_mg: *value,
                    into: self
                        .contained
                        .clone()
                        .unwrap_or_else(|| DeviceId::new("unknown")),
                })?;
                self.dosing = true;
                Ok(())
            }
            ActionKind::StopAction => {
                self.dosing = false;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn footprint(&self) -> Option<Aabb> {
        Some(self.footprint)
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

/// The automated syringe pump: a doorless **Dosing System** for liquids.
#[derive(Debug, Clone, PartialEq)]
pub struct SyringePump {
    id: DeviceId,
    footprint: Aabb,
    dispensing: bool,
    last_volume_ml: f64,
    /// Optional firmware cap on a single dispense (mL).
    firmware_max_volume_ml: Option<f64>,
    malfunction: Option<Malfunction>,
    latency: LatencyModel,
}

impl SyringePump {
    /// Creates a syringe pump occupying `footprint`.
    pub fn new(id: impl Into<DeviceId>, footprint: Aabb) -> Self {
        SyringePump {
            id: id.into(),
            footprint,
            dispensing: false,
            last_volume_ml: 0.0,
            firmware_max_volume_ml: None,
            malfunction: None,
            latency: LatencyModel::PRODUCTION,
        }
    }

    /// Sets a firmware limit on the dispense volume.
    pub fn with_firmware_max_volume(mut self, ml: f64) -> Self {
        self.firmware_max_volume_ml = Some(ml);
        self
    }

    /// Takes (and clears) the volume dispensed by the last command.
    pub fn take_last_volume(&mut self) -> f64 {
        std::mem::take(&mut self.last_volume_ml)
    }

    /// Whether the pump is mid-dispense.
    pub fn dispensing(&self) -> bool {
        self.dispensing
    }
}

impl Device for SyringePump {
    fn id(&self) -> &DeviceId {
        &self.id
    }

    fn device_type(&self) -> DeviceType {
        DeviceType::DosingSystem
    }

    fn fetch_state(&self) -> DeviceState {
        DeviceState::new()
            .with(StateKey::ActionActive, self.dispensing)
            .with(StateKey::Footprint, self.footprint)
    }

    fn execute(&mut self, action: &ActionKind) -> Result<(), DeviceError> {
        match action {
            ActionKind::DoseLiquid { volume_ml, into: _ } => {
                if let Some(limit) = self.firmware_max_volume_ml {
                    if *volume_ml > limit {
                        return Err(DeviceError::FirmwareLimit {
                            device: self.id.clone(),
                            requested: *volume_ml,
                            limit,
                        });
                    }
                }
                if is_silent_noop(self.malfunction) {
                    return Ok(());
                }
                self.last_volume_ml = *volume_ml;
                Ok(())
            }
            other => Err(DeviceError::UnsupportedAction {
                device: self.id.clone(),
                action: other.label(),
            }),
        }
    }

    fn footprint(&self) -> Option<Aabb> {
        Some(self.footprint)
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn inject_malfunction(&mut self, malfunction: Option<Malfunction>) {
        self.malfunction = malfunction;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_geometry::Vec3;

    fn doser() -> DosingDevice {
        DosingDevice::new(
            "dosing_device",
            Aabb::new(Vec3::new(0.1, 0.3, 0.0), Vec3::new(0.3, 0.55, 0.35)),
        )
    }

    #[test]
    fn door_lifecycle() {
        let mut d = doser();
        assert!(!d.door_open());
        d.execute(&ActionKind::SetDoor { open: true }).unwrap();
        assert!(d.door_open());
        d.execute(&ActionKind::SetDoor { open: false }).unwrap();
        assert!(!d.door_open());
    }

    #[test]
    fn dose_and_collect() {
        let mut d = doser();
        d.execute(&ActionKind::DoseSolid {
            amount_mg: 5.0,
            into: "vial".into(),
        })
        .unwrap();
        assert_eq!(d.take_last_dose(), 5.0);
        assert_eq!(d.take_last_dose(), 0.0); // consumed
    }

    #[test]
    fn run_action_is_a_dose_with_active_state() {
        let mut d = doser();
        d.insert_container(DeviceId::new("vial"));
        d.execute(&ActionKind::StartAction { value: 5.0 }).unwrap();
        assert!(d.dosing());
        // Starting again while running is a firmware InvalidState.
        let err = d
            .execute(&ActionKind::StartAction { value: 2.0 })
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidState { .. }));
        d.execute(&ActionKind::StopAction).unwrap();
        assert!(!d.dosing());
    }

    #[test]
    fn firmware_dose_limit() {
        let mut d = doser().with_firmware_max_dose(10.0);
        let err = d
            .execute(&ActionKind::DoseSolid {
                amount_mg: 12.0,
                into: "vial".into(),
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::FirmwareLimit { limit, .. } if limit == 10.0));
        assert!(d
            .execute(&ActionKind::DoseSolid {
                amount_mg: 9.0,
                into: "vial".into()
            })
            .is_ok());
    }

    #[test]
    fn stuck_door_malfunction() {
        let mut d = doser();
        d.inject_malfunction(Some(Malfunction::SilentNoop));
        d.execute(&ActionKind::SetDoor { open: true }).unwrap();
        assert!(!d.door_open(), "stuck door must not move");
        // fetch_state reflects the stuck reality — this is what makes
        // S_actual differ from S_expected.
        assert_eq!(d.fetch_state().get_bool(&StateKey::DoorOpen), Some(false));
    }

    #[test]
    fn container_insertion() {
        let mut d = doser();
        assert!(d.contained().is_none());
        d.insert_container(DeviceId::new("vial_NW"));
        assert_eq!(d.contained().unwrap().as_str(), "vial_NW");
        // The chamber has no sensor: containment is never reported.
        assert!(d.fetch_state().get(&StateKey::ContainedObject).is_none());
        assert_eq!(d.remove_container().unwrap().as_str(), "vial_NW");
        assert!(d.contained().is_none());
    }

    #[test]
    fn doser_rejects_foreign_actions() {
        let mut d = doser();
        assert!(matches!(
            d.execute(&ActionKind::Cap),
            Err(DeviceError::UnsupportedAction { .. })
        ));
        assert_eq!(d.device_type(), DeviceType::DosingSystem);
        assert!(d.footprint().is_some());
    }

    #[test]
    fn pump_dispenses_with_firmware_cap() {
        let mut p = SyringePump::new(
            "syringe_pump",
            Aabb::new(Vec3::ZERO, Vec3::new(0.1, 0.1, 0.2)),
        )
        .with_firmware_max_volume(10.0);
        p.execute(&ActionKind::DoseLiquid {
            volume_ml: 2.0,
            into: "vial".into(),
        })
        .unwrap();
        assert_eq!(p.take_last_volume(), 2.0);
        let err = p
            .execute(&ActionKind::DoseLiquid {
                volume_ml: 15.0,
                into: "vial".into(),
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::FirmwareLimit { .. }));
        assert!(matches!(
            p.execute(&ActionKind::MoveHome),
            Err(DeviceError::UnsupportedAction { .. })
        ));
        assert!(!p.dispensing());
    }

    #[test]
    fn pump_silent_noop() {
        let mut p = SyringePump::new("pump", Aabb::new(Vec3::ZERO, Vec3::splat(0.1)));
        p.inject_malfunction(Some(Malfunction::SilentNoop));
        p.execute(&ActionKind::DoseLiquid {
            volume_ml: 2.0,
            into: "vial".into(),
        })
        .unwrap();
        assert_eq!(p.take_last_volume(), 0.0);
    }
}
