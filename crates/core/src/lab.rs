//! The lab environment: devices plus ground-truth physics.
//!
//! A [`Lab`] owns the runtime devices and executes commands the way the
//! physical lab would: cross-device effects (a dose lands in the vial
//! inside the doser, a held vial travels with the arm), simulated command
//! latencies on a virtual clock, and — crucially for the evaluation —
//! a [`DamageEvent`] log recording what *actually* breaks when an unsafe
//! command is not stopped. RABIT never reads the damage log; it is the
//! oracle the detection-rate experiments score against.

use crate::clock::SimClock;
use crate::damage::{DamageEvent, DamageKind};
use crate::faults::{CommandFault, FaultSession, FaultStats};
use rabit_devices::physical::{
    ARM_CLEARANCE_M, ARM_COLLISION_RADIUS_M, GRASP_RADIUS_M, HELD_OBJECT_CLEARANCE_M,
};
use rabit_devices::{
    ActionKind, Centrifuge, Command, Device, DeviceError, DeviceId, DosingDevice, Grid, Hotplate,
    LabState, RobotArm, StateKey, SyringePump, Thermoshaker, Vial,
};
use rabit_geometry::noise::PositionNoise;
use rabit_geometry::Vec3;
use rabit_util::Rng;
use std::collections::BTreeMap;

/// Why the lab could not execute a command. The typed replacement for
/// the stringly-typed errors the lab layer used to bubble up: callers
/// can match on the failure class, and the `std::error::Error` impl
/// composes with `?` and error-reporting crates.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum LabError {
    /// The command addressed a device the lab does not contain.
    UnknownDevice {
        /// The unknown device id.
        device: DeviceId,
    },
    /// The device's own firmware refused the command.
    Device(DeviceError),
    /// The device is inside an injected crash window (see
    /// [`crate::FaultKind::DeviceCrash`]) and rejects everything until
    /// it elapses.
    DeviceCrashed {
        /// The crashed device.
        device: DeviceId,
        /// When the crash window ends (virtual seconds).
        until_s: f64,
    },
}

impl std::fmt::Display for LabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabError::UnknownDevice { device } => write!(f, "unknown device {device}"),
            LabError::Device(error) => error.fmt(f),
            LabError::DeviceCrashed { device, until_s } => {
                write!(f, "{device} crashed; down until t={until_s:.2}s")
            }
        }
    }
}

impl std::error::Error for LabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabError::Device(error) => Some(error),
            _ => None,
        }
    }
}

impl From<DeviceError> for LabError {
    fn from(error: DeviceError) -> Self {
        LabError::Device(error)
    }
}

/// A concrete device in the lab. The enum gives the environment typed
/// access for cross-device effects while still implementing the common
/// [`Device`] interface; labs with exotic hardware can fall back to
/// [`LabDevice::Custom`].
pub enum LabDevice {
    /// A vial.
    Vial(Vial),
    /// A vial grid.
    Grid(Grid),
    /// The solid dosing device.
    Dosing(DosingDevice),
    /// The automated syringe pump.
    Pump(SyringePump),
    /// A hotplate stirrer.
    Hotplate(Hotplate),
    /// A centrifuge.
    Centrifuge(Centrifuge),
    /// A thermoshaker.
    Thermoshaker(Thermoshaker),
    /// A robot arm (logical state; kinematics live in the stage crates).
    Arm(RobotArm),
    /// Any other device.
    Custom(Box<dyn Device>),
}

impl LabDevice {
    fn as_device(&self) -> &dyn Device {
        match self {
            LabDevice::Vial(d) => d,
            LabDevice::Grid(d) => d,
            LabDevice::Dosing(d) => d,
            LabDevice::Pump(d) => d,
            LabDevice::Hotplate(d) => d,
            LabDevice::Centrifuge(d) => d,
            LabDevice::Thermoshaker(d) => d,
            LabDevice::Arm(d) => d,
            LabDevice::Custom(d) => d.as_ref(),
        }
    }

    fn as_device_mut(&mut self) -> &mut dyn Device {
        match self {
            LabDevice::Vial(d) => d,
            LabDevice::Grid(d) => d,
            LabDevice::Dosing(d) => d,
            LabDevice::Pump(d) => d,
            LabDevice::Hotplate(d) => d,
            LabDevice::Centrifuge(d) => d,
            LabDevice::Thermoshaker(d) => d,
            LabDevice::Arm(d) => d,
            LabDevice::Custom(d) => d.as_mut(),
        }
    }

    /// The arm, if this is one.
    pub fn as_arm(&self) -> Option<&RobotArm> {
        match self {
            LabDevice::Arm(a) => Some(a),
            _ => None,
        }
    }

    /// The vial, if this is one.
    pub fn as_vial(&self) -> Option<&Vial> {
        match self {
            LabDevice::Vial(v) => Some(v),
            _ => None,
        }
    }
}

impl std::fmt::Debug for LabDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LabDevice({})", self.as_device().id())
    }
}

macro_rules! impl_from_device {
    ($($variant:ident <- $ty:ty),* $(,)?) => {
        $(impl From<$ty> for LabDevice {
            fn from(d: $ty) -> Self {
                LabDevice::$variant(d)
            }
        })*
    };
}

impl_from_device!(
    Vial <- Vial,
    Grid <- Grid,
    Dosing <- DosingDevice,
    Pump <- SyringePump,
    Hotplate <- Hotplate,
    Centrifuge <- Centrifuge,
    Thermoshaker <- Thermoshaker,
    Arm <- RobotArm,
);

/// Optional kinematic summary for an arm, used for reach checks in the
/// logical lab (the full kinematic model lives in the stage crates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmKinematics {
    /// Arm base position.
    pub base: Vec3,
    /// Maximum reach from the base (metres).
    pub reach: f64,
}

/// The lab: devices, virtual clock, physical held-object tracking, and
/// the damage oracle.
pub struct Lab {
    devices: BTreeMap<DeviceId, LabDevice>,
    clock: SimClock,
    damage: Vec<DamageEvent>,
    /// Which objects each arm *physically* holds. Distinct from the arm's
    /// own `Holding` belief: without a gripper pressure sensor, the
    /// controller's belief can diverge from physical reality (the Bug-C
    /// class the paper could not detect).
    physically_held: BTreeMap<DeviceId, DeviceId>,
    arm_kinematics: BTreeMap<DeviceId, ArmKinematics>,
    /// Positional repeatability noise per arm (the testbed arms' "limited
    /// capabilities and precision", §III), with a seeded RNG so runs stay
    /// deterministic.
    arm_noise: BTreeMap<DeviceId, (PositionNoise, Rng)>,
    /// An armed fault-injection session, if any (see
    /// [`crate::FaultPlan`]). `None` costs nothing on the hot path.
    faults: Option<FaultSession>,
}

impl Lab {
    /// An empty lab.
    pub fn new() -> Self {
        Lab {
            devices: BTreeMap::new(),
            clock: SimClock::new(),
            damage: Vec::new(),
            physically_held: BTreeMap::new(),
            arm_kinematics: BTreeMap::new(),
            arm_noise: BTreeMap::new(),
            faults: None,
        }
    }

    /// Adds a device (builder style).
    pub fn with_device(mut self, device: impl Into<LabDevice>) -> Self {
        self.add_device(device);
        self
    }

    /// Adds a device.
    pub fn add_device(&mut self, device: impl Into<LabDevice>) {
        let device = device.into();
        let id = device.as_device().id().clone();
        self.devices.insert(id, device);
    }

    /// Registers an arm's base position and reach for feasibility checks.
    pub fn set_arm_kinematics(&mut self, arm: impl Into<DeviceId>, base: Vec3, reach: f64) {
        self.arm_kinematics
            .insert(arm.into(), ArmKinematics { base, reach });
    }

    /// Gives an arm positional repeatability noise: every motion lands a
    /// Gaussian-perturbed distance from its commanded target. Seeded, so
    /// runs remain deterministic.
    pub fn set_arm_noise(&mut self, arm: impl Into<DeviceId>, noise: PositionNoise, seed: u64) {
        self.arm_noise
            .insert(arm.into(), (noise, Rng::seed_from_u64(seed)));
    }

    /// Immutable access to a device.
    pub fn device(&self, id: &DeviceId) -> Option<&LabDevice> {
        self.devices.get(id)
    }

    /// Mutable access to a device (for test setup and stage binding).
    pub fn device_mut(&mut self, id: &DeviceId) -> Option<&mut LabDevice> {
        self.devices.get_mut(id)
    }

    /// All device ids.
    pub fn device_ids(&self) -> impl Iterator<Item = &DeviceId> {
        self.devices.keys()
    }

    /// The virtual clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Advances the virtual clock (stage crates add their own latencies,
    /// e.g. the simulator GUI).
    pub fn advance_clock(&mut self, seconds: f64) {
        self.clock.advance(seconds);
    }

    /// The damage log so far.
    pub fn damage_log(&self) -> &[DamageEvent] {
        &self.damage
    }

    /// Whether `arm` physically holds `object` (ground truth, not belief).
    pub fn physically_holds(&self, arm: &DeviceId, object: &DeviceId) -> bool {
        self.physically_held.get(arm) == Some(object)
    }

    /// Arms a fault-injection session: from now on commands and state
    /// fetches pass through it (see [`crate::FaultPlan::session`]).
    pub fn arm_faults(&mut self, session: FaultSession) {
        self.faults = Some(session);
    }

    /// Whether a fault session is armed.
    pub fn has_fault_session(&self) -> bool {
        self.faults.is_some()
    }

    /// Injection tallies of the armed fault session (all zeros when no
    /// session is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|s| *s.stats()).unwrap_or_default()
    }

    /// `FetchState()`: snapshots every device via its status command,
    /// advancing the clock by each status latency. This is the dominant
    /// cost of RABIT's ~0.03 s per-command overhead.
    pub fn fetch_state(&mut self) -> LabState {
        let mut state = LabState::new();
        let mut status_time = 0.0;
        for (id, device) in &self.devices {
            let d = device.as_device();
            status_time += d.latency().status_s;
            state.insert(id.clone(), d.fetch_state());
        }
        self.clock.advance(status_time);
        match &mut self.faults {
            Some(session) => session.intercept_state(state),
            None => state,
        }
    }

    /// Executes a command with full physical semantics: firmware checks,
    /// command latency, cross-device effects, and damage recording. With
    /// a fault session armed (see [`Lab::arm_faults`]) the command first
    /// passes through the injector, which may drop, duplicate, delay, or
    /// reject it.
    ///
    /// # Errors
    ///
    /// Returns a [`LabError`]: an unknown actor, the device's own
    /// [`DeviceError`] (firmware refusals, Ned2-style trajectory
    /// exceptions), or an injected crash window. An error means the
    /// action did not happen.
    pub fn apply(&mut self, command: &Command) -> Result<(), LabError> {
        let Some(session) = &mut self.faults else {
            return self.apply_inner(command);
        };
        match session.intercept_command(command, self.clock.now_s()) {
            CommandFault::None => self.apply_inner(command),
            CommandFault::Drop => {
                // Acknowledged, nothing happens beyond a token ack cost.
                // The post-execution malfunction check is what notices.
                self.clock.advance(0.01);
                Ok(())
            }
            CommandFault::Duplicate => {
                self.apply_inner(command)?;
                // The ghost repeat: if the firmware refuses the second
                // round the physical world is unchanged — the first
                // execution already succeeded.
                let _ = self.apply_inner(command);
                Ok(())
            }
            CommandFault::Latency(seconds) => {
                self.clock.advance(seconds);
                self.apply_inner(command)
            }
            CommandFault::Crashed { until_s } => Err(LabError::DeviceCrashed {
                device: command.actor.clone(),
                until_s,
            }),
        }
    }

    /// The fault-free execution path `apply` wraps.
    fn apply_inner(&mut self, command: &Command) -> Result<(), LabError> {
        // Infeasible-move handling BEFORE touching the device: ViperX
        // silently skips, Ned2 raises (paper §IV, category 4).
        if let ActionKind::MoveToLocation { target } = &command.action {
            if let Some(kin) = self.arm_kinematics.get(&command.actor) {
                if target.is_finite() && kin.base.distance(*target) > kin.reach {
                    let silent = self
                        .devices
                        .get(&command.actor)
                        .and_then(LabDevice::as_arm)
                        .is_some_and(RobotArm::silent_on_infeasible);
                    if silent {
                        // Command acknowledged, nothing moves, no time
                        // passes beyond a token planning cost.
                        self.clock.advance(0.01);
                        return Ok(());
                    }
                    return Err(LabError::Device(DeviceError::TrajectoryFault {
                        device: command.actor.clone(),
                        reason: format!("target {target} beyond reach {:.3} m", kin.reach),
                    }));
                }
            }
        }

        let device =
            self.devices
                .get_mut(&command.actor)
                .ok_or_else(|| LabError::UnknownDevice {
                    device: command.actor.clone(),
                })?;

        // Pre-execution physical context needed by the hazard rules.
        let from = device.as_arm().map(RobotArm::location);

        let latency = device.as_device().latency().action_latency(&command.action);
        device.as_device_mut().execute(&command.action)?;
        self.clock.advance(latency);

        // Imperfect arms land near, not at, their commanded target.
        if matches!(
            command.action,
            ActionKind::MoveToLocation { .. } | ActionKind::MoveHome | ActionKind::MoveToSleep
        ) {
            if let Some((noise, rng)) = self.arm_noise.get_mut(&command.actor) {
                if !noise.is_none() {
                    if let Some(LabDevice::Arm(arm)) = self.devices.get_mut(&command.actor) {
                        let achieved = noise.perturb(arm.location(), rng);
                        arm.set_location(achieved);
                    }
                }
            }
        }

        self.apply_cross_effects(command, from);
        Ok(())
    }

    /// Cross-device effects and hazard detection, applied after the actor
    /// executed successfully. `from` is the arm's pre-move tool position
    /// (for straight-line path hazards).
    fn apply_cross_effects(&mut self, command: &Command, from: Option<Vec3>) {
        let actor = command.actor.clone();
        match &command.action {
            ActionKind::MoveToLocation { .. } | ActionKind::MoveHome | ActionKind::MoveToSleep => {
                // Use the *achieved* location (noise may have shifted it
                // off the commanded target).
                if let Some(loc) = self.arm_location(&actor) {
                    self.after_arm_move(&actor, loc, from);
                }
            }
            ActionKind::MoveInsideDevice { device } => {
                // Entering through a closed door breaks the door (High).
                let closed = self.device_door_closed(device);
                if closed {
                    self.damage.push(DamageEvent::new(
                        actor.clone(),
                        DamageKind::EquipmentCollision {
                            equipment: device.clone(),
                        },
                        format!("{actor} crashed into {device}'s closed door"),
                    ));
                }
            }
            ActionKind::SetDoor { open: false } => {
                // Closing the door on an arm inside crushes arm and door.
                let arms_inside: Vec<DeviceId> = self
                    .devices
                    .values()
                    .filter_map(LabDevice::as_arm)
                    .filter(|a| a.inside_of() == Some(&actor))
                    .map(|a| a.id().clone())
                    .collect();
                for arm in arms_inside {
                    self.damage.push(DamageEvent::new(
                        actor.clone(),
                        DamageKind::EquipmentCollision {
                            equipment: actor.clone(),
                        },
                        format!("{actor} door closed onto {arm}"),
                    ));
                }
            }
            ActionKind::PickObject { object } => {
                self.physical_pick(&actor, object);
            }
            ActionKind::PlaceObject { object, into } => {
                self.physical_place(&actor, object, into.as_ref());
            }
            ActionKind::OpenGripper => {
                // Physically releases whatever was held, wherever we are.
                if let Some(obj) = self.physically_held.remove(&actor) {
                    if let Some(loc) = self.arm_location(&actor) {
                        self.set_vial_location(&obj, loc);
                        // Releasing mid-air above the deck drops the vial.
                        if loc.z > HELD_OBJECT_CLEARANCE_M + 0.05 {
                            self.damage.push(DamageEvent::new(
                                actor.clone(),
                                DamageKind::GlasswareBreak,
                                format!("{actor} released {obj} in mid-air; it fell and broke"),
                            ));
                        }
                    }
                }
            }
            ActionKind::DoseSolid { .. } | ActionKind::StartAction { .. } => {
                self.settle_dose(&actor);
            }
            ActionKind::DoseLiquid { volume_ml, into } => {
                self.settle_liquid(&actor, *volume_ml, into);
            }
            ActionKind::Transfer {
                from,
                to,
                substance,
                amount,
            } => {
                self.settle_transfer(from, to, *substance, *amount);
            }
            _ => {}
        }
    }

    fn arm_location(&self, arm: &DeviceId) -> Option<Vec3> {
        self.devices.get(arm)?.as_arm().map(RobotArm::location)
    }

    fn device_door_closed(&self, device: &DeviceId) -> bool {
        match self.devices.get(device) {
            Some(LabDevice::Dosing(d)) => !d.door_open(),
            Some(LabDevice::Centrifuge(c)) => {
                c.fetch_state().get_bool(&StateKey::DoorOpen) == Some(false)
            }
            _ => false,
        }
    }

    fn set_vial_location(&mut self, vial: &DeviceId, location: Vec3) {
        if let Some(LabDevice::Vial(v)) = self.devices.get_mut(vial) {
            v.set_location(location);
        }
    }

    /// Physical consequences of an arm arriving at `target` from `from`.
    fn after_arm_move(&mut self, arm: &DeviceId, target: Vec3, from: Option<Vec3>) {
        // A physically held object travels with the gripper.
        if let Some(obj) = self.physically_held.get(arm).cloned() {
            self.set_vial_location(&obj, target);
            if target.z <= HELD_OBJECT_CLEARANCE_M {
                self.damage.push(DamageEvent::new(
                    arm.clone(),
                    DamageKind::GlasswareBreak,
                    format!("held {obj} crashed into the platform at z={:.3}", target.z),
                ));
            }
        }
        // Bare-arm platform collision.
        if target.z <= ARM_CLEARANCE_M {
            self.damage.push(DamageEvent::new(
                arm.clone(),
                DamageKind::EnvironmentCollision {
                    obstacle: "platform".to_string(),
                },
                format!("{arm} gripper struck the platform at z={:.3}", target.z),
            ));
        }
        // Stationary-device collisions: the tool entering a footprint, or
        // the straight carry path from `from` to `target` slicing through
        // one (the footnote-2 silent-skip hazard). Vials are exempt — a
        // gripper intentionally envelops a vial when approaching it.
        let hits: Vec<(DeviceId, bool)> = self
            .devices
            .iter()
            .filter(|(id, d)| {
                *id != arm
                    && Some(*id) != self.physically_held.get(arm)
                    && !matches!(d, LabDevice::Vial(_))
            })
            .filter_map(|(id, d)| {
                let fp = d.as_device().footprint()?;
                let hit = fp.contains_point(target)
                    || from.is_some_and(|f| {
                        rabit_geometry::collide::path_hits_aabb(f, target, &fp, 0.0)
                    });
                hit.then(|| (id.clone(), matches!(d, LabDevice::Grid(_))))
            })
            .collect();
        for (id, cheap) in hits {
            let kind = if cheap {
                DamageKind::EnvironmentCollision {
                    obstacle: id.to_string(),
                }
            } else {
                DamageKind::EquipmentCollision {
                    equipment: id.clone(),
                }
            };
            self.damage.push(DamageEvent::new(
                arm.clone(),
                kind,
                format!("{arm} drove its tool into {id}"),
            ));
        }
        // Arm-on-arm collision (Bug B): two tools too close. A sleeping
        // arm is parked but still solid — driving into it is a collision.
        let others: Vec<(DeviceId, Vec3)> = self
            .devices
            .values()
            .filter_map(LabDevice::as_arm)
            .filter(|a| a.id() != arm)
            .map(|a| (a.id().clone(), a.location()))
            .collect();
        for (other, loc) in others {
            if loc.distance(target) <= ARM_COLLISION_RADIUS_M {
                self.damage.push(DamageEvent::new(
                    arm.clone(),
                    DamageKind::ArmCollision {
                        other: other.clone(),
                    },
                    format!(
                        "{arm} collided with {other} ({:.3} m apart)",
                        loc.distance(target)
                    ),
                ));
            }
        }
    }

    /// Physical pick: succeeds only if the object is within grasp range.
    fn physical_pick(&mut self, arm: &DeviceId, object: &DeviceId) {
        let Some(arm_loc) = self.arm_location(arm) else {
            return;
        };
        let obj_loc = match self.devices.get(object) {
            Some(LabDevice::Vial(v)) => v.location(),
            _ => return,
        };
        if arm_loc.distance(obj_loc) <= GRASP_RADIUS_M {
            self.physically_held.insert(arm.clone(), object.clone());
            // Leaving a containing device and vacating any grid slot.
            let ids: Vec<DeviceId> = self.devices.keys().cloned().collect();
            for id in ids {
                match self.devices.get_mut(&id) {
                    Some(LabDevice::Dosing(d)) if d.contained() == Some(object) => {
                        d.remove_container();
                    }
                    Some(LabDevice::Centrifuge(c)) if c.contained() == Some(object) => {
                        c.remove_container();
                    }
                    Some(LabDevice::Hotplate(h)) if h.contained() == Some(object) => {
                        h.remove_container();
                    }
                    Some(LabDevice::Thermoshaker(t)) if t.contained() == Some(object) => {
                        t.remove_container();
                    }
                    Some(LabDevice::Grid(g)) => {
                        let slots: Vec<String> = g.slot_names().map(str::to_string).collect();
                        for slot in slots {
                            if g.occupant(&slot) == Some(object) {
                                g.vacate(&slot);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Otherwise: the gripper closed on air. No physical change; the
        // controller's belief (set by `RobotArm::execute`) now diverges
        // from reality — the undetectable Bug-C class.
    }

    /// Physical place: only has an effect if the arm really holds the
    /// object.
    fn physical_place(&mut self, arm: &DeviceId, object: &DeviceId, into: Option<&DeviceId>) {
        if self.physically_held.get(arm) != Some(object) {
            return; // placing air
        }
        self.physically_held.remove(arm);
        let arm_loc = self.arm_location(arm).unwrap_or(Vec3::ZERO);
        match into {
            Some(device_id) => {
                // Placing into an occupied device collides the two vials
                // (paper footnote 1: the old vial "collides with the new
                // vial in the subsequent iteration").
                let prior = match self.devices.get_mut(device_id) {
                    Some(LabDevice::Dosing(d)) => {
                        let p = d.contained().cloned();
                        d.insert_container(object.clone());
                        p
                    }
                    Some(LabDevice::Centrifuge(c)) => {
                        let p = c.contained().cloned();
                        c.insert_container(object.clone());
                        p
                    }
                    Some(LabDevice::Hotplate(h)) => {
                        let p = h.contained().cloned();
                        h.insert_container(object.clone());
                        p
                    }
                    Some(LabDevice::Thermoshaker(t)) => {
                        let p = t.contained().cloned();
                        t.insert_container(object.clone());
                        p
                    }
                    _ => None,
                };
                self.set_vial_location(object, arm_loc);
                if let Some(prior) = prior {
                    if &prior != object {
                        self.damage.push(DamageEvent::new(
                            arm.clone(),
                            DamageKind::EquipmentCollision { equipment: device_id.clone() },
                            format!(
                                "{object} placed into {device_id} collided with {prior} already inside"
                            ),
                        ));
                    }
                }
            }
            None => {
                self.set_vial_location(object, arm_loc);
                // Settle into a grid slot if one is at this position.
                let grid_ids: Vec<DeviceId> = self
                    .devices
                    .iter()
                    .filter(|(_, d)| matches!(d, LabDevice::Grid(_)))
                    .map(|(id, _)| id.clone())
                    .collect();
                'outer: for gid in grid_ids {
                    if let Some(LabDevice::Grid(g)) = self.devices.get_mut(&gid) {
                        let slots: Vec<(String, Vec3)> = g
                            .slot_names()
                            .map(str::to_string)
                            .filter_map(|s| g.slot_position(&s).map(|p| (s, p)))
                            .collect();
                        for (slot, pos) in slots {
                            if pos.distance(arm_loc) <= GRASP_RADIUS_M * 2.0 {
                                let _ = g.occupy(&slot, object.clone());
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Solid dose settling: the dispensed amount lands in the vial inside
    /// the doser, or spills if no (or the wrong) vial is there. Dosing
    /// with the glass door open lets powder drift out of the chamber —
    /// part of the dispensed material is wasted (a Low-severity event).
    fn settle_dose(&mut self, doser: &DeviceId) {
        let (amount, contained, door_open) = match self.devices.get_mut(doser) {
            Some(LabDevice::Dosing(d)) => {
                (d.take_last_dose(), d.contained().cloned(), d.door_open())
            }
            _ => return,
        };
        if amount <= 0.0 {
            return;
        }
        let (delivered, drifted) = if door_open {
            (amount * 0.8, amount * 0.2)
        } else {
            (amount, 0.0)
        };
        if drifted > 0.0 {
            self.damage.push(DamageEvent::new(
                doser.clone(),
                DamageKind::Spill { amount: drifted },
                format!("{drifted:.2} mg drifted out of {doser}'s open door while dosing"),
            ));
        }
        match contained {
            Some(vial_id) => {
                let spilled = match self.devices.get_mut(&vial_id) {
                    Some(LabDevice::Vial(v)) => v.add_solid(delivered),
                    _ => delivered,
                };
                if spilled > 0.0 {
                    self.damage.push(DamageEvent::new(
                        doser.clone(),
                        DamageKind::Spill { amount: spilled },
                        format!("{spilled:.2} mg of solid overflowed {vial_id}"),
                    ));
                }
            }
            None => {
                self.damage.push(DamageEvent::new(
                    doser.clone(),
                    DamageKind::Spill { amount: delivered },
                    format!("{doser} dosed {delivered:.2} mg with no vial inside"),
                ));
            }
        }
    }

    /// Liquid dose settling: the pump dispenses into the named vial (its
    /// needle reaches wherever the experimenter parked the vial).
    fn settle_liquid(&mut self, pump: &DeviceId, _volume: f64, into: &DeviceId) {
        let volume = match self.devices.get_mut(pump) {
            Some(LabDevice::Pump(p)) => p.take_last_volume(),
            _ => return,
        };
        if volume <= 0.0 {
            return;
        }
        let spilled = match self.devices.get_mut(into) {
            Some(LabDevice::Vial(v)) => v.add_liquid(volume),
            _ => volume,
        };
        if spilled > 0.0 {
            self.damage.push(DamageEvent::new(
                pump.clone(),
                DamageKind::Spill { amount: spilled },
                format!("{spilled:.2} mL of liquid overflowed {into}"),
            ));
        }
    }

    /// Container-to-container transfer settling.
    fn settle_transfer(
        &mut self,
        from: &DeviceId,
        to: &DeviceId,
        substance: rabit_devices::Substance,
        amount: f64,
    ) {
        use rabit_devices::Substance;
        let moved = match self.devices.get_mut(from) {
            Some(LabDevice::Vial(v)) => match substance {
                Substance::Solid => v.take_solid(amount),
                Substance::Liquid => v.take_liquid(amount),
            },
            _ => 0.0,
        };
        if moved <= 0.0 {
            return;
        }
        let spilled = match self.devices.get_mut(to) {
            Some(LabDevice::Vial(v)) => match substance {
                Substance::Solid => v.add_solid(moved),
                Substance::Liquid => v.add_liquid(moved),
            },
            _ => moved,
        };
        if spilled > 0.0 {
            self.damage.push(DamageEvent::new(
                from.clone(),
                DamageKind::Spill { amount: spilled },
                format!("{spilled:.2} {substance} overflowed {to} during transfer"),
            ));
        }
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::damage::Severity;
    use rabit_geometry::Aabb;

    fn grid() -> Grid {
        Grid::new(
            "grid",
            Aabb::new(Vec3::new(0.45, -0.05, 0.0), Vec3::new(0.65, 0.1, 0.1)),
            vec![("NW".to_string(), Vec3::new(0.537, 0.018, 0.12))],
        )
    }

    fn small_lab() -> Lab {
        let mut lab = Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(grid());
        lab.device_mut(&"grid".into())
            .and_then(|d| match d {
                LabDevice::Grid(g) => Some(g),
                _ => None,
            })
            .unwrap()
            .occupy("NW", DeviceId::new("vial"))
            .unwrap();
        lab
    }

    fn mv(target: Vec3) -> Command {
        Command::new("viperx", ActionKind::MoveToLocation { target })
    }

    #[test]
    fn clock_accumulates_latencies() {
        let mut lab = small_lab();
        let t0 = lab.clock().now_s();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.2))).unwrap();
        assert!(lab.clock().now_s() > t0, "motion must take time");
        let t1 = lab.clock().now_s();
        let _ = lab.fetch_state();
        assert!(lab.clock().now_s() > t1, "status queries take time");
    }

    #[test]
    fn fetch_state_covers_all_devices() {
        let mut lab = small_lab();
        let s = lab.fetch_state();
        assert_eq!(s.len(), 4);
        assert!(s.device(&"viperx".into()).is_some());
        assert!(s.device(&"grid".into()).is_some());
    }

    #[test]
    fn pick_within_range_is_physical() {
        let mut lab = small_lab();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        assert!(lab.physically_holds(&"viperx".into(), &"vial".into()));
        // The grid slot was vacated.
        if let Some(LabDevice::Grid(g)) = lab.device(&"grid".into()) {
            assert!(g.occupant("NW").is_none());
        } else {
            panic!("grid missing");
        }
        // The held vial travels with the arm (0.35 clears the doser box).
        lab.apply(&mv(Vec3::new(0.2, 0.45, 0.35))).unwrap();
        let vial_loc = lab
            .device(&"vial".into())
            .unwrap()
            .as_vial()
            .unwrap()
            .location();
        assert_eq!(vial_loc, Vec3::new(0.2, 0.45, 0.35));
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn pick_out_of_range_closes_on_air() {
        let mut lab = small_lab();
        // Arm stays at home, far from the vial.
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        assert!(!lab.physically_holds(&"viperx".into(), &"vial".into()));
        // Belief says holding (no pressure sensor) — the Bug-C divergence.
        let believed = lab
            .device(&"viperx".into())
            .unwrap()
            .as_arm()
            .unwrap()
            .holding()
            .is_some();
        assert!(believed);
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn entering_closed_door_breaks_equipment() {
        let mut lab = small_lab();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        ))
        .unwrap();
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert_eq!(dmg[0].severity, Severity::High);
        assert!(dmg[0].description.contains("closed door"));
    }

    #[test]
    fn entering_open_door_is_safe() {
        let mut lab = small_lab();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        ))
        .unwrap();
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn closing_door_on_arm_inside() {
        let mut lab = small_lab();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        ))
        .unwrap();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: false }))
            .unwrap();
        assert_eq!(lab.damage_log().len(), 1);
        assert_eq!(lab.damage_log()[0].severity, Severity::High);
    }

    #[test]
    fn bug_d_held_vial_crashes_low() {
        let mut lab = small_lab();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        // z = 0.08: safe for the bare arm, fatal for the held vial.
        lab.apply(&mv(Vec3::new(0.3, 0.2, 0.08))).unwrap();
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert_eq!(dmg[0].severity, Severity::MediumLow);
        assert!(matches!(dmg[0].kind, DamageKind::GlasswareBreak));
    }

    #[test]
    fn bare_arm_platform_crash() {
        let mut lab = small_lab();
        lab.apply(&mv(Vec3::new(0.3, 0.2, 0.04))).unwrap();
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert_eq!(dmg[0].severity, Severity::MediumHigh);
    }

    #[test]
    fn moving_into_equipment_footprint() {
        let mut lab = small_lab();
        lab.apply(&mv(Vec3::new(0.18, 0.45, 0.15))).unwrap(); // inside doser
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert_eq!(dmg[0].severity, Severity::High);
        // Into the grid: Medium-High.
        let mut lab2 = small_lab();
        lab2.apply(&mv(Vec3::new(0.5, 0.0, 0.05))).unwrap();
        assert!(lab2
            .damage_log()
            .iter()
            .any(|d| matches!(&d.kind, DamageKind::EnvironmentCollision { obstacle } if obstacle == "grid")));
    }

    #[test]
    fn arm_arm_collision_detected() {
        let mut lab = small_lab();
        lab.add_device(RobotArm::new(
            "ned2",
            Vec3::new(0.6, 0.0, 0.3),
            Vec3::new(0.9, 0.0, 0.2),
        ));
        // Ned2 home is 0.3 m from ViperX home — safe. Move ViperX close.
        lab.apply(&mv(Vec3::new(0.55, 0.0, 0.32))).unwrap();
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert!(
            matches!(&dmg[0].kind, DamageKind::ArmCollision { other } if other.as_str() == "ned2")
        );
        // A sleeping arm is parked out of the way: same target, no event.
        let mut lab2 = small_lab();
        lab2.add_device(RobotArm::new(
            "ned2",
            Vec3::new(0.6, 0.0, 0.3),
            Vec3::new(0.9, 0.0, 0.2),
        ));
        lab2.apply(&Command::new("ned2", ActionKind::MoveToSleep))
            .unwrap();
        lab2.apply(&mv(Vec3::new(0.55, 0.0, 0.32))).unwrap();
        assert!(lab2.damage_log().is_empty());
    }

    #[test]
    fn dose_lands_in_contained_vial() {
        let mut lab = small_lab();
        // Put the vial inside the doser.
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        lab.apply(&mv(Vec3::new(0.18, 0.45, 0.35))).unwrap(); // above doser
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("doser".into()),
            },
        ))
        .unwrap();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: false }))
            .unwrap();
        lab.apply(&Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 5.0,
                into: "vial".into(),
            },
        ))
        .unwrap();
        let v = lab.device(&"vial".into()).unwrap().as_vial().unwrap();
        assert_eq!(v.solid_mg(), 5.0);
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn dose_with_no_vial_spills() {
        let mut lab = small_lab();
        lab.apply(&Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 5.0,
                into: "vial".into(),
            },
        ))
        .unwrap();
        let dmg = lab.damage_log();
        assert_eq!(dmg.len(), 1);
        assert_eq!(dmg[0].severity, Severity::Low);
        assert!(dmg[0].description.contains("no vial inside"));
    }

    #[test]
    fn overdose_spills_overflow() {
        let mut lab = small_lab();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        lab.apply(&mv(Vec3::new(0.18, 0.45, 0.35))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("doser".into()),
            },
        ))
        .unwrap();
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: false }))
            .unwrap();
        lab.apply(&Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 14.0,
                into: "vial".into(),
            },
        ))
        .unwrap();
        assert!(lab.damage_log().iter().any(
            |d| matches!(d.kind, DamageKind::Spill { amount } if (amount - 4.0).abs() < 1e-9)
        ));
        // Dosing with the door open also wastes material (drift).
        let mut lab2 = small_lab();
        lab2.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        lab2.apply(&Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 5.0,
                into: "vial".into(),
            },
        ))
        .unwrap();
        assert!(lab2
            .damage_log()
            .iter()
            .any(|d| d.description.contains("drifted out")));
    }

    #[test]
    fn placing_into_occupied_doser_collides_vials() {
        let mut lab = small_lab();
        lab.add_device(Vial::new("vial2", Vec3::new(0.3, 0.0, 0.3)));
        // Pre-load vial2 into the doser.
        if let Some(LabDevice::Dosing(d)) = lab.device_mut(&"doser".into()) {
            d.insert_container(DeviceId::new("vial2"));
        }
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        lab.apply(&mv(Vec3::new(0.18, 0.45, 0.35))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("doser".into()),
            },
        ))
        .unwrap();
        assert!(
            lab.damage_log()
                .iter()
                .any(|d| d.severity == Severity::High
                    && d.description.contains("collided with vial2"))
        );
    }

    #[test]
    fn infeasible_moves_split_by_arm_failure_mode() {
        // ViperX silently skips; Ned2 raises.
        let mut lab = Lab::new()
            .with_device(
                RobotArm::new("viperx", Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, 0.0, 0.2))
                    .with_silent_on_infeasible(true),
            )
            .with_device(RobotArm::new(
                "ned2",
                Vec3::new(0.6, 0.0, 0.3),
                Vec3::new(0.9, 0.0, 0.2),
            ));
        lab.set_arm_kinematics("viperx", Vec3::ZERO, 0.85);
        lab.set_arm_kinematics("ned2", Vec3::new(0.8, 0.0, 0.0), 0.6);
        let far = Vec3::new(3.0, 3.0, 3.0);
        // ViperX: Ok, but nothing moved.
        lab.apply(&Command::new(
            "viperx",
            ActionKind::MoveToLocation { target: far },
        ))
        .unwrap();
        let vx = lab.device(&"viperx".into()).unwrap().as_arm().unwrap();
        assert_eq!(vx.location(), Vec3::new(0.3, 0.0, 0.3), "silently skipped");
        // Ned2: hard error.
        let err = lab
            .apply(&Command::new(
                "ned2",
                ActionKind::MoveToLocation { target: far },
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            LabError::Device(DeviceError::TrajectoryFault { .. })
        ));
    }

    #[test]
    fn placing_at_grid_slot_reoccupies_it() {
        let mut lab = small_lab();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        lab.apply(&mv(Vec3::new(0.2, 0.45, 0.35))).unwrap();
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.12))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: None,
            },
        ))
        .unwrap();
        if let Some(LabDevice::Grid(g)) = lab.device(&"grid".into()) {
            assert_eq!(g.occupant("NW").unwrap().as_str(), "vial");
        } else {
            panic!("grid missing");
        }
        assert!(!lab.physically_holds(&"viperx".into(), &"vial".into()));
    }

    #[test]
    fn arm_noise_perturbs_achieved_positions_deterministically() {
        use rabit_geometry::noise::PositionNoise;
        let run = |sigma: f64, seed: u64| {
            let mut lab = small_lab();
            lab.set_arm_noise("viperx", PositionNoise::gaussian(sigma), seed);
            let target = Vec3::new(0.537, 0.018, 0.3);
            lab.apply(&mv(target)).unwrap();
            lab.device(&"viperx".into())
                .unwrap()
                .as_arm()
                .unwrap()
                .location()
                .distance(target)
        };
        // Perfect arm: lands exactly.
        assert_eq!(run(0.0, 1), 0.0);
        // Testbed arm: lands near, not at, the target — deterministically.
        let e1 = run(0.013, 7);
        assert!(e1 > 0.0 && e1 < 0.1, "error {e1}");
        assert_eq!(run(0.013, 7), e1, "same seed, same landing");
        assert_ne!(run(0.013, 8), e1, "different seed, different landing");
    }

    #[test]
    fn gross_imprecision_breaks_grasps() {
        use rabit_geometry::noise::PositionNoise;
        // With repeatability far worse than the grasp radius, the gripper
        // closes on air: the physical failure precision buys away.
        let mut lab = small_lab();
        lab.set_arm_noise("viperx", PositionNoise::gaussian(0.2), 3);
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.18))).unwrap();
        lab.apply(&Command::new(
            "viperx",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .unwrap();
        assert!(
            !lab.physically_holds(&"viperx".into(), &"vial".into()),
            "a 20 cm-sigma arm cannot reliably grasp a vial"
        );
    }

    #[test]
    fn unknown_device_rejected() {
        let mut lab = small_lab();
        let err = lab
            .apply(&Command::new("ghost", ActionKind::MoveHome))
            .unwrap_err();
        assert!(matches!(err, LabError::UnknownDevice { .. }));
        assert!(err.to_string().contains("ghost"));
        // LabError is a real error type: sources chain through to the
        // wrapped firmware error.
        use std::error::Error;
        assert!(err.source().is_none());
        let wrapped = LabError::from(DeviceError::UnsupportedAction {
            device: DeviceId::new("vial"),
            action: "MoveHome",
        });
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn armed_lab_drops_and_duplicates_commands() {
        use crate::faults::{FaultKind, FaultPlan, FaultSchedule};
        // Drop the first door command: acknowledged, door still closed.
        let mut lab = small_lab();
        lab.arm_faults(
            FaultPlan::seeded(3)
                .with_on(
                    "doser",
                    FaultKind::DropCommand,
                    FaultSchedule::AtSteps(vec![0]),
                )
                .session(),
        );
        assert!(lab.has_fault_session());
        lab.apply(&Command::new("doser", ActionKind::SetDoor { open: true }))
            .unwrap();
        if let Some(LabDevice::Dosing(d)) = lab.device(&"doser".into()) {
            assert!(!d.door_open(), "dropped command never reached the device");
        } else {
            panic!("doser missing");
        }
        assert_eq!(lab.fault_stats().dropped, 1);
        // Duplicate a solid dose: twice the powder lands.
        let mut lab2 = small_lab();
        if let Some(LabDevice::Dosing(d)) = lab2.device_mut(&"doser".into()) {
            d.insert_container(DeviceId::new("vial"));
        }
        lab2.arm_faults(
            FaultPlan::seeded(3)
                .with_on(
                    "doser",
                    FaultKind::DuplicateCommand,
                    FaultSchedule::AtSteps(vec![0]),
                )
                .session(),
        );
        lab2.apply(&Command::new(
            "doser",
            ActionKind::DoseSolid {
                amount_mg: 2.0,
                into: "vial".into(),
            },
        ))
        .unwrap();
        let v = lab2.device(&"vial".into()).unwrap().as_vial().unwrap();
        assert_eq!(v.solid_mg(), 4.0, "the ghost repeat dosed again");
        assert_eq!(lab2.fault_stats().duplicated, 1);
    }

    #[test]
    fn armed_lab_crash_window_rejects_then_recovers() {
        use crate::faults::{FaultKind, FaultPlan, FaultSchedule};
        let mut lab = small_lab();
        lab.arm_faults(
            FaultPlan::seeded(3)
                .with_on(
                    "doser",
                    FaultKind::DeviceCrash { downtime_s: 5.0 },
                    FaultSchedule::AtSteps(vec![0]),
                )
                .session(),
        );
        let open = Command::new("doser", ActionKind::SetDoor { open: true });
        let err = lab.apply(&open).unwrap_err();
        assert!(matches!(err, LabError::DeviceCrashed { .. }));
        // Still inside the window: rejected again.
        assert!(lab.apply(&open).is_err());
        // Wait out the downtime on the virtual clock: recovered.
        lab.advance_clock(5.0);
        lab.apply(&open).unwrap();
        assert_eq!(lab.fault_stats().crashes, 1);
        assert!(lab.fault_stats().crash_rejections >= 1);
    }

    #[test]
    fn armed_lab_latency_spike_costs_time() {
        use crate::faults::{FaultKind, FaultPlan, FaultSchedule};
        let baseline = {
            let mut lab = small_lab();
            lab.apply(&mv(Vec3::new(0.537, 0.018, 0.2))).unwrap();
            lab.clock().now_s()
        };
        let mut lab = small_lab();
        lab.arm_faults(
            FaultPlan::seeded(3)
                .with(
                    FaultKind::LatencySpike { seconds: 30.0 },
                    FaultSchedule::AtSteps(vec![0]),
                )
                .session(),
        );
        lab.apply(&mv(Vec3::new(0.537, 0.018, 0.2))).unwrap();
        let spiked = lab.clock().now_s();
        assert!(
            (spiked - baseline - 30.0).abs() < 1e-9,
            "spike adds exactly its latency: {spiked} vs {baseline}"
        );
        assert_eq!(lab.fault_stats().latency_spikes, 1);
    }
}
