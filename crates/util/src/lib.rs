//! Dependency-free utility substrate for the RABIT workspace.
//!
//! The deployment environments RABIT targets (air-gapped lab controllers,
//! hermetic CI) cannot reach a package registry, so everything the
//! workspace needs beyond `std` lives here: a small, fast, seeded PRNG
//! ([`rng::Rng`]), a JSON value/parser/printer ([`json::Json`]) used
//! for configuration files, trace serialisation, and benchmark reports,
//! and the bounded ring queue + parking primitives ([`ring`]) the rule
//! service's sharded broker is built on.

pub mod json;
pub mod ring;
pub mod rng;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use ring::{Parker, RingBuffer};
pub use rng::Rng;
