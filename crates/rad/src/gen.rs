//! Synthetic Robot Arm Dataset generation.
//!
//! The real RAD contains "three months of command trace data captured in
//! the Hein Lab" by RATracer. This generator produces a synthetic corpus
//! with the same shape: many sessions of parameter-randomised solubility
//! style workflows, each serialised in the shared [`Trace`] format. The
//! corpus embodies the implicit conventions the paper mined from RAD —
//! device doors are opened before arms enter them, solids are added
//! before liquids, devices run with doors closed — so the miner
//! (`rabit-rad::mine`) has real structure to recover.
//!
//! # Streaming
//!
//! Production-scale corpora (ROADMAP item 4 targets 100M+ commands)
//! never fit in memory as a `Vec<Trace>`. [`TraceStream`] is the
//! constant-memory path: an iterator that generates one session per
//! `next()` call from the seeded RNG, so the resident set is one session
//! (~30 events) no matter how many sessions the stream covers.
//! [`generate_corpus`] is a thin `collect()` adapter over it — the
//! streaming-equivalence suite proves the two bit-identical.
//!
//! # Drift
//!
//! Real labs change their conventions. [`RadGenParams::with_drift_at`]
//! splits the stream at a session index: sessions before the boundary
//! follow the classic Hein conventions (dose with the door **closed**),
//! sessions at or after it follow a drifted convention (dose with the
//! door **open**) — the signal the online miner's decayed re-scoring
//! must pick up as support collapse plus new-pattern emergence. Sessions
//! before the boundary are bit-identical to a drift-free stream with the
//! same seed.

use rabit_devices::{ActionKind, Command, DeviceId};
use rabit_geometry::Vec3;
use rabit_tracer::{Trace, TraceEvent, TraceOutcome};
use rabit_util::Rng;

/// Corpus generation parameters.
///
/// Construct with the `with_*` builders (mirroring `RabitBuilder`) or
/// struct-update syntax over [`RadGenParams::default`]:
///
/// ```
/// use rabit_rad::RadGenParams;
///
/// let params = RadGenParams::new()
///     .with_sessions(500)
///     .with_seed(11)
///     .with_noise_rate(0.1)
///     .with_drift_at(250);
/// assert_eq!(params.sessions, 500);
/// assert_eq!(params.drift_at, Some(250));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadGenParams {
    /// Number of experiment sessions (the paper's corpus covers ~3 months
    /// of lab work; a session is one workflow run).
    pub sessions: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a session deviates from convention (sloppy but
    /// harmless operator behaviour that the miner must tolerate, e.g.
    /// leaving the door open while idle).
    pub noise_rate: f64,
    /// Session index at which the lab's conventions drift (dosing flips
    /// from door-closed to door-open). `None` — the default — keeps one
    /// convention for the whole corpus.
    pub drift_at: Option<usize>,
}

impl Default for RadGenParams {
    fn default() -> Self {
        RadGenParams {
            sessions: 200,
            seed: 7,
            noise_rate: 0.05,
            drift_at: None,
        }
    }
}

impl RadGenParams {
    /// The default parameter set (200 sessions, seed 7, 5% noise, no
    /// drift) as a builder starting point.
    pub fn new() -> Self {
        RadGenParams::default()
    }

    /// Sets the number of sessions.
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the convention-deviation probability.
    pub fn with_noise_rate(mut self, noise_rate: f64) -> Self {
        self.noise_rate = noise_rate;
        self
    }

    /// Makes lab conventions drift at `session` (see the module docs).
    pub fn with_drift_at(mut self, session: usize) -> Self {
        self.drift_at = Some(session);
        self
    }
}

/// A lazy, seeded session stream: the constant-memory way to produce a
/// RAD corpus.
///
/// Yields the exact sessions [`generate_corpus`] would collect, one
/// [`Trace`] per `next()`, holding only the RNG cursor between calls.
/// Feed it straight into an
/// [`OnlineMiner`](crate::OnlineMiner::observe_trace) and the whole
/// pipeline — generation plus mining — runs at memory `O(rules)` +
/// one session.
#[derive(Debug, Clone)]
pub struct TraceStream {
    rng: Rng,
    next_session: usize,
    sessions: usize,
    noise_rate: f64,
    drift_at: Option<usize>,
}

impl TraceStream {
    /// A stream over `params.sessions` seeded sessions.
    pub fn new(params: &RadGenParams) -> Self {
        TraceStream {
            rng: Rng::seed_from_u64(params.seed),
            next_session: 0,
            sessions: params.sessions,
            noise_rate: params.noise_rate,
            drift_at: params.drift_at,
        }
    }

    /// Sessions not yet yielded.
    pub fn remaining(&self) -> usize {
        self.sessions - self.next_session
    }
}

impl Iterator for TraceStream {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        if self.next_session >= self.sessions {
            return None;
        }
        let index = self.next_session;
        self.next_session += 1;
        let drifted = self.drift_at.is_some_and(|at| index >= at);
        Some(generate_session(
            index,
            &mut self.rng,
            self.noise_rate,
            drifted,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for TraceStream {}

/// Generates the corpus: one [`Trace`] per session.
///
/// This is the collect-adapter over [`TraceStream`] — it materialises
/// the whole corpus and costs memory `O(sessions)`. Prefer the stream
/// for anything larger than a few thousand sessions.
pub fn generate_corpus(params: &RadGenParams) -> Vec<Trace> {
    TraceStream::new(params).collect()
}

/// One randomized solubility-style session. `drifted` selects the lab's
/// dosing convention: `false` = classic Hein (door closed while dosing),
/// `true` = the post-drift convention (door open while dosing). Both
/// draw the same number of convention RNG samples, so the pre-drift
/// prefix of a drifted stream is bit-identical to an undrifted one.
fn generate_session(index: usize, rng: &mut Rng, noise_rate: f64, drifted: bool) -> Trace {
    let vial: DeviceId = format!("vial_{}", rng.random_range(0..6)).into();
    let amount = rng.random_range(2.0..9.0f64);
    let solvent = rng.random_range(1.0..4.0f64);
    let temp = rng.random_range(40.0..90.0f64);
    let iterations = rng.random_range(1..4usize);

    let mut commands: Vec<Command> = Vec::new();
    let arm = DeviceId::new("ur3e");
    let doser = DeviceId::new("dosing_device");
    let hotplate = DeviceId::new("hotplate");
    let pump = DeviceId::new("syringe_pump");

    let grid_pos = Vec3::new(0.35, -0.05, 0.17);
    let safe = Vec3::new(0.35, -0.05, 0.28);

    commands.push(Command::new(arm.clone(), ActionKind::MoveHome));
    commands.push(Command::new(vial.clone(), ActionKind::Decap));

    // Solid dosing idiom: open door → enter → place → exit → close →
    // dose → open → enter → pick → exit → close.
    commands.push(Command::new(
        doser.clone(),
        ActionKind::SetDoor { open: true },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveToLocation { target: safe },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveToLocation { target: grid_pos },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PickObject {
            object: vial.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveInsideDevice {
            device: doser.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PlaceObject {
            object: vial.clone(),
            into: Some(doser.clone()),
        },
    ));
    commands.push(Command::new(arm.clone(), ActionKind::MoveOutOfDevice));
    // The dosing convention. Classic lab: close the door before dosing
    // (sloppy operators sometimes dose with it open — it "worked anyway"
    // in the lab, but the convention is what the miner must recover).
    // Drifted lab: dose with the door open (old habits occasionally
    // close it — the noise is now the *previous* convention).
    let closed_for_dose = if drifted {
        rng.random_bool(noise_rate)
    } else {
        !rng.random_bool(noise_rate)
    };
    if closed_for_dose {
        commands.push(Command::new(
            doser.clone(),
            ActionKind::SetDoor { open: false },
        ));
    }
    commands.push(Command::new(
        doser.clone(),
        ActionKind::DoseSolid {
            amount_mg: amount,
            into: vial.clone(),
        },
    ));
    if !drifted || closed_for_dose {
        // Classic sessions always re-open (even the sloppy ones that
        // never closed — the workflow template does); drifted sessions
        // only need to when an old-habit close happened.
        commands.push(Command::new(
            doser.clone(),
            ActionKind::SetDoor { open: true },
        ));
    }
    commands.push(Command::new(
        arm.clone(),
        ActionKind::MoveInsideDevice {
            device: doser.clone(),
        },
    ));
    commands.push(Command::new(
        arm.clone(),
        ActionKind::PickObject {
            object: vial.clone(),
        },
    ));
    commands.push(Command::new(arm.clone(), ActionKind::MoveOutOfDevice));
    // Classic operators close the door when done (sloppy ones sometimes
    // don't); the drifted lab leaves it open (old habits close it).
    let closed_after = if drifted {
        rng.random_bool(noise_rate)
    } else {
        !rng.random_bool(noise_rate)
    };
    if closed_after {
        commands.push(Command::new(
            doser.clone(),
            ActionKind::SetDoor { open: false },
        ));
    }

    // Liquid after solid (the Hein convention mined from RAD).
    commands.push(Command::new(
        pump.clone(),
        ActionKind::DoseLiquid {
            volume_ml: solvent,
            into: vial.clone(),
        },
    ));

    for _ in 0..iterations {
        // Stir cycle.
        commands.push(Command::new(
            arm.clone(),
            ActionKind::PlaceObject {
                object: vial.clone(),
                into: Some(hotplate.clone()),
            },
        ));
        commands.push(Command::new(
            hotplate.clone(),
            ActionKind::StartAction { value: temp },
        ));
        commands.push(Command::new(hotplate.clone(), ActionKind::StopAction));
        commands.push(Command::new(
            arm.clone(),
            ActionKind::PickObject {
                object: vial.clone(),
            },
        ));
        commands.push(Command::new(
            pump.clone(),
            ActionKind::DoseLiquid {
                volume_ml: 1.0,
                into: vial.clone(),
            },
        ));
    }

    commands.push(Command::new(
        arm.clone(),
        ActionKind::PlaceObject {
            object: vial.clone(),
            into: None,
        },
    ));
    commands.push(Command::new(vial.clone(), ActionKind::Cap));
    commands.push(Command::new(arm, ActionKind::MoveToSleep));

    // Stamp timestamps: production-ish pacing with jitter.
    let mut trace = Trace::new(format!("rad_session_{index:04}"));
    let mut t = 0.0;
    for (seq, command) in commands.into_iter().enumerate() {
        t += rng.random_range(0.5..3.5);
        trace.record(TraceEvent {
            seq,
            time_s: t,
            command,
            outcome: TraceOutcome::Forwarded,
        });
    }
    trace
}

/// A lazy stream of lab-captured sessions: one testbed workflow is
/// *executed* per `next()` call through a pass-through RATracer, so each
/// yielded [`Trace`] carries genuinely executed command sequences and
/// timestamps. [`generate_lab_corpus`] is its collect-adapter.
#[derive(Debug)]
pub struct LabTraceStream {
    rng: Rng,
    next_session: usize,
    sessions: usize,
}

impl LabTraceStream {
    /// A stream over `sessions` seeded testbed executions.
    pub fn new(sessions: usize, seed: u64) -> Self {
        LabTraceStream {
            rng: Rng::seed_from_u64(seed),
            next_session: 0,
            sessions,
        }
    }
}

impl Iterator for LabTraceStream {
    type Item = Trace;

    fn next(&mut self) -> Option<Trace> {
        use rabit_tracer::Tracer;

        if self.next_session >= self.sessions {
            return None;
        }
        let i = self.next_session;
        self.next_session += 1;

        let mut tb = rabit_testbed::Testbed::new();
        let loc = tb.locations;
        let grid = loc.grid_nw_viperx;
        let dose_mg = self.rng.random_range(2.0..8.0f64);
        let mut wf = rabit_tracer::Workflow::new(format!("lab_session_{i:04}"))
            .go_to_sleep("ned2")
            .set_door("dosing_device", true)
            .decap("vial")
            .go_home("viperx")
            .move_to("viperx", grid.pickup_safe_height)
            .pick_up("viperx", "vial", grid.pickup)
            .move_to("viperx", grid.pickup_safe_height)
            .move_to("viperx", loc.dosing_viperx.approach)
            .move_inside("viperx", "dosing_device")
            .then(Command::new(
                "viperx",
                ActionKind::PlaceObject {
                    object: "vial".into(),
                    into: Some("dosing_device".into()),
                },
            ))
            .move_out("viperx")
            .set_door("dosing_device", false)
            .dose_solid("dosing_device", dose_mg, "vial")
            .set_door("dosing_device", true)
            .move_to("viperx", loc.dosing_viperx.approach)
            .move_inside("viperx", "dosing_device")
            .then(Command::new(
                "viperx",
                ActionKind::PickObject {
                    object: "vial".into(),
                },
            ))
            .move_out("viperx")
            .move_to("viperx", grid.pickup_safe_height)
            .place_at("viperx", "vial", grid.pickup)
            .move_to("viperx", grid.pickup_safe_height)
            .set_door("dosing_device", false);
        // Some sessions add solvent after the solid (the convention).
        if self.rng.random_bool(0.7) {
            wf = wf.dose_liquid("syringe_pump", self.rng.random_range(1.0..4.0f64), "vial");
        }
        wf = wf.cap("vial").go_home("viperx").go_to_sleep("viperx");
        let report = Tracer::pass_through(&mut tb.lab).run(&wf);
        assert!(report.completed(), "lab session must execute cleanly");
        Some(report.trace)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sessions - self.next_session;
        (left, Some(left))
    }
}

impl ExactSizeIterator for LabTraceStream {}

/// Generates a corpus the way the real RAD was captured: by *running*
/// randomized solubility workflows on the (simulated) testbed with
/// RATracer in pass-through mode. Unlike [`generate_corpus`]'s purely
/// template-based traces, these sessions carry the timestamps and command
/// sequences of genuinely executed lab work.
///
/// Collect-adapter over [`LabTraceStream`]; memory `O(sessions)`.
pub fn generate_lab_corpus(sessions: usize, seed: u64) -> Vec<Trace> {
    LabTraceStream::new(sessions, seed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_is_deterministic() {
        let p = RadGenParams {
            sessions: 10,
            ..RadGenParams::default()
        };
        let a = generate_corpus(&p);
        let b = generate_corpus(&p);
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "same seed, same corpus");
        let c = generate_corpus(&RadGenParams { seed: 8, ..p });
        assert_ne!(a, c, "different seed, different corpus");
    }

    #[test]
    fn stream_is_lazy_and_sized() {
        let p = RadGenParams::new().with_sessions(12);
        let mut stream = TraceStream::new(&p);
        assert_eq!(stream.len(), 12);
        let first = stream.next().unwrap();
        assert_eq!(first.workflow, "rad_session_0000");
        assert_eq!(stream.remaining(), 11);
        assert_eq!(stream.count(), 11, "iterator drains the rest");
    }

    #[test]
    fn drifted_stream_shares_the_pre_drift_prefix() {
        let base = RadGenParams::new().with_sessions(20).with_seed(3);
        let plain = generate_corpus(&base);
        let drifted = generate_corpus(&base.with_drift_at(12));
        assert_eq!(plain[..12], drifted[..12], "prefix is bit-identical");
        assert_ne!(plain[12..], drifted[12..], "suffix follows the drift");
    }

    #[test]
    fn drifted_sessions_dose_with_the_door_open() {
        let corpus = generate_corpus(
            &RadGenParams::new()
                .with_sessions(40)
                .with_noise_rate(0.0)
                .with_drift_at(20),
        );
        for (i, trace) in corpus.iter().enumerate() {
            let mut door_open = false;
            for cmd in trace.executed_commands() {
                match cmd.to_string().as_str() {
                    "dosing_device.open_door" => door_open = true,
                    "dosing_device.close_door" => door_open = false,
                    s if s.contains("dose_solid") => {
                        assert_eq!(
                            door_open,
                            i >= 20,
                            "session {i}: dosing door state must follow the convention"
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn sessions_follow_the_door_convention() {
        // In every session — drifted or not — each move_robot_inside is
        // preceded by an open_door with no intervening close_door.
        for drift_at in [None, Some(15)] {
            let corpus = generate_corpus(&RadGenParams {
                sessions: 30,
                drift_at,
                ..RadGenParams::default()
            });
            for trace in &corpus {
                let mut door_open = false;
                for cmd in trace.executed_commands() {
                    match cmd.to_string().as_str() {
                        "dosing_device.open_door" => door_open = true,
                        "dosing_device.close_door" => door_open = false,
                        s if s.contains("move_robot_inside(dosing_device)") => {
                            assert!(door_open, "{}: entered through closed door", trace.workflow);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn solids_precede_liquids_per_vial() {
        let corpus = generate_corpus(&RadGenParams {
            sessions: 30,
            ..RadGenParams::default()
        });
        for trace in &corpus {
            let cmds: Vec<String> = trace.executed_commands().map(ToString::to_string).collect();
            let first_solid = cmds.iter().position(|c| c.contains("dose_solid"));
            let first_liquid = cmds.iter().position(|c| c.contains("dose_liquid"));
            if let (Some(s), Some(l)) = (first_solid, first_liquid) {
                assert!(s < l, "{}: liquid before solid", trace.workflow);
            }
        }
    }

    #[test]
    fn lab_captured_corpus_executes_and_mines() {
        // The RATracer→RAD pipeline end to end: sessions captured from
        // real (simulated) runs, then mined.
        let corpus = generate_lab_corpus(40, 11);
        assert_eq!(corpus.len(), 40);
        for trace in &corpus {
            assert!(trace.len() > 15, "{} too short", trace.workflow);
            // Executed traces carry real, increasing lab timestamps.
            for w in trace.events.windows(2) {
                assert!(w[1].time_s >= w[0].time_s);
            }
        }
        let mined = crate::mine::mine(&corpus, &crate::mine::MineParams::default());
        let names: Vec<&str> = mined.iter().map(|m| m.name()).collect();
        assert!(
            names.contains(&"move_robot_inside_requires_door_open=true"),
            "door rule must be recoverable from captured sessions: {names:?}"
        );
        assert!(names.contains(&"solid_before_liquid"), "{names:?}");
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let corpus = generate_corpus(&RadGenParams {
            sessions: 5,
            ..RadGenParams::default()
        });
        for trace in &corpus {
            for w in trace.events.windows(2) {
                assert!(w[1].time_s > w[0].time_s);
            }
        }
    }
}
