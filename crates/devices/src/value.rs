//! State variables: keys and values.

use crate::id::DeviceId;
use rabit_geometry::{Aabb, Vec3};
use std::fmt;

/// The state-variable vocabulary shared by all device types.
///
/// These correspond to the paper's state variables: `deviceDoorStatus`
/// maps to [`StateKey::DoorOpen`], `robotArmHolding` to
/// [`StateKey::Holding`], `robotArmInside[robot][device]` to
/// [`StateKey::InsideOf`] on the robot, and so on.
///
/// Keys serialize as their paper-notation strings (the [`fmt::Display`]
/// form), so state snapshots and traces are plain JSON objects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateKey {
    /// Whether the device's door is open (dosing systems / action devices).
    DoorOpen,
    /// The object a robot arm's gripper is holding, if any.
    Holding,
    /// The device a robot arm is currently (partially) inside, if any.
    InsideOf,
    /// Whether a robot arm's gripper is open.
    GripperOpen,
    /// Current position of a movable device/object (tool position for
    /// arms, resting position for containers).
    Location,
    /// Whether a robot arm is parked at its sleep position (used by the
    /// time-multiplexing preconditions).
    AtSleep,
    /// Whether an action device is currently performing its action.
    ActionActive,
    /// Current action value (temperature in °C, stirring speed in rpm, …).
    ActionValue,
    /// Firmware threshold on the action value (paper rule III-11).
    ActionThreshold,
    /// The container currently placed inside this dosing/action device.
    ContainedObject,
    /// Milligrams of solid inside a container.
    SolidMg,
    /// Millilitres of liquid inside a container.
    LiquidMl,
    /// Liquid capacity of a container (mL).
    CapacityMl,
    /// Solid capacity of a container (mg).
    CapacityMg,
    /// Whether a container has its stopper on.
    HasStopper,
    /// Whether the centrifuge's red alignment dot faces North
    /// (Hein custom rule IV-3).
    RedDotNorth,
    /// The stationary 3D cuboid this device occupies on the deck.
    Footprint,
    /// A lab-defined state variable.
    Custom(String),
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateKey::DoorOpen => f.write_str("deviceDoorStatus"),
            StateKey::Holding => f.write_str("robotArmHolding"),
            StateKey::InsideOf => f.write_str("robotArmInside"),
            StateKey::GripperOpen => f.write_str("gripperOpen"),
            StateKey::Location => f.write_str("location"),
            StateKey::AtSleep => f.write_str("atSleep"),
            StateKey::ActionActive => f.write_str("actionActive"),
            StateKey::ActionValue => f.write_str("actionValue"),
            StateKey::ActionThreshold => f.write_str("actionThreshold"),
            StateKey::ContainedObject => f.write_str("containedObject"),
            StateKey::SolidMg => f.write_str("solidMg"),
            StateKey::LiquidMl => f.write_str("liquidMl"),
            StateKey::CapacityMl => f.write_str("capacityMl"),
            StateKey::CapacityMg => f.write_str("capacityMg"),
            StateKey::HasStopper => f.write_str("hasStopper"),
            StateKey::RedDotNorth => f.write_str("redDotNorth"),
            StateKey::Footprint => f.write_str("footprint"),
            StateKey::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

impl std::str::FromStr for StateKey {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "deviceDoorStatus" => StateKey::DoorOpen,
            "robotArmHolding" => StateKey::Holding,
            "robotArmInside" => StateKey::InsideOf,
            "gripperOpen" => StateKey::GripperOpen,
            "location" => StateKey::Location,
            "atSleep" => StateKey::AtSleep,
            "actionActive" => StateKey::ActionActive,
            "actionValue" => StateKey::ActionValue,
            "actionThreshold" => StateKey::ActionThreshold,
            "containedObject" => StateKey::ContainedObject,
            "solidMg" => StateKey::SolidMg,
            "liquidMl" => StateKey::LiquidMl,
            "capacityMl" => StateKey::CapacityMl,
            "capacityMg" => StateKey::CapacityMg,
            "hasStopper" => StateKey::HasStopper,
            "redDotNorth" => StateKey::RedDotNorth,
            "footprint" => StateKey::Footprint,
            other => StateKey::Custom(other.strip_prefix("custom:").unwrap_or(other).to_string()),
        })
    }
}

impl rabit_util::ToJson for StateKey {
    fn to_json(&self) -> rabit_util::Json {
        rabit_util::Json::Str(self.to_string())
    }
}

impl rabit_util::FromJson for StateKey {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        let s = String::from_json(json)?;
        Ok(s.parse().expect("StateKey parsing is infallible"))
    }
}

impl rabit_util::ToJson for Value {
    fn to_json(&self) -> rabit_util::Json {
        use rabit_util::Json;
        match self {
            Value::Bool(b) => Json::obj([("Bool", Json::Bool(*b))]),
            Value::Number(n) => Json::obj([("Number", Json::Num(*n))]),
            Value::Position(p) => Json::obj([("Position", p.to_json())]),
            Value::Id(id) => Json::obj([(
                "Id",
                match id {
                    Some(d) => d.to_json(),
                    None => Json::Null,
                },
            )]),
            Value::Box3(b) => Json::obj([("Box3", b.to_json())]),
            Value::Text(s) => Json::obj([("Text", Json::Str(s.clone()))]),
        }
    }
}

impl rabit_util::FromJson for Value {
    fn from_json(json: &rabit_util::Json) -> Result<Self, rabit_util::JsonError> {
        use rabit_util::{FromJson, JsonError};
        let pairs = json
            .as_obj()
            .ok_or_else(|| JsonError::decode(format!("expected value object, got {json}")))?;
        let (tag, payload) = pairs
            .first()
            .ok_or_else(|| JsonError::decode("empty value object"))?;
        Ok(match tag.as_str() {
            "Bool" => Value::Bool(bool::from_json(payload)?),
            "Number" => Value::Number(f64::from_json(payload)?),
            "Position" => Value::Position(FromJson::from_json(payload)?),
            "Id" => Value::Id(Option::from_json(payload)?),
            "Box3" => Value::Box3(FromJson::from_json(payload)?),
            "Text" => Value::Text(String::from_json(payload)?),
            other => {
                return Err(JsonError::decode(format!(
                    "unknown value variant '{other}'"
                )))
            }
        })
    }
}

/// A state-variable value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean flag (door open, stopper on, …).
    Bool(bool),
    /// Scalar quantity (temperature, volume, …).
    Number(f64),
    /// A 3D position.
    Position(Vec3),
    /// An optional reference to another device (held object, containing
    /// device, …). `Id(None)` means "none" (e.g. not holding anything).
    Id(Option<DeviceId>),
    /// A stationary cuboid volume.
    Box3(Aabb),
    /// Free-form text.
    Text(String),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The position payload, if this is a `Position`.
    pub fn as_position(&self) -> Option<Vec3> {
        match self {
            Value::Position(p) => Some(*p),
            _ => None,
        }
    }

    /// The device-reference payload, if this is an `Id`.
    pub fn as_id(&self) -> Option<Option<&DeviceId>> {
        match self {
            Value::Id(id) => Some(id.as_ref()),
            _ => None,
        }
    }

    /// The cuboid payload, if this is a `Box3`.
    pub fn as_box(&self) -> Option<&Aabb> {
        match self {
            Value::Box3(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate equality: numbers and positions compare within `tol`,
    /// everything else exactly. Used by the malfunction check
    /// (`S_actual ≠ S_expected`) so that sensor jitter below the tolerance
    /// does not raise false "device malfunction" alarms.
    pub fn approx_eq(&self, other: &Value, tol: f64) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => (a - b).abs() <= tol,
            (Value::Position(a), Value::Position(b)) => a.distance(*b) <= tol,
            (a, b) => a == b,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<Vec3> for Value {
    fn from(p: Vec3) -> Self {
        Value::Position(p)
    }
}

impl From<Option<DeviceId>> for Value {
    fn from(id: Option<DeviceId>) -> Self {
        Value::Id(id)
    }
}

impl From<Aabb> for Value {
    fn from(b: Aabb) -> Self {
        Value::Box3(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::Position(p) => write!(f, "{p}"),
            Value::Id(Some(id)) => write!(f, "{id}"),
            Value::Id(None) => f.write_str("none"),
            Value::Box3(b) => write!(f, "box[{} … {}]", b.min(), b.max()),
            Value::Text(t) => f.write_str(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_number(), None);
        assert_eq!(Value::Number(2.5).as_number(), Some(2.5));
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Value::Position(p).as_position(), Some(p));
        let id = DeviceId::new("vial");
        assert_eq!(Value::Id(Some(id.clone())).as_id(), Some(Some(&id)));
        assert_eq!(Value::Id(None).as_id(), Some(None));
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(Value::Box3(b).as_box(), Some(&b));
        assert_eq!(Value::Text("x".into()).as_bool(), None);
    }

    #[test]
    fn approx_equality_tolerates_jitter() {
        assert!(Value::Number(25.0).approx_eq(&Value::Number(25.004), 0.01));
        assert!(!Value::Number(25.0).approx_eq(&Value::Number(26.0), 0.01));
        let a = Value::Position(Vec3::ZERO);
        let b = Value::Position(Vec3::new(0.0005, 0.0, 0.0));
        assert!(a.approx_eq(&b, 0.001));
        assert!(!a.approx_eq(&b, 0.0001));
        // Non-numeric values compare exactly.
        assert!(Value::Bool(true).approx_eq(&Value::Bool(true), 0.0));
        assert!(!Value::Bool(true).approx_eq(&Value::Bool(false), 100.0));
        // Cross-variant comparison is never equal.
        assert!(!Value::Number(1.0).approx_eq(&Value::Bool(true), 1.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3.0), Value::Number(3.0));
        assert_eq!(Value::from(Vec3::X), Value::Position(Vec3::X));
        assert_eq!(Value::from(None::<DeviceId>), Value::Id(None));
    }

    #[test]
    fn display_forms() {
        assert_eq!(StateKey::DoorOpen.to_string(), "deviceDoorStatus");
        assert_eq!(StateKey::Holding.to_string(), "robotArmHolding");
        assert_eq!(StateKey::Custom("rpm2".into()).to_string(), "custom:rpm2");
        assert_eq!(Value::Id(None).to_string(), "none");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn keys_roundtrip_through_their_display_strings() {
        let keys = [
            StateKey::DoorOpen,
            StateKey::Holding,
            StateKey::InsideOf,
            StateKey::GripperOpen,
            StateKey::Location,
            StateKey::AtSleep,
            StateKey::ActionActive,
            StateKey::ActionValue,
            StateKey::ActionThreshold,
            StateKey::ContainedObject,
            StateKey::SolidMg,
            StateKey::LiquidMl,
            StateKey::CapacityMl,
            StateKey::CapacityMg,
            StateKey::HasStopper,
            StateKey::RedDotNorth,
            StateKey::Footprint,
            StateKey::Custom("slot:NW".into()),
        ];
        for key in keys {
            let s = key.to_string();
            let back: StateKey = s.parse().unwrap();
            assert_eq!(back, key, "via '{s}'");
            // And through JSON, as a string.
            use rabit_util::{FromJson, Json, ToJson};
            let json = key.to_json().to_compact();
            let back = StateKey::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, key);
        }
    }

    #[test]
    fn keys_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(StateKey::DoorOpen);
        set.insert(StateKey::Holding);
        set.insert(StateKey::DoorOpen);
        assert_eq!(set.len(), 2);
    }
}
