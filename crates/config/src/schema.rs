//! The JSON configuration schema.
//!
//! "The lab researcher configures RABIT for their lab by instantiating
//! their devices in the JSON files that we provide. They must categorize
//! each device into its device type and enter its properties, including
//! the class name that provides the device's APIs and additional
//! properties (such as the presence and position of a door)." (§II-C)

use rabit_geometry::{Aabb, Vec3};
use rabit_util::json::{field, field_or_default};
use rabit_util::{FromJson, Json, JsonError, ToJson};

/// A 3D point in configuration form.
pub type Point = [f64; 3];

/// An axis-aligned box in configuration form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxConfig {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl BoxConfig {
    /// Converts to a geometry box (corners are normalised).
    pub fn to_aabb(self) -> Aabb {
        Aabb::new(Vec3::from_array(self.min), Vec3::from_array(self.max))
    }
}

/// Device connection parameters ("RABIT also maintains a list of device
/// connection parameters … to fetch the state of all devices", §II-C).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConnectionConfig {
    /// Transport address (serial port, IP:port, …).
    pub address: String,
    /// Protocol name.
    pub protocol: String,
}

/// One device entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Unique device id.
    pub id: String,
    /// Taxonomy type: `"container"`, `"robot_arm"`, `"dosing_system"`,
    /// `"action_device"`, or `"custom:<name>"`.
    pub device_type: String,
    /// The Python class exposing the device's APIs (documentation field,
    /// mirrored from the paper's configuration).
    pub class_name: Option<String>,
    /// Whether the device has a door.
    pub has_door: bool,
    /// Free-form tags targeted by custom rules.
    pub tags: Vec<String>,
    /// Firmware threshold on the action value.
    pub action_threshold: Option<f64>,
    /// Whether the action device hosts a container while running (default
    /// true; spray nozzles and X-ray sources set false — rules III-5/6
    /// only bind hosting devices).
    pub hosts_container: bool,
    /// Stationary footprint cuboid.
    pub footprint: Option<BoxConfig>,
    /// Robot arms: home tool position.
    pub home_location: Option<Point>,
    /// Robot arms: sleep tool position.
    pub sleep_location: Option<Point>,
    /// Robot arms: the cuboid a sleeping arm occupies.
    pub sleep_volume: Option<BoxConfig>,
    /// Robot arms: allowed region under space multiplexing.
    pub allowed_region: Option<BoxConfig>,
    /// Labels of the commands that execute actions on this device.
    pub action_commands: Vec<String>,
    /// Labels of the commands that retrieve the device's state.
    pub status_commands: Vec<String>,
    /// How RABIT talks to the device.
    pub connection: Option<ConnectionConfig>,
}

impl ToJson for BoxConfig {
    fn to_json(&self) -> Json {
        Json::obj([("min", self.min.to_json()), ("max", self.max.to_json())])
    }
}

impl FromJson for BoxConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(BoxConfig {
            min: field(json, "min")?,
            max: field(json, "max")?,
        })
    }
}

impl ToJson for ConnectionConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("address", Json::Str(self.address.clone())),
            ("protocol", Json::Str(self.protocol.clone())),
        ])
    }
}

impl FromJson for ConnectionConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ConnectionConfig {
            address: field_or_default(json, "address")?,
            protocol: field_or_default(json, "protocol")?,
        })
    }
}

impl ToJson for DeviceConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("type", Json::Str(self.device_type.clone())),
            ("class_name", self.class_name.to_json()),
            ("has_door", Json::Bool(self.has_door)),
            ("tags", self.tags.to_json()),
            ("action_threshold", self.action_threshold.to_json()),
            ("hosts_container", Json::Bool(self.hosts_container)),
            ("footprint", self.footprint.to_json()),
            ("home_location", self.home_location.to_json()),
            ("sleep_location", self.sleep_location.to_json()),
            ("sleep_volume", self.sleep_volume.to_json()),
            ("allowed_region", self.allowed_region.to_json()),
            ("action_commands", self.action_commands.to_json()),
            ("status_commands", self.status_commands.to_json()),
            ("connection", self.connection.to_json()),
        ])
    }
}

impl FromJson for DeviceConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // Unknown fields are tolerated (the schema validator flags them);
        // a wrong-typed known field is an error.
        Ok(DeviceConfig {
            id: field(json, "id")?,
            device_type: field(json, "type")?,
            class_name: field_or_default(json, "class_name")?,
            has_door: field_or_default(json, "has_door")?,
            tags: field_or_default(json, "tags")?,
            action_threshold: field_or_default(json, "action_threshold")?,
            hosts_container: match json.get("hosts_container") {
                None | Some(Json::Null) => true,
                Some(v) => bool::from_json(v)
                    .map_err(|e| JsonError::decode(format!("field 'hosts_container': {e}")))?,
            },
            footprint: field_or_default(json, "footprint")?,
            home_location: field_or_default(json, "home_location")?,
            sleep_location: field_or_default(json, "sleep_location")?,
            sleep_volume: field_or_default(json, "sleep_volume")?,
            allowed_region: field_or_default(json, "allowed_region")?,
            action_commands: field_or_default(json, "action_commands")?,
            status_commands: field_or_default(json, "status_commands")?,
            connection: field_or_default(json, "connection")?,
        })
    }
}

impl ToJson for CustomRuleConfig {
    fn to_json(&self) -> Json {
        Json::obj([("kind", Json::Str(self.kind.clone()))])
    }
}

impl FromJson for CustomRuleConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CustomRuleConfig {
            kind: field(json, "kind")?,
        })
    }
}

impl ToJson for LabConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lab_name", Json::Str(self.lab_name.clone())),
            ("workspace", self.workspace.to_json()),
            ("devices", self.devices.to_json()),
            ("custom_rules", self.custom_rules.to_json()),
        ])
    }
}

impl FromJson for LabConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LabConfig {
            lab_name: field(json, "lab_name")?,
            workspace: field_or_default(json, "workspace")?,
            devices: field_or_default(json, "devices")?,
            custom_rules: field_or_default(json, "custom_rules")?,
        })
    }
}

/// A custom rule entry. Rules are selected by `kind`, parameterised by
/// tag, matching the crate's custom-rule factories.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomRuleConfig {
    /// Rule kind: `"liquid_after_solid"`,
    /// `"centrifuge_needs_solid_and_liquid"`, `"centrifuge_red_dot_north"`,
    /// `"centrifuge_needs_stopper"`.
    pub kind: String,
}

/// The top-level lab configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct LabConfig {
    /// Lab name (e.g. `"Hein Lab"`).
    pub lab_name: String,
    /// The workspace bounds: every location in the file must fall inside
    /// (the schema guard that would have caught participant P's sign
    /// error, §V-A).
    pub workspace: Option<BoxConfig>,
    /// All devices on the deck.
    pub devices: Vec<DeviceConfig>,
    /// Lab-specific rules.
    pub custom_rules: Vec<CustomRuleConfig>,
}

impl LabConfig {
    /// Parses a configuration from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] (with line/column for syntax errors) on
    /// syntax or schema mismatches — the error class that cost the pilot
    /// study "a few JSON syntax errors".
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        FromJson::from_json(&Json::parse(text)?)
    }

    /// Serialises to pretty-printed JSON.
    pub fn to_json_text(&self) -> String {
        ToJson::to_json(self).to_pretty()
    }

    /// Looks up a device entry by id.
    pub fn device(&self, id: &str) -> Option<&DeviceConfig> {
        self.devices.iter().find(|d| d.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_json() -> String {
        r#"{
            "lab_name": "Test Lab",
            "devices": [
                {"id": "arm", "type": "robot_arm",
                 "home_location": [0.3, 0.0, 0.3],
                 "sleep_location": [0.1, -0.3, 0.2]},
                {"id": "doser", "type": "dosing_system", "has_door": true,
                 "class_name": "DosingDevice",
                 "footprint": {"min": [0.0, 0.3, 0.0], "max": [0.2, 0.5, 0.3]}}
            ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_minimal_config() {
        let cfg = LabConfig::from_json(&minimal_json()).unwrap();
        assert_eq!(cfg.lab_name, "Test Lab");
        assert_eq!(cfg.devices.len(), 2);
        let doser = cfg.device("doser").unwrap();
        assert!(doser.has_door);
        assert_eq!(doser.class_name.as_deref(), Some("DosingDevice"));
        assert!(cfg.device("ghost").is_none());
        assert!(cfg.custom_rules.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let cfg = LabConfig::from_json(&minimal_json()).unwrap();
        let text = cfg.to_json_text();
        let back = LabConfig::from_json(&text).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn syntax_errors_carry_location() {
        // A missing comma — the pilot study's error class.
        let broken = minimal_json().replace("\"type\": \"robot_arm\",", "\"type\": \"robot_arm\"");
        let err = LabConfig::from_json(&broken).unwrap_err();
        assert!(err.line() > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn box_config_converts() {
        let b = BoxConfig {
            min: [1.0, 1.0, 1.0],
            max: [0.0, 0.0, 0.0],
        };
        let aabb = b.to_aabb();
        assert_eq!(aabb.min(), Vec3::ZERO); // normalised
        assert_eq!(aabb.max(), Vec3::splat(1.0));
    }

    #[test]
    fn unknown_fields_are_rejected_loudly_enough() {
        // serde tolerates unknown fields by default; the schema accepts
        // them, but a *wrong-typed* known field errors.
        let bad = minimal_json().replace("[0.3, 0.0, 0.3]", "\"0.3, 0.0, 0.3\"");
        assert!(LabConfig::from_json(&bad).is_err());
    }
}
