//! The Berlinguette Lab: the paper's generalization case study (§V-B).
//!
//! "We visited another self-driving lab — the Berlinguette Lab … Our goal
//! was to evaluate the adaptability of RABIT to this lab, determining if
//! we could categorize the devices in the lab according to the four
//! predefined device types and whether the rules in our rulebase are
//! generalizable to the workflows they run."
//!
//! This module builds that lab as a second full environment and shows the
//! paper's categorization working end to end:
//!
//! * **UR5e** — the "central six-axis robot arm … used for transferring
//!   vials and materials between different stations";
//! * **dosing device with a door** — "similar to that in the Hein Lab"
//!   (dosing system);
//! * **decapper** — "responsible for capping and uncapping vials":
//!   an action device;
//! * **spin coater** — an action device ("starting and stopping
//!   spinning");
//! * **spray station** — a hotplate (action device), an automated syringe
//!   pump (dosing system), and ultrasonic nozzles ("action devices with
//!   spraying and not spraying being their primary actions" — they do not
//!   host containers);
//! * **XRF microscopy** — "a set of multiple action devices" (the X-ray
//!   source and the sample stage);
//! * **proximity sensor** — the "new device class" (§V-B) whose readings
//!   feed the [`human_proximity_rule`], replacing the hard-wired sensors
//!   the lab abandoned over false alarms;
//! * one lab-specific custom rule authored *outside* the core crates
//!   ([`spray_requires_hot_plate_rule`]), demonstrating that adapting
//!   RABIT means "describing only the items specific to that
//!   environment".
//!
//! [`human_proximity_rule`]: rabit_rulebase::extensions::human_proximity_rule

use rabit_core::{Lab, LabDevice, Rabit, RabitConfig};
use rabit_devices::{
    ActionKind, Command, DeviceType, DosingDevice, Grid, Hotplate, LatencyModel, ProximitySensor,
    RobotArm, StateKey, SyringePump, Thermoshaker, Vial,
};
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::presets;
use rabit_rulebase::{extensions, DeviceCatalog, DeviceMeta, Rule, RuleId, Rulebase};
use rabit_sim::{
    shapes::ObstacleShape, shapes::VerticalCylinder, ExtendedSimulator, SimConfig, SimWorld,
};
use rabit_tracer::Workflow;

/// Station and device footprints (UR5e frame, base at the origin).
pub mod footprints {
    use rabit_geometry::{Aabb, Vec3};

    /// The vial rack.
    pub fn rack() -> Aabb {
        Aabb::new(Vec3::new(0.50, -0.10, 0.0), Vec3::new(0.65, 0.05, 0.08))
    }

    /// The dosing device (with door), as in the Hein Lab.
    pub fn dosing_device() -> Aabb {
        Aabb::new(Vec3::new(0.05, 0.45, 0.0), Vec3::new(0.25, 0.62, 0.28))
    }

    /// The decapper.
    pub fn decapper() -> Aabb {
        Aabb::new(Vec3::new(-0.30, 0.30, 0.0), Vec3::new(-0.14, 0.46, 0.20))
    }

    /// The spin coater at the precursor mixing station.
    pub fn spin_coater() -> Aabb {
        Aabb::new(Vec3::new(-0.55, -0.10, 0.0), Vec3::new(-0.35, 0.10, 0.15))
    }

    /// The spray station's hotplate.
    pub fn spray_hotplate() -> Aabb {
        Aabb::new(Vec3::new(0.30, -0.50, 0.0), Vec3::new(0.46, -0.34, 0.06))
    }

    /// The spray station's syringe pump.
    pub fn spray_pump() -> Aabb {
        Aabb::new(Vec3::new(-0.10, -0.62, 0.0), Vec3::new(0.05, -0.47, 0.18))
    }

    /// Ultrasonic nozzle A.
    pub fn nozzle_a() -> Aabb {
        Aabb::new(Vec3::new(0.50, -0.45, 0.0), Vec3::new(0.56, -0.39, 0.25))
    }

    /// Ultrasonic nozzle B.
    pub fn nozzle_b() -> Aabb {
        Aabb::new(Vec3::new(0.58, -0.45, 0.0), Vec3::new(0.64, -0.39, 0.25))
    }

    /// The XRF station (source + stage share one enclosure).
    pub fn xrf() -> Aabb {
        Aabb::new(Vec3::new(0.55, 0.15, 0.0), Vec3::new(0.75, 0.35, 0.30))
    }

    /// The UR5e's sleep cuboid.
    pub fn ur5e_sleep_volume() -> Aabb {
        Aabb::new(Vec3::new(-0.30, -0.30, 0.0), Vec3::new(0.0, -0.02, 0.35))
    }
}

/// Key deck locations.
pub mod locations {
    use rabit_geometry::Vec3;

    /// Rack slot R1 grasp point.
    pub const RACK_R1: Vec3 = Vec3 {
        x: 0.57,
        y: -0.02,
        z: 0.20,
    };
    /// Safe height above R1.
    pub const RACK_R1_SAFE: Vec3 = Vec3 {
        x: 0.57,
        y: -0.02,
        z: 0.35,
    };
    /// Stand-off in front of the dosing device.
    pub const DOSING_APPROACH: Vec3 = Vec3 {
        x: 0.15,
        y: 0.36,
        z: 0.38,
    };
    /// Stand-off beside the decapper.
    pub const DECAPPER_APPROACH: Vec3 = Vec3 {
        x: -0.22,
        y: 0.22,
        z: 0.30,
    };
    /// Stand-off beside the spin coater.
    pub const SPIN_COATER_APPROACH: Vec3 = Vec3 {
        x: -0.30,
        y: 0.0,
        z: 0.30,
    };
    /// Stand-off above the spray hotplate.
    pub const SPRAY_APPROACH: Vec3 = Vec3 {
        x: 0.30,
        y: -0.28,
        z: 0.28,
    };
    /// Stand-off beside the XRF enclosure.
    pub const XRF_APPROACH: Vec3 = Vec3 {
        x: 0.45,
        y: 0.18,
        z: 0.38,
    };
    /// UR5e home tool position (matches the kinematic preset).
    pub const UR5E_HOME: Vec3 = Vec3 {
        x: -0.6450,
        y: -0.1333,
        z: 0.3999,
    };
    /// UR5e sleep tool position (inside the sleep cuboid).
    pub const UR5E_SLEEP: Vec3 = Vec3 {
        x: -0.1776,
        y: -0.1333,
        z: 0.2909,
    };
}

/// The lab-specific custom rule a Berlinguette engineer would add: the
/// ultrasonic nozzles may only spray while the spray hotplate is hot —
/// spraying precursor onto a cold substrate ruins the film.
pub fn spray_requires_hot_plate_rule() -> Rule {
    Rule::new(
        RuleId::Custom("berlinguette:spray_requires_heat".to_string()),
        "Ultrasonic nozzles spray only while the spray hotplate is running",
        |cmd, state, ctx| {
            let ActionKind::StartAction { .. } = &cmd.action else {
                return None;
            };
            if !ctx.catalog.has_tag(&cmd.actor, "nozzle") {
                return None;
            }
            for meta in ctx.catalog.iter() {
                if meta.has_tag("spray_hotplate")
                    && state.get_bool(&meta.id, &StateKey::ActionActive) == Some(true)
                {
                    return None;
                }
            }
            Some(format!(
                "{} asked to spray while the spray hotplate is cold",
                cmd.actor
            ))
        },
    )
}

/// The assembled Berlinguette deck.
pub struct BerlinguetteLab {
    /// The physical environment.
    pub lab: Lab,
    /// Device metadata for the rulebase.
    pub catalog: DeviceCatalog,
}

impl BerlinguetteLab {
    /// Builds the deck with one empty, capped vial in rack slot R1 and a
    /// clear proximity sensor.
    pub fn new() -> Self {
        use locations::*;
        let mut rack = Grid::new(
            "rack",
            footprints::rack(),
            vec![
                ("R1".to_string(), RACK_R1),
                ("R2".to_string(), Vec3::new(0.61, -0.02, 0.20)),
            ],
        );
        rack.occupy("R1", "vial_b".into()).expect("fresh rack slot");

        let mut lab = Lab::new()
            .with_device(
                RobotArm::new("ur5e", UR5E_HOME, UR5E_SLEEP).with_latency(LatencyModel::PRODUCTION),
            )
            .with_device(Vial::new("vial_b", RACK_R1))
            .with_device(rack)
            .with_device(
                DosingDevice::new("dosing_device", footprints::dosing_device())
                    .with_firmware_max_dose(50.0),
            )
            .with_device(SyringePump::new("spray_pump", footprints::spray_pump()))
            // Action devices: the decapper, spin coater, spray hotplate,
            // two nozzles, and the XRF pair. Thermoshaker/Hotplate models
            // provide the generic active/value behaviour.
            .with_device(
                Thermoshaker::new("decapper", footprints::decapper()).with_firmware_limit(10.0),
            )
            .with_device(
                Thermoshaker::new("spin_coater", footprints::spin_coater())
                    .with_firmware_limit(6_000.0),
            )
            .with_device(
                Hotplate::new("spray_hotplate", footprints::spray_hotplate())
                    .with_firmware_limit(300.0),
            )
            .with_device(
                Thermoshaker::new("nozzle_a", footprints::nozzle_a()).with_firmware_limit(120.0),
            )
            .with_device(
                Thermoshaker::new("nozzle_b", footprints::nozzle_b()).with_firmware_limit(120.0),
            )
            .with_device(
                Thermoshaker::new("xrf_source", footprints::xrf()).with_firmware_limit(50.0),
            )
            .with_device(
                Thermoshaker::new(
                    "xrf_stage",
                    Aabb::new(Vec3::new(0.55, 0.15, 0.0), Vec3::new(0.75, 0.35, 0.05)),
                )
                .with_firmware_limit(360.0),
            );
        lab.add_device(LabDevice::Custom(Box::new(ProximitySensor::new(
            "deck_sensor",
            Aabb::new(Vec3::new(-1.2, -1.2, 0.0), Vec3::new(1.2, 1.2, 2.0)),
        ))));
        lab.set_arm_kinematics("ur5e", Vec3::ZERO, presets::ur5e().max_reach());

        let catalog = DeviceCatalog::new()
            .with(
                DeviceMeta::new("ur5e", DeviceType::RobotArm)
                    .with_arm_positions(UR5E_HOME, UR5E_SLEEP)
                    .with_sleep_volume(footprints::ur5e_sleep_volume()),
            )
            .with(DeviceMeta::new("vial_b", DeviceType::Container))
            .with(DeviceMeta::new(
                "rack",
                DeviceType::Custom("grid".to_string()),
            ))
            .with(DeviceMeta::new("dosing_device", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("spray_pump", DeviceType::DosingSystem))
            .with(
                DeviceMeta::new("decapper", DeviceType::ActionDevice)
                    .with_threshold(10.0)
                    .without_container_hosting(),
            )
            .with(DeviceMeta::new("spin_coater", DeviceType::ActionDevice).with_threshold(6_000.0))
            .with(
                DeviceMeta::new("spray_hotplate", DeviceType::ActionDevice)
                    .with_tag("spray_hotplate")
                    .with_threshold(300.0),
            )
            .with(
                DeviceMeta::new("nozzle_a", DeviceType::ActionDevice)
                    .with_tag("nozzle")
                    .with_threshold(120.0)
                    .without_container_hosting(),
            )
            .with(
                DeviceMeta::new("nozzle_b", DeviceType::ActionDevice)
                    .with_tag("nozzle")
                    .with_threshold(120.0)
                    .without_container_hosting(),
            )
            .with(
                DeviceMeta::new("xrf_source", DeviceType::ActionDevice)
                    .with_tag("xrf")
                    .with_threshold(50.0)
                    .without_container_hosting(),
            )
            .with(
                DeviceMeta::new("xrf_stage", DeviceType::ActionDevice)
                    .with_tag("xrf")
                    .with_threshold(360.0),
            )
            .with(
                DeviceMeta::new(
                    "deck_sensor",
                    DeviceType::Custom("proximity_sensor".to_string()),
                )
                .with_tag("proximity_sensor"),
            );

        BerlinguetteLab { lab, catalog }
    }

    /// The Berlinguette RABIT: general rules, the transplanted Hein
    /// liquid-after-solid convention, the lab's own spray rule, the
    /// held-object extension, and the sensor-backed human-proximity rule.
    pub fn rabit(&self) -> Rabit {
        let mut rulebase = Rulebase::standard();
        rulebase.push(rabit_rulebase::custom::rule_c1_liquid_after_solid());
        rulebase.push(spray_requires_hot_plate_rule());
        rulebase.push(extensions::held_object_clearance_rule());
        rulebase.push(extensions::human_proximity_rule());
        Rabit::new(rulebase, self.catalog.clone(), RabitConfig::default())
    }

    /// The same engine with the Extended Simulator attached.
    pub fn rabit_with_simulator(&self, gui: bool) -> Rabit {
        self.rabit()
            .with_validator(Box::new(self.extended_simulator(gui)))
    }

    /// The Extended Simulator over the Berlinguette deck — exercising the
    /// non-cuboid shape extension: the spin coater is a cylinder with a
    /// domed bowl, the nozzles are cylinders.
    pub fn extended_simulator(&self, gui: bool) -> ExtendedSimulator {
        let coater = footprints::spin_coater();
        let world = SimWorld::new()
            .with_platform(1.4)
            .with_obstacle("rack", footprints::rack())
            .with_obstacle("dosing_device", footprints::dosing_device())
            .with_obstacle("decapper", footprints::decapper())
            .with_shaped_obstacle(
                "spin_coater",
                ObstacleShape::Composite(vec![
                    ObstacleShape::Cylinder(VerticalCylinder::new(
                        Vec3::new(coater.center().x, coater.center().y, 0.0),
                        0.10,
                        0.10,
                    )),
                    ObstacleShape::Hemisphere {
                        base_center: Vec3::new(coater.center().x, coater.center().y, 0.10),
                        radius: 0.08,
                    },
                ]),
            )
            .with_obstacle("spray_hotplate", footprints::spray_hotplate())
            .with_obstacle("spray_pump", footprints::spray_pump())
            .with_shaped_obstacle(
                "nozzle_a",
                ObstacleShape::Cylinder(VerticalCylinder::new(
                    Vec3::new(0.53, -0.42, 0.0),
                    0.25,
                    0.03,
                )),
            )
            .with_shaped_obstacle(
                "nozzle_b",
                ObstacleShape::Cylinder(VerticalCylinder::new(
                    Vec3::new(0.61, -0.42, 0.0),
                    0.25,
                    0.03,
                )),
            )
            // The XRF is modelled as its sample stage (a slab the arm
            // loads from above) plus the X-ray source column at the back
            // of the enclosure.
            .with_obstacle(
                "xrf_stage",
                Aabb::new(Vec3::new(0.55, 0.15, 0.0), Vec3::new(0.75, 0.35, 0.05)),
            )
            .with_shaped_obstacle(
                "xrf_source",
                ObstacleShape::Cylinder(VerticalCylinder::new(
                    Vec3::new(0.73, 0.33, 0.0),
                    0.30,
                    0.03,
                )),
            );
        ExtendedSimulator::new(
            world,
            SimConfig {
                gui,
                ..SimConfig::default()
            },
        )
        .with_arm("ur5e", presets::ur5e())
    }

    /// Toggles the deck's proximity sensor (a person stepping up to the
    /// deck).
    pub fn set_person_present(&mut self, present: bool) {
        if let Some(LabDevice::Custom(d)) = self.lab.device_mut(&"deck_sensor".into()) {
            // Custom devices are behind `dyn Device`; rebuild the sensor
            // state through malfunction-free reconstruction is overkill —
            // instead we exploit that ProximitySensor is the only custom
            // device here and drive it via downcast-free replacement.
            let mut sensor = ProximitySensor::new(
                "deck_sensor",
                Aabb::new(Vec3::new(-1.2, -1.2, 0.0), Vec3::new(1.2, 1.2, 2.0)),
            );
            sensor.set_occupied(present);
            *d = Box::new(sensor);
        }
    }
}

impl Default for BerlinguetteLab {
    fn default() -> Self {
        BerlinguetteLab::new()
    }
}

/// The thin-film coating workflow: fetch a vial, uncap, dose precursor
/// solid + solvent, spin-coat, spray-coat (hotplate on before the
/// nozzles), measure under the XRF, re-cap, and return the vial.
pub fn film_coating_workflow() -> Workflow {
    use locations::*;
    Workflow::new("film_coating")
        .go_home("ur5e")
        // -- fetch the vial and uncap it at the decapper --
        .move_to("ur5e", RACK_R1_SAFE)
        .pick_up("ur5e", "vial_b", RACK_R1)
        .move_to("ur5e", RACK_R1_SAFE)
        .move_to("ur5e", DECAPPER_APPROACH)
        .then(Command::new(
            "ur5e",
            ActionKind::PlaceObject {
                object: "vial_b".into(),
                into: Some("decapper".into()),
            },
        ))
        .start_action("decapper", 1.0)
        .stop_action("decapper")
        .decap("vial_b")
        .then(Command::new(
            "ur5e",
            ActionKind::PickObject {
                object: "vial_b".into(),
            },
        ))
        // -- dose precursor solid at the dosing device --
        .set_door("dosing_device", true)
        .move_to("ur5e", DOSING_APPROACH)
        .move_inside("ur5e", "dosing_device")
        .then(Command::new(
            "ur5e",
            ActionKind::PlaceObject {
                object: "vial_b".into(),
                into: Some("dosing_device".into()),
            },
        ))
        .move_out("ur5e")
        .set_door("dosing_device", false)
        .dose_solid("dosing_device", 4.0, "vial_b")
        .set_door("dosing_device", true)
        .move_to("ur5e", DOSING_APPROACH)
        .move_inside("ur5e", "dosing_device")
        .then(Command::new(
            "ur5e",
            ActionKind::PickObject {
                object: "vial_b".into(),
            },
        ))
        .move_out("ur5e")
        .set_door("dosing_device", false)
        // -- solvent (liquid after solid: the transplanted Hein rule) --
        .dose_liquid("spray_pump", 3.0, "vial_b")
        // -- spin coat the precursor --
        .move_to("ur5e", SPIN_COATER_APPROACH)
        .then(Command::new(
            "ur5e",
            ActionKind::PlaceObject {
                object: "vial_b".into(),
                into: Some("spin_coater".into()),
            },
        ))
        .start_action("spin_coater", 3_000.0)
        .stop_action("spin_coater")
        .then(Command::new(
            "ur5e",
            ActionKind::PickObject {
                object: "vial_b".into(),
            },
        ))
        // -- spray station: heat first, then spray --
        .move_to("ur5e", SPRAY_APPROACH)
        .then(Command::new(
            "ur5e",
            ActionKind::PlaceObject {
                object: "vial_b".into(),
                into: Some("spray_hotplate".into()),
            },
        ))
        .start_action("spray_hotplate", 120.0)
        .start_action("nozzle_a", 40.0)
        .stop_action("nozzle_a")
        .start_action("nozzle_b", 40.0)
        .stop_action("nozzle_b")
        .stop_action("spray_hotplate")
        .then(Command::new(
            "ur5e",
            ActionKind::PickObject {
                object: "vial_b".into(),
            },
        ))
        // -- XRF measurement --
        .move_to("ur5e", XRF_APPROACH)
        .then(Command::new(
            "ur5e",
            ActionKind::PlaceObject {
                object: "vial_b".into(),
                into: Some("xrf_stage".into()),
            },
        ))
        .start_action("xrf_source", 30.0)
        .stop_action("xrf_source")
        .then(Command::new(
            "ur5e",
            ActionKind::PickObject {
                object: "vial_b".into(),
            },
        ))
        // -- re-cap and return --
        .move_to("ur5e", DECAPPER_APPROACH)
        .cap("vial_b")
        .move_to("ur5e", RACK_R1_SAFE)
        .place_at("ur5e", "vial_b", RACK_R1)
        .move_to("ur5e", RACK_R1_SAFE)
        .go_home("ur5e")
        .go_to_sleep("ur5e")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_tracer::Tracer;

    #[test]
    fn all_devices_categorise_into_the_four_types() {
        // The paper's conclusion: "we are able to categorize most of the
        // devices as part of our four defined device types".
        let lab = BerlinguetteLab::new();
        let mut arms = 0;
        let mut containers = 0;
        let mut dosing = 0;
        let mut action = 0;
        let mut custom = 0;
        for meta in lab.catalog.iter() {
            match meta.device_type {
                DeviceType::RobotArm => arms += 1,
                DeviceType::Container => containers += 1,
                DeviceType::DosingSystem => dosing += 1,
                DeviceType::ActionDevice => action += 1,
                DeviceType::Custom(_) => custom += 1,
            }
        }
        assert_eq!(arms, 1);
        assert_eq!(containers, 1);
        assert_eq!(dosing, 2); // dosing device + spray pump
        assert_eq!(action, 7); // decapper, spin coater, hotplate, 2 nozzles, xrf × 2
        assert_eq!(custom, 2); // the rack and the proximity sensor
    }

    #[test]
    fn film_coating_workflow_completes() {
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        let wf = film_coating_workflow();
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        assert!(report.completed(), "false positive: {:?}", report.alert);
        assert!(lab.lab.damage_log().is_empty());
        let vial = lab.lab.device(&"vial_b".into()).unwrap().as_vial().unwrap();
        assert_eq!(vial.solid_mg(), 4.0);
        assert_eq!(vial.liquid_ml(), 3.0);
        assert!(vial.has_stopper());
    }

    #[test]
    fn film_coating_workflow_completes_under_the_shaped_simulator() {
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit_with_simulator(false);
        let wf = film_coating_workflow();
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        assert!(report.completed(), "false positive: {:?}", report.alert);
    }

    #[test]
    fn transplanted_hein_rule_fires() {
        // Liquid before solid: the Hein convention holds here too.
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        let wf = Workflow::new("cold_liquid").dose_liquid("spray_pump", 2.0, "vial_b");
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        let alert = report.alert.expect("liquid before solid must alert");
        assert!(alert.to_string().contains("custom:1"), "{alert}");
    }

    #[test]
    fn lab_specific_spray_rule_fires() {
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        let wf = Workflow::new("cold_spray").start_action("nozzle_a", 40.0);
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        let alert = report.alert.expect("cold spray must alert");
        assert!(alert.to_string().contains("spray_requires_heat"), "{alert}");
    }

    #[test]
    fn nozzles_are_exempt_from_rule_5() {
        // With the hotplate running, a nozzle needs no contained vial.
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        // Give the hotplate a believed container so rules 5/6 pass on it.
        let wf = Workflow::new("hot_then_spray")
            .move_to("ur5e", locations::RACK_R1_SAFE)
            .pick_up("ur5e", "vial_b", locations::RACK_R1)
            .move_to("ur5e", locations::SPRAY_APPROACH)
            .then(Command::new(
                "ur5e",
                ActionKind::PlaceObject {
                    object: "vial_b".into(),
                    into: Some("spray_hotplate".into()),
                },
            ))
            .start_action("spray_hotplate", 100.0)
            .start_action("nozzle_a", 40.0);
        // The vial is empty → rule 6 would fire for the hotplate. Seed
        // believed contents to isolate the nozzle behaviour.
        rabit.initialize(&mut lab.lab);
        rabit.believe(&"vial_b".into(), StateKey::SolidMg, 4.0);
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        assert!(
            report.completed(),
            "nozzle exemption failed: {:?}",
            report.alert
        );
    }

    #[test]
    fn xrf_overpower_is_blocked() {
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        let wf = Workflow::new("xrf_hot").start_action("xrf_source", 80.0); // limit 50 kV
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        let alert = report.alert.expect("over-power X-ray source must alert");
        assert!(alert.to_string().contains("general:11"), "{alert}");
    }

    #[test]
    fn person_on_deck_halts_all_motion() {
        let mut lab = BerlinguetteLab::new();
        lab.set_person_present(true);
        let mut rabit = lab.rabit();
        let wf = Workflow::new("with_person").go_home("ur5e");
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        let alert = report
            .alert
            .expect("motion with a person present must alert");
        assert!(alert.to_string().contains("human_proximity"), "{alert}");
        // Person leaves: motion resumes.
        let mut lab = BerlinguetteLab::new();
        lab.set_person_present(false);
        let mut rabit = lab.rabit();
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        assert!(report.completed());
    }

    #[test]
    fn door_rules_transfer_unchanged() {
        // The dosing device "similar to that in the Hein Lab" gets the
        // same protection with zero new configuration.
        let mut lab = BerlinguetteLab::new();
        let mut rabit = lab.rabit();
        let wf = Workflow::new("closed_door").move_inside("ur5e", "dosing_device");
        let report = Tracer::guarded(&mut lab.lab, &mut rabit).run(&wf);
        let alert = report.alert.expect("closed door must alert");
        assert!(alert.to_string().contains("general:1"), "{alert}");
    }

    #[test]
    fn home_matches_kinematic_preset() {
        let arm = presets::ur5e();
        let kin_home = arm.tool_position(&arm.home_configuration());
        assert!(
            kin_home.distance(locations::UR5E_HOME) < 1e-3,
            "kinematic home {kin_home}"
        );
        let kin_sleep = arm.tool_position(&arm.sleep_configuration());
        assert!(
            kin_sleep.distance(locations::UR5E_SLEEP) < 1e-3,
            "{kin_sleep}"
        );
        assert!(footprints::ur5e_sleep_volume().contains_point(locations::UR5E_SLEEP));
    }

    #[test]
    fn footprints_do_not_overlap() {
        let fps = [
            ("rack", footprints::rack()),
            ("dosing_device", footprints::dosing_device()),
            ("decapper", footprints::decapper()),
            ("spin_coater", footprints::spin_coater()),
            ("spray_hotplate", footprints::spray_hotplate()),
            ("spray_pump", footprints::spray_pump()),
            ("nozzle_a", footprints::nozzle_a()),
            ("nozzle_b", footprints::nozzle_b()),
            ("xrf", footprints::xrf()),
        ];
        for (i, (an, a)) in fps.iter().enumerate() {
            for (bn, b) in fps.iter().skip(i + 1) {
                assert!(!a.intersects(b), "{an} overlaps {bn}");
            }
        }
    }
}
