//! Joint-space trajectories.
//!
//! The Extended Simulator detects collisions "by continuously polling the
//! robot arm's trajectory and comparing it with the 3D objects'
//! coordinates" (paper §III). A [`Trajectory`] is the polled object: a
//! sequence of joint-space waypoints with a constant-velocity time profile,
//! sampled at the simulator's polling rate.

use crate::arm::{ArmModel, HeldObject};
use crate::chain::JointConfig;
use rabit_geometry::Capsule;

/// A piecewise-linear joint-space trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    waypoints: Vec<JointConfig>,
    /// Joint speed used for timing (radians/second, L∞ across joints).
    joint_speed: f64,
}

/// Default joint speed for lab arms (rad/s). UR3e tops out near π rad/s,
/// but lab moves run far slower for safety.
pub const DEFAULT_JOINT_SPEED: f64 = 1.0;

impl Trajectory {
    /// Creates a trajectory through `waypoints` at `joint_speed` rad/s.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 waypoints are supplied or the speed is not
    /// strictly positive.
    pub fn new(waypoints: Vec<JointConfig>, joint_speed: f64) -> Self {
        assert!(
            waypoints.len() >= 2,
            "a trajectory needs at least 2 waypoints"
        );
        assert!(
            joint_speed.is_finite() && joint_speed > 0.0,
            "joint speed must be positive, got {joint_speed}"
        );
        Trajectory {
            waypoints,
            joint_speed,
        }
    }

    /// A single straight joint-space move.
    pub fn linear(from: JointConfig, to: JointConfig) -> Self {
        Trajectory::new(vec![from, to], DEFAULT_JOINT_SPEED)
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[JointConfig] {
        &self.waypoints
    }

    /// Start configuration.
    pub fn start(&self) -> JointConfig {
        self.waypoints[0]
    }

    /// End configuration.
    pub fn end(&self) -> JointConfig {
        *self.waypoints.last().expect("trajectory has waypoints")
    }

    /// Total joint-space path length under the L∞ metric (radians).
    pub fn joint_path_length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].max_joint_delta(&w[1]))
            .sum()
    }

    /// Duration at the configured joint speed (seconds).
    pub fn duration(&self) -> f64 {
        self.joint_path_length() / self.joint_speed
    }

    /// The configuration at time `t` seconds (clamped to the ends).
    pub fn config_at(&self, t: f64) -> JointConfig {
        if t <= 0.0 {
            return self.start();
        }
        let mut remaining = t * self.joint_speed;
        for w in self.waypoints.windows(2) {
            let seg = w[0].max_joint_delta(&w[1]);
            if seg <= f64::EPSILON {
                continue;
            }
            if remaining <= seg {
                return w[0].lerp(&w[1], remaining / seg);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Samples the trajectory uniformly in time, returning `n ≥ 2`
    /// configurations including both endpoints. This is the polling set
    /// the Extended Simulator checks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample(&self, n: usize) -> Vec<JointConfig> {
        assert!(n >= 2, "need at least 2 samples, got {n}");
        let d = self.duration();
        (0..n)
            .map(|i| self.config_at(d * i as f64 / (n - 1) as f64))
            .collect()
    }

    /// Samples at a fixed polling interval `dt` seconds (the simulator's
    /// polling rate), always including the final configuration.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn sample_every(&self, dt: f64) -> Vec<JointConfig> {
        self.samples_every(dt).map(|(_, q)| q).collect()
    }

    /// Iterator twin of [`Trajectory::sample_every`]: yields
    /// `(fraction, configuration)` pairs at the polling interval `dt`
    /// without materialising a `Vec`, walking the waypoint segments
    /// incrementally (O(samples + waypoints) instead of
    /// O(samples × waypoints)). The fraction is elapsed time over total
    /// duration; the final configuration is always yielded at fraction
    /// 1.0. A zero-length trajectory yields its end configuration once,
    /// at fraction 0.0.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn samples_every(&self, dt: f64) -> Samples<'_> {
        assert!(
            dt.is_finite() && dt > 0.0,
            "polling interval must be positive"
        );
        Samples {
            waypoints: &self.waypoints,
            speed: self.joint_speed,
            duration: self.duration(),
            dt,
            t: 0.0,
            seg: 0,
            seg_start_t: 0.0,
            seg_end_t: self.waypoints[0].max_joint_delta(&self.waypoints[1]) / self.joint_speed,
            done: false,
        }
    }

    /// The swept capsule volumes of `arm` over `n` samples of this
    /// trajectory: one capsule set per sample.
    pub fn swept_capsules(
        &self,
        arm: &ArmModel,
        held: Option<&HeldObject>,
        n: usize,
    ) -> Vec<Vec<Capsule>> {
        self.sample(n)
            .iter()
            .map(|q| arm.link_capsules(q, held))
            .collect()
    }

    /// Appends another leg to the trajectory.
    pub fn then(mut self, to: JointConfig) -> Self {
        self.waypoints.push(to);
        self
    }
}

/// Iterator over time-uniform samples of a [`Trajectory`] — see
/// [`Trajectory::samples_every`]. Keeps a segment cursor so each step is
/// O(1) amortised, unlike repeated [`Trajectory::config_at`] calls which
/// rescan the waypoint list.
#[derive(Debug, Clone)]
pub struct Samples<'a> {
    waypoints: &'a [JointConfig],
    speed: f64,
    duration: f64,
    dt: f64,
    t: f64,
    /// Index of the segment (pair `waypoints[seg]..waypoints[seg + 1]`)
    /// containing the cursor time.
    seg: usize,
    seg_start_t: f64,
    seg_end_t: f64,
    done: bool,
}

impl Iterator for Samples<'_> {
    /// `(fraction of the motion in [0, 1], configuration)`.
    type Item = (f64, JointConfig);

    fn next(&mut self) -> Option<(f64, JointConfig)> {
        if self.done {
            return None;
        }
        let end = *self.waypoints.last().expect("trajectory has waypoints");
        if self.duration <= f64::EPSILON {
            self.done = true;
            return Some((0.0, end));
        }
        if self.t >= self.duration {
            self.done = true;
            return Some((1.0, end));
        }
        while self.seg + 2 < self.waypoints.len() && self.t > self.seg_end_t {
            self.seg += 1;
            self.seg_start_t = self.seg_end_t;
            self.seg_end_t += self.waypoints[self.seg]
                .max_joint_delta(&self.waypoints[self.seg + 1])
                / self.speed;
        }
        let w0 = &self.waypoints[self.seg];
        let w1 = &self.waypoints[self.seg + 1];
        let seg_duration = self.seg_end_t - self.seg_start_t;
        let config = if seg_duration <= f64::EPSILON {
            *w1
        } else {
            let f = ((self.t - self.seg_start_t) / seg_duration).clamp(0.0, 1.0);
            w0.lerp(w1, f)
        };
        let fraction = self.t / self.duration;
        self.t += self.dt;
        Some((fraction, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn q(a: f64) -> JointConfig {
        JointConfig::new([a, 0.0, 0.0, 0.0, 0.0, 0.0])
    }

    #[test]
    fn linear_trajectory_timing() {
        let t = Trajectory::new(vec![q(0.0), q(1.0)], 0.5);
        assert!((t.duration() - 2.0).abs() < 1e-12);
        assert_eq!(t.config_at(0.0), q(0.0));
        assert_eq!(t.config_at(2.0), q(1.0));
        assert_eq!(t.config_at(1.0).angle(0), 0.5);
        // Clamping beyond the ends.
        assert_eq!(t.config_at(-1.0), q(0.0));
        assert_eq!(t.config_at(10.0), q(1.0));
    }

    #[test]
    fn multi_segment_interpolation() {
        let t = Trajectory::new(vec![q(0.0), q(1.0), q(0.5)], 1.0);
        assert!((t.joint_path_length() - 1.5).abs() < 1e-12);
        // At t = 1.25 s we are halfway down the second segment.
        assert!((t.config_at(1.25).angle(0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sampling_includes_endpoints() {
        let t = Trajectory::linear(q(0.0), q(1.0));
        let s = t.sample(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], q(0.0));
        assert_eq!(s[4], q(1.0));
        // Uniform spacing.
        assert!((s[1].angle(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sample_every_covers_whole_motion() {
        let t = Trajectory::new(vec![q(0.0), q(1.0)], 1.0); // 1 s long
        let s = t.sample_every(0.3);
        assert_eq!(s.first().unwrap(), &q(0.0));
        assert_eq!(s.last().unwrap(), &q(1.0));
        assert!(s.len() >= 4);
    }

    #[test]
    fn samples_every_matches_config_at() {
        // The incremental cursor must reproduce exactly what repeated
        // config_at calls produce, including across degenerate segments.
        let t = Trajectory::new(vec![q(0.0), q(1.0), q(1.0), q(0.25), q(0.9)], 0.7);
        let d = t.duration();
        let dt = 0.13;
        let samples: Vec<(f64, JointConfig)> = t.samples_every(dt).collect();
        assert_eq!(samples.last().unwrap(), &(1.0, t.end()));
        let mut expect_t = 0.0;
        for (fraction, config) in &samples[..samples.len() - 1] {
            assert!((fraction - expect_t / d).abs() < 1e-12);
            let reference = t.config_at(expect_t);
            for j in 0..6 {
                assert!(
                    (config.angle(j) - reference.angle(j)).abs() < 1e-12,
                    "sample at t={expect_t} diverged from config_at"
                );
            }
            expect_t += dt;
        }
        // And the Vec path is literally the iterator collected.
        let vec_path = t.sample_every(dt);
        assert_eq!(vec_path.len(), samples.len());
        for (v, (_, s)) in vec_path.iter().zip(&samples) {
            assert_eq!(v, s);
        }
    }

    #[test]
    fn samples_every_fractions_are_monotone_in_unit_interval() {
        let t = Trajectory::new(vec![q(0.0), q(2.0), q(-1.0)], 1.3);
        let mut prev = -1.0;
        for (fraction, _) in t.samples_every(0.05) {
            assert!((0.0..=1.0).contains(&fraction));
            assert!(fraction > prev, "fractions must strictly increase");
            prev = fraction;
        }
    }

    #[test]
    fn zero_length_trajectory_yields_single_sample() {
        let t = Trajectory::new(vec![q(0.5), q(0.5)], 1.0);
        let samples: Vec<(f64, JointConfig)> = t.samples_every(0.05).collect();
        assert_eq!(samples, vec![(0.0, q(0.5))]);
    }

    #[test]
    fn degenerate_segments_are_skipped() {
        let t = Trajectory::new(vec![q(0.0), q(0.0), q(1.0)], 1.0);
        assert!((t.duration() - 1.0).abs() < 1e-12);
        assert!((t.config_at(0.5).angle(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn then_extends() {
        let t = Trajectory::linear(q(0.0), q(1.0)).then(q(2.0));
        assert_eq!(t.waypoints().len(), 3);
        assert_eq!(t.end(), q(2.0));
    }

    #[test]
    fn swept_capsules_shape() {
        let arm = presets::ur3e();
        let t = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
        let sweep = t.swept_capsules(&arm, None, 7);
        assert_eq!(sweep.len(), 7);
        for caps in &sweep {
            assert_eq!(caps.len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 waypoints")]
    fn too_few_waypoints_panics() {
        let _ = Trajectory::new(vec![q(0.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        let _ = Trajectory::new(vec![q(0.0), q(1.0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn too_few_samples_panics() {
        let _ = Trajectory::linear(q(0.0), q(1.0)).sample(1);
    }
}
