//! Printable renditions of the paper's rule tables.
//!
//! Used by the bench harness to regenerate Table II (the state-transition
//! table for robot-arm actions), Table III (general rules), and Table IV
//! (custom rules) from the live rulebase.

use crate::custom::hein_custom_rules;
use crate::general::general_rules;
use crate::rule::Rule;

/// One row of the Table II state-transition table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRow {
    /// What the action does, in prose.
    pub action: &'static str,
    /// The precondition, in the paper's variable notation.
    pub precondition: &'static str,
    /// The action label.
    pub label: &'static str,
    /// The postcondition, in the paper's variable notation.
    pub postcondition: &'static str,
}

/// The Table II example rows for a robot-arm device, as implemented by the
/// rulebase (`rule_1`, `rule_4`) and the transition function.
pub fn table_ii_rows() -> Vec<TransitionRow> {
    vec![
        TransitionRow {
            action: "Moving a robot arm inside a specific device",
            precondition: "deviceDoorStatus[device] = 1",
            label: "move_robot_inside",
            postcondition: "robotArmInside[robot][device] = 1",
        },
        TransitionRow {
            action: "Using a robot arm to pick up an object (a vial in this case)",
            precondition: "robotArmHolding[robot] = 0",
            label: "pick_object",
            postcondition: "robotArmHolding[robot] = 1",
        },
        TransitionRow {
            action: "Using a robot arm to place an object (a vial in this case)",
            precondition: "robotArmHolding[robot] = 1",
            label: "place_object",
            postcondition: "robotArmHolding[robot] = 0",
        },
    ]
}

/// Renders any rule list as `(id, description)` rows — Table III when
/// called with [`general_rules`], Table IV with [`hein_custom_rules`].
pub fn rule_rows(rules: &[Rule]) -> Vec<(String, String)> {
    rules
        .iter()
        .map(|r| (r.id().to_string(), r.description().to_string()))
        .collect()
}

/// Table III as `(id, description)` rows.
pub fn table_iii_rows() -> Vec<(String, String)> {
    rule_rows(&general_rules())
}

/// Table IV as `(id, description)` rows.
pub fn table_iv_rows() -> Vec<(String, String)> {
    rule_rows(&hein_custom_rules())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_the_three_example_actions() {
        let rows = table_ii_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "move_robot_inside");
        assert_eq!(rows[1].label, "pick_object");
        assert_eq!(rows[2].label, "place_object");
        for r in &rows {
            assert!(!r.precondition.is_empty());
            assert!(!r.postcondition.is_empty());
        }
    }

    #[test]
    fn table_iii_matches_the_rulebase() {
        let rows = table_iii_rows();
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].0, "general:1");
        assert!(rows[2].1.contains("not occupied"));
        assert!(rows[10].1.to_lowercase().contains("threshold"));
    }

    #[test]
    fn table_iv_matches_the_rulebase() {
        let rows = table_iv_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows[2].1.contains("red dot"));
    }
}
