//! The automated solubility measurement workflow (Fig. 1(b)).
//!
//! ```python
//! dosing_device.doseSolid(amount)
//! syringe_pump.doseInitialSolvent(volume)
//! hotplate.stirSolution(temperature)
//! image = recordImage()
//! measureSolubility(image)
//! while (not SolutionDissolved):
//!     syringe_pump.doseSolvent(amount)
//!     hotplate.stirSolution(temperature)
//!     image = recordImage()
//!     measureSolubility(image)
//! ```
//!
//! Each Python wrapper call expands into the underlying device commands,
//! exactly like the `doseSolid` definition shown in the figure.

use crate::camera::RECORD_IMAGE;
use crate::deck::locations;
use rabit_devices::{ActionKind, Command};
use rabit_tracer::Workflow;

/// Parameters of one solubility run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolubilityParams {
    /// Solid dose (mg). Fig. 1(b) raises an exception above 10 mg.
    pub solid_mg: f64,
    /// Initial solvent volume (mL).
    pub initial_solvent_ml: f64,
    /// Per-iteration solvent top-up (mL).
    pub solvent_step_ml: f64,
    /// Stirring temperature (°C).
    pub temperature_c: f64,
    /// Number of dissolve-check iterations after the initial one.
    pub iterations: usize,
}

impl Default for SolubilityParams {
    fn default() -> Self {
        SolubilityParams {
            solid_mg: 5.0,
            initial_solvent_ml: 2.0,
            solvent_step_ml: 1.0,
            temperature_c: 60.0,
            iterations: 3,
        }
    }
}

fn record_image(wf: Workflow) -> Workflow {
    wf.then(Command::new(
        "camera",
        ActionKind::Custom {
            name: RECORD_IMAGE.to_string(),
            params: vec![],
        },
    ))
}

/// `dosing_device.doseSolid(amount)` — the full expansion from Fig. 1(b):
/// open door, fetch the vial from the grid, place it inside, dose with
/// the door closed, then return the vial to the grid.
pub fn dose_solid_expansion(wf: Workflow, amount_mg: f64) -> Workflow {
    wf.set_door("dosing_device", true)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .pick_up("ur3e", "vial", locations::GRID_A1)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .move_to("ur3e", locations::DOSING_APPROACH)
        .move_inside("ur3e", "dosing_device")
        .then(Command::new(
            "ur3e",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("dosing_device".into()),
            },
        ))
        .move_out("ur3e")
        .go_home("ur3e")
        .set_door("dosing_device", false)
        .dose_solid("dosing_device", amount_mg, "vial")
        // Dosing stops when the amount is dispensed (Fig. 1(b) comment).
        .set_door("dosing_device", true)
        .move_to("ur3e", locations::DOSING_APPROACH)
        .move_inside("ur3e", "dosing_device")
        .then(Command::new(
            "ur3e",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .move_out("ur3e")
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .place_at("ur3e", "vial", locations::GRID_A1)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .go_home("ur3e")
        .set_door("dosing_device", false)
}

/// One stir cycle: carry the vial to the hotplate, stir at temperature,
/// and bring it back to the grid.
pub fn stir_expansion(wf: Workflow, temperature_c: f64) -> Workflow {
    wf.move_to("ur3e", locations::GRID_A1_SAFE)
        .pick_up("ur3e", "vial", locations::GRID_A1)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .move_to("ur3e", locations::HOTPLATE_APPROACH)
        .then(Command::new(
            "ur3e",
            ActionKind::PlaceObject {
                object: "vial".into(),
                into: Some("hotplate".into()),
            },
        ))
        .start_action("hotplate", temperature_c)
        .stop_action("hotplate")
        .then(Command::new(
            "ur3e",
            ActionKind::PickObject {
                object: "vial".into(),
            },
        ))
        .move_to("ur3e", locations::HOTPLATE_APPROACH)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .place_at("ur3e", "vial", locations::GRID_A1)
        .move_to("ur3e", locations::GRID_A1_SAFE)
        .go_home("ur3e")
}

/// Builds the full Fig. 1(b) solubility workflow.
pub fn solubility_workflow(params: &SolubilityParams) -> Workflow {
    let mut wf = Workflow::new("solubility").go_home("ur3e").decap("vial");
    wf = dose_solid_expansion(wf, params.solid_mg);
    wf = wf.dose_liquid("syringe_pump", params.initial_solvent_ml, "vial");
    wf = stir_expansion(wf, params.temperature_c);
    wf = record_image(wf);
    for _ in 0..params.iterations {
        wf = wf.dose_liquid("syringe_pump", params.solvent_step_ml, "vial");
        wf = stir_expansion(wf, params.temperature_c);
        wf = record_image(wf);
    }
    wf.cap("vial").go_to_sleep("ur3e")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::ProductionDeck;
    use rabit_core::Rabit;
    use rabit_tracer::Tracer;

    #[test]
    fn workflow_structure() {
        let wf = solubility_workflow(&SolubilityParams::default());
        assert!(wf.len() > 50, "full expansion, got {}", wf.len());
        assert!(wf.find("dose_solid").is_some());
        assert!(wf.find("dose_liquid").is_some());
        assert!(wf.find("custom(record_image)").is_some());
        // More iterations → strictly longer workflow.
        let longer = solubility_workflow(&SolubilityParams {
            iterations: 6,
            ..SolubilityParams::default()
        });
        assert!(longer.len() > wf.len());
    }

    #[test]
    fn solubility_run_completes_under_rabit() {
        let mut deck = ProductionDeck::new();
        let mut rabit = deck.rabit();
        let wf = solubility_workflow(&SolubilityParams::default());
        let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf);
        assert!(report.completed(), "false positive: {:?}", report.alert);
        assert!(deck.lab.damage_log().is_empty());
        // The chemistry happened: solid and solvent are in the vial.
        let vial = deck.lab.device(&"vial".into()).unwrap().as_vial().unwrap();
        assert_eq!(vial.solid_mg(), 5.0);
        assert_eq!(vial.liquid_ml(), 5.0); // 2.0 + 3×1.0
        assert!(vial.has_stopper());
    }

    #[test]
    fn solubility_run_completes_with_headless_simulator() {
        let mut deck = ProductionDeck::new();
        let mut rabit = deck.rabit_with_simulator(false);
        let wf = solubility_workflow(&SolubilityParams::default());
        let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf);
        assert!(report.completed(), "false positive: {:?}", report.alert);
    }

    #[test]
    fn unchecked_run_also_completes_but_faster() {
        // The safe workflow is safe with or without RABIT; RABIT only
        // adds overhead (the E2 baseline).
        let mut deck = ProductionDeck::new();
        let wf = solubility_workflow(&SolubilityParams::default());
        let unchecked = Tracer::pass_through(&mut deck.lab).run(&wf);
        assert!(unchecked.completed());
        let mut deck2 = ProductionDeck::new();
        let mut rabit = deck2.rabit();
        let checked = Tracer::guarded(&mut deck2.lab, &mut rabit).run(&wf);
        assert!(checked.completed());
        assert!(checked.lab_time_s > unchecked.lab_time_s);
        // Without the simulator the overhead is small (paper: ~1.5%).
        let overhead_frac = checked.rabit_overhead_s / unchecked.lab_time_s;
        assert!(
            overhead_frac < 0.10,
            "overhead without simulator should be percent-level, got {overhead_frac:.3}"
        );
    }

    #[test]
    fn camera_recorded_all_images() {
        let mut deck = ProductionDeck::new();
        let mut rabit = deck.rabit();
        let wf = solubility_workflow(&SolubilityParams::default());
        let _ = Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf);
        // 1 initial + 3 iterations = 4 images. The camera is a custom
        // device, so we reach through the LabDevice::Custom boxing via
        // its behaviour: re-run unchecked and count.
        let _ = rabit_core::Rabit::run_unchecked(
            &mut deck.lab,
            &[rabit_devices::Command::new(
                "camera",
                rabit_devices::ActionKind::Custom {
                    name: crate::camera::RECORD_IMAGE.to_string(),
                    params: vec![],
                },
            )],
        );
        // If the camera accepted another capture, it processed the first
        // four; absence of faults across the run is the assertion here.
        let _ = Rabit::run_unchecked(&mut deck.lab, &[]);
    }
}
