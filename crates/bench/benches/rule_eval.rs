//! Real compute cost of rulebase evaluation: the `Valid(S, a)` check that
//! runs on every intercepted command.

use rabit_bench::timing::{bench, group};
use rabit_devices::{ActionKind, Command, DeviceId, DeviceState, LabState, StateKey};
use rabit_geometry::Vec3;
use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
use std::hint::black_box;

fn setup() -> (Rulebase, DeviceCatalog, LabState) {
    let rulebase = Rulebase::hein_lab();
    let catalog = DeviceCatalog::new()
        .with(DeviceMeta::new("arm", rabit_devices::DeviceType::RobotArm))
        .with(DeviceMeta::new("doser", rabit_devices::DeviceType::DosingSystem).with_door())
        .with(
            DeviceMeta::new("centrifuge", rabit_devices::DeviceType::ActionDevice)
                .with_door()
                .with_tag("centrifuge")
                .with_threshold(6000.0),
        )
        .with(DeviceMeta::new(
            "vial",
            rabit_devices::DeviceType::Container,
        ));
    let mut state = LabState::new();
    state.insert(
        "doser",
        DeviceState::new()
            .with(StateKey::DoorOpen, true)
            .with(StateKey::ActionActive, false)
            .with(
                StateKey::Footprint,
                rabit_geometry::Aabb::new(Vec3::new(0.0, 0.3, 0.0), Vec3::new(0.2, 0.5, 0.3)),
            ),
    );
    state.insert(
        "arm",
        DeviceState::new()
            .with(StateKey::Holding, None::<DeviceId>)
            .with(StateKey::InsideOf, None::<DeviceId>),
    );
    state.insert(
        "vial",
        DeviceState::new()
            .with(StateKey::SolidMg, 5.0)
            .with(StateKey::LiquidMl, 3.0)
            .with(StateKey::CapacityMg, 10.0)
            .with(StateKey::CapacityMl, 20.0)
            .with(StateKey::HasStopper, false),
    );
    (rulebase, catalog, state)
}

fn main() {
    let (rulebase, catalog, state) = setup();
    let safe_cmd = Command::new(
        "arm",
        ActionKind::MoveInsideDevice {
            device: "doser".into(),
        },
    );
    let move_cmd = Command::new(
        "arm",
        ActionKind::MoveToLocation {
            target: Vec3::new(0.5, 0.0, 0.4),
        },
    );
    let dose_cmd = Command::new(
        "doser",
        ActionKind::DoseSolid {
            amount_mg: 3.0,
            into: "vial".into(),
        },
    );

    group("rule_eval");
    bench("full_scan_safe_enter", || {
        rulebase.check(black_box(&safe_cmd), &state, &catalog)
    });
    bench("full_scan_move", || {
        rulebase.check(black_box(&move_cmd), &state, &catalog)
    });
    bench("full_scan_dose", || {
        rulebase.check(black_box(&dose_cmd), &state, &catalog)
    });
    bench("first_hit_safe_enter", || {
        rulebase.check_first(black_box(&safe_cmd), &state, &catalog)
    });

    // The postcondition/transition function.
    group("transition");
    bench("expected_state_move", || {
        rabit_rulebase::transition::expected_state(&catalog, black_box(&state), &move_cmd)
    });

    // Scaling: rule evaluation over growing device counts (rule III-3
    // scans every footprint, so this is the linear term in deck size).
    group("rule_eval_scaling");
    for n in [8usize, 32, 128] {
        let mut big_catalog =
            DeviceCatalog::new().with(DeviceMeta::new("arm", rabit_devices::DeviceType::RobotArm));
        let mut big_state = LabState::new();
        big_state.insert(
            "arm",
            DeviceState::new()
                .with(StateKey::Holding, None::<DeviceId>)
                .with(StateKey::InsideOf, None::<DeviceId>),
        );
        for i in 0..n {
            let id = format!("device_{i}");
            big_catalog.insert(
                DeviceMeta::new(id.clone(), rabit_devices::DeviceType::ActionDevice)
                    .with_threshold(100.0),
            );
            let x = (i % 16) as f64 * 0.3 - 2.0;
            let y = (i / 16) as f64 * 0.3 - 2.0;
            big_state.insert(
                id,
                DeviceState::new().with(StateKey::ActionActive, false).with(
                    StateKey::Footprint,
                    rabit_geometry::Aabb::new(
                        Vec3::new(x, y, 0.0),
                        Vec3::new(x + 0.2, y + 0.2, 0.2),
                    ),
                ),
            );
        }
        let rulebase = Rulebase::hein_lab();
        bench(&format!("move_check_{n}_devices"), || {
            rulebase.check(black_box(&move_cmd), &big_state, &big_catalog)
        });
    }
}
