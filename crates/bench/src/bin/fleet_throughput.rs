//! Fleet-executor and broad-phase throughput benchmark.
//!
//! Measures (1) guarded workflow runs per second, serial versus the
//! work-stealing fleet pool, and (2) the collision-check speedup of the
//! BVH broad phase over the exhaustive scan at 8/64/256 devices. Writes
//! the results to `BENCH_fleet.json` and prints them as a table.
//!
//! Run with `cargo run --release -p rabit-bench --bin fleet_throughput`.
//! `--quick` runs a reduced calibration pass for CI smoke checks.
//!
//! Thread counts above the machine's available parallelism are skipped
//! (and recorded as skipped in the JSON): oversubscribed workers only
//! measure scheduler noise, not fleet throughput.

use rabit_bench::report::render_table;
use rabit_buginject::RabitStage;
use rabit_geometry::{Aabb, Vec3};
use rabit_kinematics::presets;
use rabit_kinematics::trajectory::Trajectory;
use rabit_sim::SimWorld;
use rabit_testbed::{workflows, Testbed};
use rabit_tracer::{run_fleet, Workflow};
use rabit_util::Json;
use std::time::Instant;

/// Best-of-N wall-clock seconds for `f`.
fn measure(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn fleet_workflows(runs: usize) -> Vec<Workflow> {
    let template = Testbed::new();
    (0..runs)
        .map(|_| workflows::fig5_safe_workflow(&template.locations))
        .collect()
}

fn fleet_seconds(wfs: &[Workflow], threads: usize, repeats: usize) -> f64 {
    measure(repeats, || {
        let fleet = run_fleet(wfs, threads, |_| {
            let tb = Testbed::new();
            let rabit = tb.rabit(RabitStage::ModifiedWithSimulator);
            (tb.lab, Some(rabit))
        });
        assert_eq!(
            fleet.completed_runs(),
            wfs.len(),
            "safe fleet must complete"
        );
    })
}

/// A deck of `n` device cuboids ringed around the arm, nearest first:
/// the inner ring sits just outside the sweep so it draws real narrow
/// checks, while the outer cells are pure broad-phase fodder.
fn lattice_world(n: usize) -> SimWorld {
    let mut cells: Vec<(f64, f64)> = Vec::new();
    for gx in -20i32..20 {
        for gy in -20i32..20 {
            let (x, y) = (gx as f64 * 0.3, gy as f64 * 0.3);
            if x.hypot(y) >= 0.55 {
                cells.push((x, y));
            }
        }
    }
    cells.sort_by(|a, b| {
        a.0.hypot(a.1)
            .total_cmp(&b.0.hypot(b.1))
            .then(a.partial_cmp(b).unwrap())
    });
    let mut world = SimWorld::new();
    for (i, (x, y)) in cells.into_iter().take(n).enumerate() {
        world.add_obstacle(
            format!("dev{i}"),
            Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 0.2, y + 0.2, 0.25)),
        );
    }
    world
}

struct BroadPhaseRow {
    devices: usize,
    pruned_s: f64,
    exhaustive_s: f64,
    narrow_pruned: u64,
    narrow_exhaustive: u64,
}

fn broadphase_row(devices: usize, repeats: usize) -> BroadPhaseRow {
    let world = lattice_world(devices);
    let arm = presets::ur3e();
    let traj = Trajectory::linear(arm.home_configuration(), arm.sleep_configuration());
    let poses = traj.sample(64);
    let capsule_sets: Vec<_> = poses.iter().map(|q| arm.link_capsules(q, None)).collect();

    let mut narrow_pruned = 0;
    let mut narrow_exhaustive = 0;
    let pruned_s = measure(repeats, || {
        narrow_pruned = 0;
        for caps in &capsule_sets {
            let (_, tested) = world.first_hit_counting(&caps[1..], &[], true);
            narrow_pruned += tested;
        }
    });
    let exhaustive_s = measure(repeats, || {
        narrow_exhaustive = 0;
        for caps in &capsule_sets {
            let (_, tested) = world.first_hit_counting(&caps[1..], &[], false);
            narrow_exhaustive += tested;
        }
    });
    BroadPhaseRow {
        devices,
        pruned_s,
        exhaustive_s,
        narrow_pruned,
        narrow_exhaustive,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fleet_runs, repeats) = if quick { (8, 1) } else { (64, 3) };

    // --- Fleet throughput -------------------------------------------------
    let wfs = fleet_workflows(fleet_runs);
    let serial_s = fleet_seconds(&wfs, 1, repeats);
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Thread counts the machine cannot actually run in parallel are
    // skipped: they would only benchmark the scheduler.
    let (to_run, skipped): (Vec<usize>, Vec<usize>) =
        [2usize, 4, 8].into_iter().partition(|&t| t <= hw_threads);
    let threaded: Vec<(usize, f64)> = to_run
        .into_iter()
        .map(|t| (t, fleet_seconds(&wfs, t, repeats)))
        .collect();

    let mut rows = vec![vec![
        "1".to_string(),
        format!("{serial_s:.3}"),
        format!("{:.1}", fleet_runs as f64 / serial_s),
        "1.00".to_string(),
    ]];
    for (t, s) in &threaded {
        rows.push(vec![
            t.to_string(),
            format!("{s:.3}"),
            format!("{:.1}", fleet_runs as f64 / s),
            format!("{:.2}", serial_s / s),
        ]);
    }
    println!("Fleet throughput ({fleet_runs} guarded testbed runs)\n");
    println!(
        "{}",
        render_table(&["threads", "seconds", "runs/sec", "speedup"], &rows)
    );
    if !skipped.is_empty() {
        println!(
            "skipped thread counts {skipped:?}: only {hw_threads} hardware thread(s) available\n"
        );
    }

    // --- Broad-phase speedup ---------------------------------------------
    let bp_sizes: &[usize] = if quick { &[8, 64] } else { &[8, 64, 256] };
    let bp: Vec<BroadPhaseRow> = bp_sizes
        .iter()
        .map(|&d| broadphase_row(d, repeats))
        .collect();
    let bp_rows: Vec<Vec<String>> = bp
        .iter()
        .map(|r| {
            vec![
                r.devices.to_string(),
                format!("{:.1}", r.exhaustive_s * 1e3),
                format!("{:.1}", r.pruned_s * 1e3),
                format!("{:.2}", r.exhaustive_s / r.pruned_s),
                format!("{}", r.narrow_exhaustive),
                format!("{}", r.narrow_pruned),
            ]
        })
        .collect();
    println!("Broad-phase pruning (64-pose sweep, best of {repeats})\n");
    println!(
        "{}",
        render_table(
            &[
                "devices",
                "exhaustive ms",
                "pruned ms",
                "speedup",
                "narrow tests (exh)",
                "narrow tests (bvh)",
            ],
            &bp_rows
        )
    );

    // --- BENCH_fleet.json -------------------------------------------------
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("fleet_runs", Json::Num(fleet_runs as f64)),
        ("repeats", Json::Num(repeats as f64)),
        ("hardware_threads", Json::Num(hw_threads as f64)),
    ]);
    let results = Json::obj([
        (
            "fleet",
            Json::obj([
                ("runs", Json::Num(fleet_runs as f64)),
                ("hardware_threads", Json::Num(hw_threads as f64)),
                (
                    "serial",
                    Json::obj([
                        ("threads", Json::Num(1.0)),
                        ("seconds", Json::Num(serial_s)),
                        ("runs_per_sec", Json::Num(fleet_runs as f64 / serial_s)),
                    ]),
                ),
                (
                    "threaded",
                    Json::Arr(
                        threaded
                            .iter()
                            .map(|(t, s)| {
                                Json::obj([
                                    ("threads", Json::Num(*t as f64)),
                                    ("seconds", Json::Num(*s)),
                                    ("runs_per_sec", Json::Num(fleet_runs as f64 / s)),
                                    ("speedup_vs_serial", Json::Num(serial_s / s)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "skipped_thread_counts",
                    Json::Arr(skipped.iter().map(|&t| Json::Num(t as f64)).collect()),
                ),
                (
                    "skip_reason",
                    if skipped.is_empty() {
                        Json::Null
                    } else {
                        Json::Str(format!(
                            "only {hw_threads} hardware thread(s) available; \
                             oversubscribed counts measure scheduler noise"
                        ))
                    },
                ),
            ]),
        ),
        (
            "broadphase",
            Json::Arr(
                bp.iter()
                    .map(|r| {
                        Json::obj([
                            ("devices", Json::Num(r.devices as f64)),
                            ("exhaustive_seconds", Json::Num(r.exhaustive_s)),
                            ("pruned_seconds", Json::Num(r.pruned_s)),
                            ("speedup", Json::Num(r.exhaustive_s / r.pruned_s)),
                            (
                                "narrow_tests_exhaustive",
                                Json::Num(r.narrow_exhaustive as f64),
                            ),
                            ("narrow_tests_pruned", Json::Num(r.narrow_pruned as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    rabit_bench::schema::write_artifact("fleet", config, results);
}
