//! Lipschitz motion bounds for conservative-advancement trajectory sweeps.
//!
//! The Extended Simulator polls a trajectory on a dense time grid and
//! collision-checks the arm capsules at every sample. Most samples are
//! metres from the nearest obstacle, so the adaptive sweep kernel skips
//! them — but only when it can *prove* the skip is safe. The proof obliges
//! a bound on how far any point of any link capsule can travel between two
//! joint configurations, and that bound is what [`MotionBound`] precomputes
//! from an arm's DH parameters.
//!
//! # The bound
//!
//! Joint `j` rotates everything downstream about an axis through joint
//! origin `pts[j]`. A point at distance `ρ` from the axis moves along a
//! chord of length `2ρ·sin(|Δθ|/2) ≤ ρ·|Δθ|`. Each capsule endpoint
//! `pts[m]` lies within `Σ_{k=j}^{m-1} L_k` of `pts[j]` (where
//! `L_k = √(a_k² + d_k²)` is the rigid length of DH row `k`), so per radian
//! of joint `j`, endpoint `pts[m]` moves at most that far. Changing several
//! joints composes sequentially, and the per-joint radii are
//! config-independent, so for capsule `ℓ`:
//!
//! ```text
//! endpoint displacement(q_a → q_b) ≤ Σ_j reach[j][ℓ] · |Δθ_j|
//! ```
//!
//! The capsule *radius* does not appear: a capsule is the union of balls of
//! radius `r` centred on its segment, so if each segment endpoint moves at
//! most `B`, every surface point of the displaced capsule stays within `B`
//! of the original capsule *as a set* — which is exactly what the clearance
//! argument needs (see DESIGN.md §14).
#![allow(clippy::needless_range_loop)] // index-paired math over fixed-size arrays

use crate::chain::{wrap_to_pi, JointConfig};

/// Number of capsules an [`crate::ArmModel`] occupies: six links plus the
/// gripper (optionally extended by a held object).
pub const CAPSULE_COUNT: usize = 7;

/// Precomputed per-arm Lipschitz bound on Cartesian capsule displacement
/// per radian of each joint. Built by [`crate::ArmModel::motion_bound`];
/// consumed by the adaptive sweep kernel in `rabit-sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionBound {
    /// `reach[j][l]`: max displacement (metres) of any point of capsule `l`
    /// per radian of joint `j`. Zero when joint `j` is distal to capsule `l`.
    reach: [[f64; CAPSULE_COUNT]; 6],
    /// Per-joint flag: limits span a full circle, so deltas may wrap.
    wraps: [bool; 6],
}

impl MotionBound {
    /// Assembles a bound from a precomputed reach matrix and per-joint wrap
    /// flags (see [`crate::JointLimits::spans_full_circle`]).
    pub fn new(reach: [[f64; CAPSULE_COUNT]; 6], wraps: [bool; 6]) -> Self {
        MotionBound { reach, wraps }
    }

    /// Reach entry: metres of capsule-`capsule` motion per radian of joint
    /// `joint`.
    ///
    /// # Panics
    ///
    /// Panics if `joint > 5` or `capsule > 6`.
    #[inline]
    pub fn reach(&self, joint: usize, capsule: usize) -> f64 {
        self.reach[joint][capsule]
    }

    /// The per-joint reach over the whole arm: the largest entry in joint
    /// `joint`'s row (`reach_i` in the `max_move` inequality).
    ///
    /// # Panics
    ///
    /// Panics if `joint > 5`.
    pub fn joint_reach(&self, joint: usize) -> f64 {
        self.reach[joint].iter().fold(0.0, |m, r| m.max(*r))
    }

    /// Upper bound on the displacement of any point of capsule `capsule`
    /// given per-joint *absolute* angle deltas (radians).
    ///
    /// The deltas must soundly cover the motion being bounded: for the
    /// displacement between two end configurations, wrapped deltas are fine
    /// (FK is 2π-periodic); for motion along an executed trajectory — which
    /// interpolates raw joint coordinates and may take the long way around —
    /// pass the accumulated *raw* per-joint variation instead.
    ///
    /// # Panics
    ///
    /// Panics if `capsule > 6`.
    #[inline]
    pub fn capsule_bound(&self, capsule: usize, abs_deltas: &[f64; 6]) -> f64 {
        let mut sum = 0.0;
        for j in 0..6 {
            sum += self.reach[j][capsule] * abs_deltas[j];
        }
        sum
    }

    /// Per-joint absolute deltas between two configurations, wrapped into
    /// `[0, π]` on joints whose limits span a full circle.
    pub fn abs_deltas(&self, a: &JointConfig, b: &JointConfig) -> [f64; 6] {
        let mut out = [0.0; 6];
        for j in 0..6 {
            let raw = b.angle(j) - a.angle(j);
            out[j] = if self.wraps[j] {
                wrap_to_pi(raw).abs()
            } else {
                raw.abs()
            };
        }
        out
    }

    /// Upper bound on the displacement of any point of *any* capsule given
    /// per-joint absolute angle deltas — the whole-arm analogue of
    /// [`MotionBound::capsule_bound`], used by the whole-arm certificate:
    /// when the world is provably free within `free` metres of the arm's
    /// swept bound, every sample whose `whole_arm_bound` stays below
    /// `free` is hit-free for *all* capsules at once.
    ///
    /// The same delta-soundness caveat as [`MotionBound::capsule_bound`]
    /// applies: pass accumulated raw variation when bounding motion along
    /// an executed trajectory.
    #[inline]
    pub fn whole_arm_bound(&self, abs_deltas: &[f64; 6]) -> f64 {
        self.group_bound(0..CAPSULE_COUNT, abs_deltas)
    }

    /// Upper bound on the displacement of any point of any capsule in the
    /// index range `group` — the grouped analogue of
    /// [`MotionBound::whole_arm_bound`]. The certificate splits the arm
    /// into a proximal and a distal capsule group so the slow links near
    /// the platform are not charged for the fast tool's motion (and vice
    /// versa for clearance).
    ///
    /// The same delta-soundness caveat as [`MotionBound::capsule_bound`]
    /// applies: pass accumulated raw variation when bounding motion along
    /// an executed trajectory.
    #[inline]
    pub fn group_bound(&self, group: core::ops::Range<usize>, abs_deltas: &[f64; 6]) -> f64 {
        let mut max = 0.0f64;
        for l in group {
            max = max.max(self.capsule_bound(l, abs_deltas));
        }
        max
    }

    /// Sound upper bound on how far *any* point of *any* capsule travels
    /// between configurations `a` and `b`:
    /// `max_move(q_a, q_b) ≤ Σ_i reach_i · |Δθ_i|`, with wrapped deltas on
    /// full-circle joints (forward kinematics is 2π-periodic, so the wrapped
    /// delta bounds the end-to-end displacement).
    pub fn max_move(&self, a: &JointConfig, b: &JointConfig) -> f64 {
        self.whole_arm_bound(&self.abs_deltas(a, b))
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;
    use crate::JointConfig;

    #[test]
    fn reach_matrix_shape() {
        let arm = presets::viperx300();
        let mb = arm.motion_bound(None);
        for j in 0..6 {
            // Distal joints cannot move proximal capsules.
            for l in 0..j {
                assert_eq!(mb.reach(j, l), 0.0, "joint {j} capsule {l}");
            }
            // Rows shrink as the joint moves distally: less arm downstream.
            if j > 0 {
                for l in 0..7 {
                    assert!(mb.reach(j, l) <= mb.reach(j - 1, l) + 1e-12);
                }
            }
            // The gripper capsule is the farthest-reaching row entry.
            assert_eq!(mb.joint_reach(j), mb.reach(j, 6));
        }
        // Base joint over the gripper capsule sees the whole arm.
        assert!(mb.joint_reach(0) > 0.5);
    }

    #[test]
    fn held_object_extends_the_bound() {
        let arm = presets::ur3e();
        let bare = arm.motion_bound(None);
        let held = arm.motion_bound(Some(&crate::HeldObject::vial()));
        for j in 0..6 {
            assert!(held.reach(j, 6) > bare.reach(j, 6));
            // Link capsules are unaffected by the payload.
            for l in 0..6 {
                assert_eq!(held.reach(j, l), bare.reach(j, l));
            }
        }
    }

    #[test]
    fn max_move_is_zero_for_identical_configs_and_wraps() {
        let arm = presets::viperx300();
        let mb = arm.motion_bound(None);
        let q = JointConfig::new([0.3, -0.8, 0.4, 1.0, -0.2, 2.0]);
        assert_eq!(mb.max_move(&q, &q), 0.0);
        // ViperX base is full-circle: 3.0 → -3.0 is a short move, not ~6 rad.
        let a = JointConfig::new([3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let b = JointConfig::new([-3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let wrapped = 2.0 * std::f64::consts::PI - 6.0;
        assert!((mb.max_move(&a, &b) - mb.joint_reach(0) * wrapped).abs() < 1e-9);
    }
}
