//! The predefined campaign plans behind EXPERIMENTS.md.
//!
//! Each function returns the declarative plan that regenerates one
//! published table; EXPERIMENTS.md cites these by name. Seeds are fixed
//! so the artifacts are reproducible byte-for-byte.

use crate::plan::{CampaignPlan, ExecMode, SubstrateSpec, WorkflowSpec};
use rabit_core::Stage;
use rabit_testbed::RabitStage;

/// The §IV detection matrix: all 16 catalogued bugs × the three study
/// configurations (baseline first — the plan's baseline row), guarded.
/// 48 trials; the artifact's per-substrate detection counts are the
/// paper's 8/12/13-of-16 progression.
pub fn detection_matrix_plan() -> CampaignPlan {
    CampaignPlan::new("detection_matrix", 0x5D1)
        .with_bug_catalog()
        .with_substrate(SubstrateSpec::Study(RabitStage::Baseline))
        .with_substrate(SubstrateSpec::Study(RabitStage::Modified))
        .with_substrate(SubstrateSpec::Study(RabitStage::ModifiedWithSimulator))
}

/// A small matrix for smoke tests and CI: two workflows × two study
/// configurations × guarded+unguarded = 8 trials.
pub fn quick_matrix_plan() -> CampaignPlan {
    CampaignPlan::new("quick_matrix", 0x0B5)
        .with_workflow(WorkflowSpec::Fig5Safe)
        .with_workflow(WorkflowSpec::Bug("bug_a_door_not_reopened".to_string()))
        .with_substrate(SubstrateSpec::Study(RabitStage::Baseline))
        .with_substrate(SubstrateSpec::Study(RabitStage::ModifiedWithSimulator))
        .with_modes(vec![ExecMode::Guarded, ExecMode::Unguarded])
}

/// Table I speed rows: the Fig. 5 safe workflow replayed unguarded on
/// each deployment stage (simulator baseline row first). Lab times plus
/// stage setup costs yield commands/second.
pub fn table1_speed_plan() -> CampaignPlan {
    CampaignPlan::new("table1_speed", 0x71A)
        .with_workflow(WorkflowSpec::Fig5Safe)
        .with_substrate(SubstrateSpec::Stage(Stage::Simulator))
        .with_substrate(SubstrateSpec::Stage(Stage::Testbed))
        .with_substrate(SubstrateSpec::Stage(Stage::Production))
        .with_modes(vec![ExecMode::Unguarded])
}

/// Table I risk rows: all 16 bugs replayed unguarded on each stage; the
/// severity-weighted damage each stage accumulates, scaled by its
/// damage-cost multiplier, is the unguarded-risk column.
pub fn table1_risk_plan() -> CampaignPlan {
    CampaignPlan::new("table1_risk", 0x71B)
        .with_bug_catalog()
        .with_substrate(SubstrateSpec::Stage(Stage::Simulator))
        .with_substrate(SubstrateSpec::Stage(Stage::Testbed))
        .with_substrate(SubstrateSpec::Stage(Stage::Production))
        .with_modes(vec![ExecMode::Unguarded])
}

/// Table I placement rows: the placement probe replayed with
/// `replicates` seeded noise draws per stage; the mean distance between
/// commanded and achieved pose is the measured placement error.
pub fn table1_placement_plan(replicates: usize) -> CampaignPlan {
    CampaignPlan::new("table1_placement", 0x71C)
        .with_workflow(WorkflowSpec::Placement)
        .with_substrate(SubstrateSpec::Stage(Stage::Simulator))
        .with_substrate(SubstrateSpec::Stage(Stage::Testbed))
        .with_substrate(SubstrateSpec::Stage(Stage::Production))
        .with_modes(vec![ExecMode::Unguarded])
        .with_replicates(replicates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_plans_materialize() {
        assert_eq!(detection_matrix_plan().materialize().unwrap().len(), 48);
        assert_eq!(quick_matrix_plan().materialize().unwrap().len(), 8);
        assert_eq!(table1_speed_plan().materialize().unwrap().len(), 3);
        assert_eq!(table1_risk_plan().materialize().unwrap().len(), 48);
        assert_eq!(table1_placement_plan(60).materialize().unwrap().len(), 180);
    }

    #[test]
    fn detection_matrix_baseline_row_is_the_study_baseline() {
        let plan = detection_matrix_plan();
        assert_eq!(
            plan.baseline().map(|s| s.as_str()),
            Some("study:baseline".to_string())
        );
    }
}
