//! Incremental (streaming) rule mining.
//!
//! [`OnlineMiner`] consumes one command at a time and maintains
//! support/confidence counters per candidate rule, so mining a corpus
//! costs memory `O(rules)` — never `O(trace)` — no matter how many
//! commands flow through. The candidate space is the closed guard
//! vocabulary (three [`GuardedAction`]s × two [`Toggle`]s × two required
//! states = 12 counters) plus the ordering rule, so the whole miner is a
//! few hundred bytes of counters regardless of corpus size.
//!
//! [`mine`](crate::mine()) is reimplemented as a batch adapter over this
//! type; the streaming-equivalence suite proves them rule-for-rule
//! identical.
//!
//! # Drift
//!
//! Cumulative counters answer "what held over the whole corpus"; a lab
//! whose conventions *change* needs "what holds **now**". Alongside the
//! cumulative counts, the miner keeps exponentially-decayed counters
//! (multiplied by [`DriftParams::decay`] at every session boundary), so
//! recent sessions dominate. [`OnlineMiner::decayed_rules`] snapshots
//! the rules the decayed evidence currently supports, and the miner logs
//! a [`DriftEvent`] whenever a rule's decayed evidence crosses the
//! promotion thresholds — *emergence* when a new pattern establishes
//! itself, *collapse* when an established rule's support evaporates.
//! Those events (and the decayed snapshot) are what
//! [`RulePromoter`](crate::RulePromoter) feeds into a live rulebase
//! epoch.

use crate::mine::{guard_name, GuardedAction, MineParams, MinedRule, Toggle};
use rabit_devices::{ActionKind, Command, DeviceId};
use rabit_tracer::Trace;
use std::collections::BTreeMap;

/// Decayed re-scoring configuration for drift detection.
///
/// ```
/// use rabit_rad::DriftParams;
///
/// let fast = DriftParams::new().with_decay(0.9).with_min_support(10.0);
/// assert_eq!(fast.decay, 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftParams {
    /// Per-session decay factor applied to the windowed counters (a
    /// session's evidence retains weight `decay^age`). `0.98` keeps an
    /// effective window of ~50 sessions.
    pub decay: f64,
    /// Minimum *decayed* support before a pattern's recent evidence
    /// counts (suppresses flapping at stream start and right after a
    /// collapse).
    pub min_support: f64,
    /// Minimum decayed confidence for a rule to *emerge* as currently
    /// held.
    pub min_confidence: f64,
    /// Hysteresis band below `min_confidence`: an established rule only
    /// collapses once its decayed confidence drops below
    /// `min_confidence - hysteresis`. The decayed window is a small
    /// sample (≈ `1/(1 - decay)` observations), so confidence wobbles a
    /// few percent around its true value; without the band, a rule whose
    /// real confidence sits near the threshold would flap between
    /// emerged and collapsed on every noise excursion. A genuine
    /// convention flip drives confidence towards the noise floor and
    /// sails through the band.
    pub hysteresis: f64,
}

impl Default for DriftParams {
    fn default() -> Self {
        DriftParams {
            decay: 0.98,
            min_support: 20.0,
            min_confidence: 0.9,
            hysteresis: 0.15,
        }
    }
}

impl DriftParams {
    /// The default drift thresholds as a builder starting point.
    pub fn new() -> Self {
        DriftParams::default()
    }

    /// Sets the per-session decay factor (must be in `(0, 1]`).
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }

    /// Sets the minimum decayed support.
    pub fn with_min_support(mut self, min_support: f64) -> Self {
        self.min_support = min_support;
        self
    }

    /// Sets the minimum decayed confidence.
    pub fn with_min_confidence(mut self, min_confidence: f64) -> Self {
        self.min_confidence = min_confidence;
        self
    }

    /// Sets the collapse hysteresis band.
    pub fn with_hysteresis(mut self, hysteresis: f64) -> Self {
        self.hysteresis = hysteresis;
        self
    }
}

/// A rule's decayed evidence crossing the drift thresholds.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftEvent {
    /// A pattern's recent evidence newly supports the rule (includes the
    /// initial establishment of long-held conventions at stream start).
    Emerged {
        /// The rule's interned name.
        name: &'static str,
        /// The session index (0-based) whose boundary logged the event.
        session: u64,
        /// Decayed support at the crossing.
        decayed_support: f64,
        /// Decayed confidence at the crossing.
        decayed_confidence: f64,
    },
    /// An established rule's recent evidence no longer supports it —
    /// support collapse under convention drift.
    Collapsed {
        /// The rule's interned name.
        name: &'static str,
        /// The session index (0-based) whose boundary logged the event.
        session: u64,
        /// Decayed support at the crossing.
        decayed_support: f64,
        /// Decayed confidence at the crossing.
        decayed_confidence: f64,
    },
}

impl DriftEvent {
    /// The rule the event concerns.
    pub fn name(&self) -> &'static str {
        match self {
            DriftEvent::Emerged { name, .. } | DriftEvent::Collapsed { name, .. } => name,
        }
    }

    /// `true` for collapse events.
    pub fn is_collapse(&self) -> bool {
        matches!(self, DriftEvent::Collapsed { .. })
    }
}

impl std::fmt::Display for DriftEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (verb, name, session, support, confidence) = match self {
            DriftEvent::Emerged {
                name,
                session,
                decayed_support,
                decayed_confidence,
            } => (
                "emerged",
                name,
                session,
                decayed_support,
                decayed_confidence,
            ),
            DriftEvent::Collapsed {
                name,
                session,
                decayed_support,
                decayed_confidence,
            } => (
                "collapsed",
                name,
                session,
                decayed_support,
                decayed_confidence,
            ),
        };
        write!(
            f,
            "{name} {verb} at session {session} (decayed support {support:.1}, \
             confidence {confidence:.2})"
        )
    }
}

/// One candidate rule's evidence: cumulative counts (the batch-miner
/// semantics), the current session's deltas, and the decayed window.
#[derive(Debug, Clone, Copy, Default)]
struct Evidence {
    support: u64,
    ok: u64,
    session_support: u32,
    session_ok: u32,
    decayed_support: f64,
    decayed_ok: f64,
    established: bool,
}

impl Evidence {
    fn observe(&mut self, ok: bool) {
        self.support += 1;
        self.session_support += 1;
        if ok {
            self.ok += 1;
            self.session_ok += 1;
        }
    }

    fn confidence(&self) -> f64 {
        if self.support == 0 {
            0.0
        } else {
            self.ok as f64 / self.support as f64
        }
    }

    fn decayed_confidence(&self) -> f64 {
        if self.decayed_support <= 0.0 {
            0.0
        } else {
            self.decayed_ok / self.decayed_support
        }
    }

    /// Rolls the session deltas into the decayed window and returns the
    /// threshold transition, if any (`Some(true)` = emerged,
    /// `Some(false)` = collapsed).
    fn end_session(&mut self, drift: &DriftParams) -> Option<bool> {
        self.decayed_support = self.decayed_support * drift.decay + f64::from(self.session_support);
        self.decayed_ok = self.decayed_ok * drift.decay + f64::from(self.session_ok);
        self.session_support = 0;
        self.session_ok = 0;
        let enough = self.decayed_support >= drift.min_support;
        let confidence = self.decayed_confidence();
        if !self.established && enough && confidence >= drift.min_confidence {
            self.established = true;
            Some(true)
        } else if self.established && enough && confidence < drift.min_confidence - drift.hysteresis
        {
            self.established = false;
            Some(false)
        } else {
            None
        }
    }
}

/// The incremental sequence miner: one [`observe`](OnlineMiner::observe)
/// call per executed command, [`end_session`](OnlineMiner::end_session)
/// at every session boundary. Memory is `O(rules)` plus the per-session
/// replay state (toggle and first-dose maps over the handful of devices
/// a session touches), which is cleared at each boundary.
#[derive(Debug, Clone)]
pub struct OnlineMiner {
    params: MineParams,
    drift: DriftParams,
    guards: BTreeMap<(GuardedAction, Toggle, bool), Evidence>,
    ordering: Evidence,
    events: Vec<DriftEvent>,
    // Per-session replay state, reset at every end_session.
    door_open: BTreeMap<DeviceId, bool>,
    running: BTreeMap<DeviceId, bool>,
    solid_seen: BTreeMap<DeviceId, usize>,
    liquid_seen: BTreeMap<DeviceId, usize>,
    seq_in_session: usize,
    commands_seen: u64,
    sessions_seen: u64,
}

impl OnlineMiner {
    /// A miner with the given emission thresholds and default
    /// [`DriftParams`].
    pub fn new(params: MineParams) -> Self {
        OnlineMiner::with_drift(params, DriftParams::default())
    }

    /// A miner with explicit drift thresholds.
    pub fn with_drift(params: MineParams, drift: DriftParams) -> Self {
        OnlineMiner {
            params,
            drift,
            guards: BTreeMap::new(),
            ordering: Evidence::default(),
            events: Vec::new(),
            door_open: BTreeMap::new(),
            running: BTreeMap::new(),
            solid_seen: BTreeMap::new(),
            liquid_seen: BTreeMap::new(),
            seq_in_session: 0,
            commands_seen: 0,
            sessions_seen: 0,
        }
    }

    /// Consumes one *executed* command. Callers streaming raw traces
    /// should feed [`Trace::executed_commands`] (or use
    /// [`observe_trace`](OnlineMiner::observe_trace), which does).
    pub fn observe(&mut self, cmd: &Command) {
        let idx = self.seq_in_session;
        self.seq_in_session += 1;
        self.commands_seen += 1;

        // Record guarded observations BEFORE applying the command's own
        // toggle effect — a door-open command is observed against the
        // pre-command door state, exactly as the batch replay did.
        let observation: Option<(GuardedAction, &DeviceId)> = match &cmd.action {
            ActionKind::MoveInsideDevice { device } => Some((GuardedAction::EnterDevice, device)),
            ActionKind::StartAction { .. } | ActionKind::DoseSolid { .. } => {
                Some((GuardedAction::StartRunning, &cmd.actor))
            }
            ActionKind::SetDoor { open: true } => Some((GuardedAction::OpenDoor, &cmd.actor)),
            _ => None,
        };
        if let Some((action, device)) = observation {
            if let Some(&open) = self.door_open.get(device) {
                for required in [true, false] {
                    self.guards
                        .entry((action, Toggle::Door, required))
                        .or_default()
                        .observe(open == required);
                }
            }
            if let Some(&run) = self.running.get(device) {
                for required in [true, false] {
                    self.guards
                        .entry((action, Toggle::Running, required))
                        .or_default()
                        .observe(run == required);
                }
            }
        }

        // Apply toggle effects.
        match &cmd.action {
            ActionKind::SetDoor { open } => {
                self.door_open.insert(cmd.actor.clone(), *open);
            }
            ActionKind::StartAction { .. } => {
                self.running.insert(cmd.actor.clone(), true);
            }
            ActionKind::StopAction => {
                self.running.insert(cmd.actor.clone(), false);
            }
            ActionKind::DoseSolid { into, .. } => {
                self.solid_seen.entry(into.clone()).or_insert(idx);
            }
            ActionKind::DoseLiquid { into, .. } => {
                self.liquid_seen.entry(into.clone()).or_insert(idx);
            }
            _ => {}
        }
    }

    /// Closes the current session: scores the per-container ordering
    /// evidence, rolls every counter's decayed window forward (logging
    /// [`DriftEvent`]s on threshold crossings), and clears the
    /// per-session replay state.
    pub fn end_session(&mut self) {
        for (container, &l) in &self.liquid_seen {
            if let Some(&s) = self.solid_seen.get(container) {
                self.ordering.observe(s < l);
            }
        }

        let session = self.sessions_seen;
        for (&(action, toggle, required), evidence) in &mut self.guards {
            if let Some(emerged) = evidence.end_session(&self.drift) {
                self.events.push(drift_event(
                    guard_name(action, toggle, required),
                    emerged,
                    session,
                    evidence,
                ));
            }
        }
        if let Some(emerged) = self.ordering.end_session(&self.drift) {
            self.events.push(drift_event(
                "solid_before_liquid",
                emerged,
                session,
                &self.ordering,
            ));
        }

        self.door_open.clear();
        self.running.clear();
        self.solid_seen.clear();
        self.liquid_seen.clear();
        self.seq_in_session = 0;
        self.sessions_seen += 1;
    }

    /// Feeds one whole trace: every executed command, then the session
    /// boundary.
    pub fn observe_trace(&mut self, trace: &Trace) {
        for cmd in trace.executed_commands() {
            self.observe(cmd);
        }
        self.end_session();
    }

    /// Executed commands observed so far.
    pub fn commands_seen(&self) -> u64 {
        self.commands_seen
    }

    /// Session boundaries observed so far.
    pub fn sessions_seen(&self) -> u64 {
        self.sessions_seen
    }

    /// The mining thresholds this miner emits under.
    pub fn params(&self) -> &MineParams {
        &self.params
    }

    /// The drift thresholds this miner re-scores under.
    pub fn drift_params(&self) -> &DriftParams {
        &self.drift
    }

    /// Snapshot of the rules the *cumulative* evidence supports — the
    /// batch-miner semantics ([`mine`](crate::mine()) returns exactly
    /// this after feeding the whole corpus).
    pub fn rules(&self) -> Vec<MinedRule> {
        let mut out = Vec::new();
        for (&(action, toggle, required), evidence) in &self.guards {
            let confidence = evidence.confidence();
            if evidence.support >= self.params.min_support as u64
                && confidence >= self.params.min_confidence
            {
                out.push(MinedRule::StateGuard {
                    action,
                    toggle,
                    required,
                    support: evidence.support as usize,
                    confidence,
                });
            }
        }
        if self.ordering.support >= self.params.min_support as u64 {
            let confidence = self.ordering.confidence();
            if confidence >= self.params.min_confidence {
                out.push(MinedRule::SolidBeforeLiquid {
                    support: self.ordering.support as usize,
                    confidence,
                });
            }
        }
        out
    }

    /// Snapshot of the rules the *decayed* (recent) evidence supports —
    /// what the lab's conventions look like **now**. A rule qualifies
    /// while it is *established* (its decayed evidence has crossed the
    /// emergence thresholds and not since fallen through the
    /// [`DriftParams::hysteresis`] band), so the set is stable against
    /// sampling wobble in the decayed window. Support counts are the
    /// rounded decayed weights. This is the qualifying set a
    /// [`RulePromoter`](crate::RulePromoter) pushes into a live rulebase
    /// epoch.
    pub fn decayed_rules(&self) -> Vec<MinedRule> {
        let mut out = Vec::new();
        for (&(action, toggle, required), evidence) in &self.guards {
            if evidence.established {
                out.push(MinedRule::StateGuard {
                    action,
                    toggle,
                    required,
                    support: evidence.decayed_support.round() as usize,
                    confidence: evidence.decayed_confidence(),
                });
            }
        }
        if self.ordering.established {
            out.push(MinedRule::SolidBeforeLiquid {
                support: self.ordering.decayed_support.round() as usize,
                confidence: self.ordering.decayed_confidence(),
            });
        }
        out
    }

    /// Every threshold crossing logged so far, in session order. The
    /// initial establishment of stream-start conventions appears here
    /// too; drift shows up as a [`DriftEvent::Collapsed`] followed (or
    /// preceded) by the emergence of the replacement pattern.
    pub fn drift_events(&self) -> &[DriftEvent] {
        &self.events
    }
}

fn drift_event(name: &'static str, emerged: bool, session: u64, evidence: &Evidence) -> DriftEvent {
    if emerged {
        DriftEvent::Emerged {
            name,
            session,
            decayed_support: evidence.decayed_support,
            decayed_confidence: evidence.decayed_confidence(),
        }
    } else {
        DriftEvent::Collapsed {
            name,
            session,
            decayed_support: evidence.decayed_support,
            decayed_confidence: evidence.decayed_confidence(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RadGenParams, TraceStream};
    use crate::mine::{mine, DRIFTED_TRUTH, GROUND_TRUTH};

    fn drifted_params() -> RadGenParams {
        RadGenParams::new()
            .with_sessions(800)
            .with_seed(23)
            .with_drift_at(400)
    }

    #[test]
    fn streaming_matches_batch_on_the_default_corpus() {
        let params = RadGenParams::default();
        let corpus: Vec<_> = TraceStream::new(&params).collect();
        let batch = mine(&corpus, &MineParams::default());

        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&params) {
            miner.observe_trace(&trace);
        }
        assert_eq!(miner.rules(), batch);
        assert_eq!(miner.sessions_seen(), params.sessions as u64);
        assert_eq!(
            miner.commands_seen(),
            corpus
                .iter()
                .map(|t| t.executed_commands().count() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn decayed_window_tracks_the_current_convention() {
        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&drifted_params()) {
            miner.observe_trace(&trace);
        }
        let now: Vec<&str> = miner.decayed_rules().iter().map(MinedRule::name).collect();
        for name in DRIFTED_TRUTH {
            assert!(now.contains(&name), "{name} missing from {now:?}");
        }
        assert!(
            !now.contains(&"start_running_requires_door_open=false"),
            "collapsed rule still held: {now:?}"
        );
        // Cumulative mining over the same stream straddles the drift: the
        // dosing guard is ~50/50 and is mined in neither direction.
        let cumulative: Vec<&str> = miner.rules().iter().map(MinedRule::name).collect();
        assert!(!cumulative.contains(&"start_running_requires_door_open=false"));
        assert!(!cumulative.contains(&"start_running_requires_door_open=true"));
    }

    #[test]
    fn drift_logs_collapse_and_emergence() {
        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&drifted_params()) {
            miner.observe_trace(&trace);
        }
        let events = miner.drift_events();
        let collapse = events
            .iter()
            .find(|e| e.is_collapse() && e.name() == "start_running_requires_door_open=false")
            .expect("dosing-door-closed must collapse after the drift");
        let emergence = events
            .iter()
            .rev()
            .find(|e| !e.is_collapse() && e.name() == "start_running_requires_door_open=true")
            .expect("dosing-door-open must emerge after the drift");
        let (collapse_session, emergence_session) = match (collapse, emergence) {
            (DriftEvent::Collapsed { session: c, .. }, DriftEvent::Emerged { session: e, .. }) => {
                (*c, *e)
            }
            _ => unreachable!(),
        };
        assert!(collapse_session >= 400, "collapse at {collapse_session}");
        assert!(emergence_session >= 400, "emergence at {emergence_session}");
        // Collapse is detected quickly (confidence falls below 0.9 a few
        // sessions in); emergence needs the decayed window to turn over.
        assert!(collapse_session <= emergence_session);
        // Stable conventions never flap.
        assert!(
            !events
                .iter()
                .any(|e| e.is_collapse() && e.name() == "move_robot_inside_requires_door_open=true"),
            "{events:?}"
        );
        assert!(
            !events
                .iter()
                .any(|e| e.is_collapse() && e.name() == "solid_before_liquid"),
            "{events:?}"
        );
    }

    #[test]
    fn stream_without_drift_stays_established() {
        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&RadGenParams::new().with_sessions(400)) {
            miner.observe_trace(&trace);
        }
        assert!(miner.drift_events().iter().all(|e| !e.is_collapse()));
        let now: Vec<&str> = miner.decayed_rules().iter().map(MinedRule::name).collect();
        for name in GROUND_TRUTH {
            assert!(now.contains(&name), "{name} missing from {now:?}");
        }
    }

    #[test]
    fn event_at_a_time_matches_observe_trace() {
        let params = RadGenParams::new().with_sessions(50).with_drift_at(25);
        let mut by_trace = OnlineMiner::new(MineParams::default());
        let mut by_event = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&params) {
            by_trace.observe_trace(&trace);
            for cmd in trace.executed_commands() {
                by_event.observe(cmd);
            }
            by_event.end_session();
        }
        assert_eq!(by_trace.rules(), by_event.rules());
        assert_eq!(by_trace.decayed_rules(), by_event.decayed_rules());
        assert_eq!(by_trace.drift_events(), by_event.drift_events());
    }

    #[test]
    fn miner_state_is_bounded_by_the_rule_vocabulary() {
        let mut miner = OnlineMiner::new(MineParams::default());
        for trace in TraceStream::new(&RadGenParams::new().with_sessions(300)) {
            miner.observe_trace(&trace);
        }
        // 3 actions × 2 toggles × 2 required states is the whole guard
        // candidate space — the counters cannot grow with the corpus.
        assert!(miner.guards.len() <= 12, "guards: {}", miner.guards.len());
        // Session replay state is cleared at every boundary.
        assert!(miner.door_open.is_empty());
        assert!(miner.solid_seen.is_empty());
    }
}
