//! Six-axis robot-arm kinematics for RABIT.
//!
//! RABIT's three stages each drive six-degree-of-freedom serial arms: the
//! production UR3e, and the testbed's ViperX-300 and Niryo Ned2. This crate
//! is the substrate that replaces the physical arms and the vendor URSim
//! simulator:
//!
//! * [`DhParam`] / [`DhChain`] — modified Denavit–Hartenberg description of
//!   a serial arm and its forward kinematics;
//! * [`ArmModel`] — a chain plus joint limits, link radii, and a gripper;
//!   produces the world-space [capsule](rabit_geometry::Capsule) set RABIT's
//!   collision checks consume, including held-object inflation (the paper's
//!   Bug-D fix);
//! * [`ik`] — damped-least-squares inverse kinematics for position targets;
//! * [`trajectory`] — joint-space trajectories sampled for polling, the
//!   motion representation the Extended Simulator inspects;
//! * [`sweep`] — precomputed Lipschitz motion bounds ([`MotionBound`]) that
//!   let the simulator's conservative-advancement kernel skip provably safe
//!   samples;
//! * [`presets`] — parameter sets for the UR3e, ViperX-300, and Ned2.
//!
//! # Example
//!
//! ```
//! use rabit_kinematics::presets;
//!
//! let ur3e = presets::ur3e();
//! let home = ur3e.home_configuration();
//! let pose = ur3e.chain().end_effector_pose(home.angles());
//! assert!(pose.translation.norm() < 1.0); // within the arm's reach
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arm;
mod chain;
pub mod ik;
pub mod presets;
pub mod sweep;
pub mod trajectory;

pub use arm::{capsules_union_bound, ArmModel, GripperState, HeldObject};
pub use chain::{wrap_to_pi, DhChain, DhParam, JointConfig, JointLimits};
pub use sweep::MotionBound;
