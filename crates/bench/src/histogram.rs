//! Shared percentile helpers for latency series.
//!
//! Two conventions coexist in the bench suite and both live here so the
//! binaries stop re-deriving them:
//!
//! * [`percentile_us`] — nearest-rank percentile over a **sorted**
//!   nanosecond series, reported in microseconds. This is what the
//!   latency-under-churn tables print: an actually-observed sample, not
//!   an interpolated value between two.
//! * [`percentile_interp`] — linearly interpolated percentile over an
//!   unsorted `f64` series. `percentile_interp(s, 0.5)` is the classic
//!   midpoint median the [`crate::timing`] harness reports (the median
//!   of `[10, 20]` is `15`, not one of the endpoints).

/// Nearest-rank percentile of a sorted nanosecond series, in µs.
///
/// `p` is a fraction in `[0, 1]`; the rank is `round((len - 1) * p)`,
/// so `p = 0.0` is the minimum and `p = 1.0` the maximum. Returns `0.0`
/// for an empty series.
pub fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted_ns.windows(2).all(|w| w[0] <= w[1]), "input sorted");
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Linearly interpolated percentile of an unsorted `f64` series.
///
/// Sorts a copy, then interpolates between the two samples straddling
/// rank `(len - 1) * p`. Returns `0.0` for an empty series; NaN samples
/// compare as equal and sort arbitrarily among themselves.
pub fn percentile_interp(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (s.len() - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    s[lo] + (s[hi] - s[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_the_service_bench_convention() {
        let sorted: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        // rank(round(99 * 0.5)) = 50 → the 51st sample, 51 µs.
        assert_eq!(percentile_us(&sorted, 0.50), 51.0);
        // rank(round(99 * 0.99)) = 98 → the 99th sample.
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&sorted, 0.0), 1.0);
        assert_eq!(percentile_us(&sorted, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        // A single sample is every percentile.
        assert_eq!(percentile_us(&[2_500], 0.99), 2.5);
    }

    #[test]
    fn interpolated_percentile_takes_midpoints() {
        assert_eq!(percentile_interp(&[10.0, 20.0], 0.5), 15.0);
        assert_eq!(percentile_interp(&[30.0, 10.0, 20.0], 0.5), 20.0);
        assert_eq!(percentile_interp(&[10.0, 20.0], 0.0), 10.0);
        assert_eq!(percentile_interp(&[10.0, 20.0], 1.0), 20.0);
        assert_eq!(percentile_interp(&[], 0.5), 0.0);
        // Quartile of four samples interpolates a quarter of the way.
        assert_eq!(percentile_interp(&[0.0, 10.0, 20.0, 30.0], 0.25), 7.5);
    }
}
