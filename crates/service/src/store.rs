//! The versioned, multi-tenant rule store.
//!
//! [`RuleStore`] keeps one `TenantCell` per tenant: the tenant's
//! current epoch plus an `Arc` to its latest published [`Rulebase`].
//! Every commit — create, update, enable/disable, remove — is
//! copy-on-write: it clones the published rulebase, applies the change,
//! bumps the tenant's epoch, and swaps in a fresh `Arc`. Holders of
//! older [`RulebaseSnapshot`]s are untouched; a validation that started
//! on epoch *N* finishes on epoch *N* while the next command picks up
//! the latest epoch through [`SnapshotSource::snapshot`].
//!
//! Epochs are **per tenant**: commits to one lab never perturb another
//! lab's version history, which is also what makes the broker's
//! cross-tenant parallelism deterministic (only per-tenant order
//! matters).
//!
//! The store is structured for the broker's wire-speed ingestion path:
//!
//! * the tenant map holds `Arc<TenantCell>`s, so the map mutex is only
//!   a directory — it is held for a lookup, never across a commit;
//! * each cell separates the **commit lock** (held across the
//!   copy-on-write clone) from the **publish lock** (held for two `Arc`
//!   clones), so snapshot readers never wait behind a commit in
//!   progress — that is what keeps check latency flat under churn;
//! * [`RuleStore::apply_ops`] commits a whole per-tenant batch with
//!   *one* clone and *one* publication (each op still gets its own
//!   epoch and receipt), which is where the broker's batched admission
//!   gets its throughput;
//! * the published epoch is mirrored into an atomic
//!   ([`RuleStore::epoch_of`] / [`SnapshotSource::snapshot_epoch`]), so
//!   fleet-side snapshot caches can probe for changes without
//!   materialising a snapshot.

use rabit_rulebase::{
    BatchEdit, Rule, RuleId, Rulebase, RulebaseSnapshot, SnapshotSource, TenantId,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A request to add one rule to a tenant's rulebase.
///
/// Modeled on the classic REST shape (`POST /rules`): the payload plus
/// an initial enablement bit, defaulting to enabled.
#[derive(Debug, Clone)]
pub struct CreateRuleRequest {
    /// The rule to add. Its [`RuleId`] must be new to the tenant.
    pub rule: Rule,
    /// Whether the rule starts enabled (`true` unless
    /// [`CreateRuleRequest::disabled`] is used).
    pub is_enabled: bool,
}

impl CreateRuleRequest {
    /// A request adding `rule` enabled.
    pub fn new(rule: Rule) -> Self {
        CreateRuleRequest {
            rule,
            is_enabled: true,
        }
    }

    /// Marks the rule to start disabled (staged but not yet firing).
    pub fn disabled(mut self) -> Self {
        self.is_enabled = false;
        self
    }
}

/// A partial update to one existing rule (`PUT /rules/{id}`): each
/// `Some` field is applied, each `None` leaves the current value. An
/// update with every field `None` is rejected as [`ServiceError::EmptyUpdate`].
#[derive(Debug, Clone, Default)]
pub struct UpdateRuleRequest {
    /// Replacement rule body (checker + description), if any. The
    /// replacement keeps the addressed [`RuleId`]; supplying a rule
    /// carrying a different id is rejected.
    pub rule: Option<Rule>,
    /// New enablement state, if any.
    pub is_enabled: Option<bool>,
}

impl UpdateRuleRequest {
    /// An empty update (rejected unless a field is set).
    pub fn new() -> Self {
        UpdateRuleRequest::default()
    }

    /// Sets the replacement rule body.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Sets the enablement state.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.is_enabled = Some(enabled);
        self
    }
}

/// What a commit did, recorded in its [`RuleCommit`] receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOp {
    /// A rule was added.
    Create,
    /// A rule's body and/or enablement was replaced.
    Update,
    /// A rule was switched on.
    Enable,
    /// A rule was switched off.
    Disable,
    /// A rule was removed.
    Remove,
}

impl fmt::Display for CommitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommitOp::Create => "create",
            CommitOp::Update => "update",
            CommitOp::Enable => "enable",
            CommitOp::Disable => "disable",
            CommitOp::Remove => "remove",
        })
    }
}

/// The receipt of one committed mutation: which tenant, which rule,
/// what happened, and the epoch the commit published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCommit {
    /// The tenant the commit landed in.
    pub tenant: TenantId,
    /// The rule the commit addressed.
    pub rule: RuleId,
    /// What the commit did.
    pub op: CommitOp,
    /// The epoch this commit published (the tenant's previous epoch + 1).
    pub epoch: u64,
}

/// A typed rule-service failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The tenant has never been seeded.
    UnknownTenant(TenantId),
    /// The addressed rule does not exist in the tenant's rulebase.
    UnknownRule {
        /// The tenant addressed.
        tenant: TenantId,
        /// The missing rule.
        rule: RuleId,
    },
    /// A create collided with an existing rule id.
    DuplicateRule {
        /// The tenant addressed.
        tenant: TenantId,
        /// The already-present rule.
        rule: RuleId,
    },
    /// An [`UpdateRuleRequest`] with no fields set.
    EmptyUpdate,
    /// An update supplied a replacement rule whose id differs from the
    /// addressed one (renames are a remove + create, never silent).
    IdMismatch {
        /// The rule the update addressed.
        addressed: RuleId,
        /// The id the replacement body carried.
        supplied: RuleId,
    },
    /// The tenant's bounded ingestion queue had no room and the broker
    /// was asked not to block: the command was shed, nothing committed.
    /// Retrying later is always safe — shedding is all-or-nothing per
    /// tenant group, so per-tenant submission order survives a retry.
    Overloaded(TenantId),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServiceError::UnknownRule { tenant, rule } => {
                write!(f, "tenant {tenant} has no rule {rule}")
            }
            ServiceError::DuplicateRule { tenant, rule } => {
                write!(f, "tenant {tenant} already has rule {rule}")
            }
            ServiceError::EmptyUpdate => f.write_str("update request sets no fields"),
            ServiceError::IdMismatch {
                addressed,
                supplied,
            } => write!(
                f,
                "update addressed rule {addressed} but supplied body for {supplied}"
            ),
            ServiceError::Overloaded(t) => {
                write!(f, "tenant {t} ingestion queue overloaded; command shed")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// One rule mutation. [`RuleStore::apply_ops`] commits a slice of these
/// as a batch; the broker's `RuleCommand` wraps one with a tenant
/// address.
#[derive(Debug, Clone)]
pub enum RuleOp {
    /// Add a rule ([`RuleStore::create_rule`]).
    Create(CreateRuleRequest),
    /// Partially update a rule ([`RuleStore::update_rule`]).
    Update(RuleId, UpdateRuleRequest),
    /// Switch a rule on ([`RuleStore::set_rule_enabled`]).
    Enable(RuleId),
    /// Switch a rule off ([`RuleStore::set_rule_enabled`]).
    Disable(RuleId),
    /// Remove a rule ([`RuleStore::remove_rule`]).
    Remove(RuleId),
}

impl RuleOp {
    /// Shape validation that needs no rulebase — mirrors the pre-checks
    /// of the single-command methods so error precedence is identical
    /// (a malformed update reports its shape error even when the tenant
    /// is unknown).
    fn validate(&self) -> Result<(), ServiceError> {
        if let RuleOp::Update(rule, request) = self {
            if request.rule.is_none() && request.is_enabled.is_none() {
                return Err(ServiceError::EmptyUpdate);
            }
            if let Some(body) = &request.rule {
                if body.id() != rule {
                    return Err(ServiceError::IdMismatch {
                        addressed: rule.clone(),
                        supplied: body.id().clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Applies this op to the working rulebase (through a
    /// [`BatchEdit`] guard, so a whole batch pays one index rebuild).
    /// Either fully applies (returning the addressed rule and commit
    /// kind) or leaves `work` untouched — every check runs before the
    /// first mutation, which is what lets a batch share one
    /// copy-on-write clone.
    fn apply(
        &self,
        tenant: &TenantId,
        work: &mut BatchEdit<'_>,
    ) -> Result<(RuleId, CommitOp), ServiceError> {
        self.validate()?;
        match self {
            RuleOp::Create(request) => {
                let id = request.rule.id().clone();
                if work.rule(&id).is_some() {
                    return Err(ServiceError::DuplicateRule {
                        tenant: tenant.clone(),
                        rule: id,
                    });
                }
                work.push(request.rule.clone());
                if !request.is_enabled {
                    work.set_enabled(&id, false);
                }
                Ok((id, CommitOp::Create))
            }
            RuleOp::Update(rule, request) => {
                if work.rule(rule).is_none() {
                    return Err(ServiceError::UnknownRule {
                        tenant: tenant.clone(),
                        rule: rule.clone(),
                    });
                }
                if let Some(body) = &request.rule {
                    work.update(rule, body.clone());
                }
                if let Some(enabled) = request.is_enabled {
                    work.set_enabled(rule, enabled);
                }
                Ok((rule.clone(), CommitOp::Update))
            }
            RuleOp::Enable(rule) => {
                if !work.set_enabled(rule, true) {
                    return Err(ServiceError::UnknownRule {
                        tenant: tenant.clone(),
                        rule: rule.clone(),
                    });
                }
                Ok((rule.clone(), CommitOp::Enable))
            }
            RuleOp::Disable(rule) => {
                if !work.set_enabled(rule, false) {
                    return Err(ServiceError::UnknownRule {
                        tenant: tenant.clone(),
                        rule: rule.clone(),
                    });
                }
                Ok((rule.clone(), CommitOp::Disable))
            }
            RuleOp::Remove(rule) => {
                if !work.remove(rule) {
                    return Err(ServiceError::UnknownRule {
                        tenant: tenant.clone(),
                        rule: rule.clone(),
                    });
                }
                Ok((rule.clone(), CommitOp::Remove))
            }
        }
    }
}

/// One tenant's row: commit serialisation, the latest publication, and
/// an atomic mirror of the published epoch for lock-free probes.
#[derive(Debug)]
struct TenantCell {
    /// Held across a commit's copy-on-write clone + apply. Separate
    /// from `published` so readers never wait behind a commit.
    commit: Mutex<()>,
    /// `(epoch, publication)` — held only for the swap / the read.
    published: Mutex<(u64, Arc<Rulebase>)>,
    /// Mirror of `published.0`, updated after each publication.
    epoch: AtomicU64,
}

/// The versioned multi-tenant rule store.
///
/// Thread-safe with per-tenant commit serialisation: the tenant map's
/// mutex is a directory lookup, each tenant's commits serialise on its
/// own cell, and snapshot reads are a brief publish-lock + two `Arc`
/// clones. Validation itself never holds any lock — engines work off
/// the immutable snapshots they captured.
#[derive(Debug, Default)]
pub struct RuleStore {
    tenants: Mutex<BTreeMap<TenantId, Arc<TenantCell>>>,
}

impl RuleStore {
    /// An empty store with no tenants.
    pub fn new() -> Self {
        RuleStore::default()
    }

    /// Seeds (or reseeds) a tenant with a full rulebase at epoch
    /// [`rabit_rulebase::STATIC_EPOCH`]. A seeded, never-committed
    /// tenant therefore hands out snapshots indistinguishable from the
    /// pinned path — the bit-identical baseline the differential suite
    /// pins down.
    pub fn seed_tenant(&self, tenant: impl Into<TenantId>, rulebase: Rulebase) -> RulebaseSnapshot {
        let tenant = tenant.into();
        let published = Arc::new(rulebase);
        let cell = Arc::new(TenantCell {
            commit: Mutex::new(()),
            published: Mutex::new((rabit_rulebase::STATIC_EPOCH, Arc::clone(&published))),
            epoch: AtomicU64::new(rabit_rulebase::STATIC_EPOCH),
        });
        let mut tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.insert(tenant.clone(), cell);
        RulebaseSnapshot::published(tenant, rabit_rulebase::STATIC_EPOCH, published)
    }

    /// A store pre-seeded with the default tenant — the drop-in handle
    /// for single-lab setups.
    pub fn single_tenant(rulebase: Rulebase) -> Self {
        let store = RuleStore::new();
        store.seed_tenant(TenantId::default_tenant(), rulebase);
        store
    }

    /// The seeded tenants, in order.
    pub fn tenants(&self) -> Vec<TenantId> {
        let tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.keys().cloned().collect()
    }

    /// The tenant's cell, if seeded.
    fn cell(&self, tenant: &TenantId) -> Option<Arc<TenantCell>> {
        let tenants = self.tenants.lock().expect("rule store poisoned");
        tenants.get(tenant).map(Arc::clone)
    }

    /// The tenant's current epoch, or `None` if unseeded. An atomic
    /// load behind the directory lookup — never waits on a commit.
    pub fn epoch_of(&self, tenant: &TenantId) -> Option<u64> {
        self.cell(tenant)
            .map(|cell| cell.epoch.load(Ordering::Acquire))
    }

    /// The tenant's latest published snapshot, or a typed error for
    /// unseeded tenants ([`SnapshotSource::snapshot`] is the infallible
    /// variant).
    pub fn snapshot_for(&self, tenant: &TenantId) -> Result<RulebaseSnapshot, ServiceError> {
        let cell = self
            .cell(tenant)
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.clone()))?;
        let (epoch, publication) = {
            let published = cell.published.lock().expect("rule store poisoned");
            (published.0, Arc::clone(&published.1))
        };
        Ok(RulebaseSnapshot::published(
            tenant.clone(),
            epoch,
            publication,
        ))
    }

    /// Adds a rule to the tenant's rulebase (`POST /rules`).
    pub fn create_rule(
        &self,
        tenant: &TenantId,
        request: CreateRuleRequest,
    ) -> Result<RuleCommit, ServiceError> {
        self.apply_one(tenant, &RuleOp::Create(request))
    }

    /// Partially updates a rule (`PUT /rules/{id}`).
    pub fn update_rule(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
        request: UpdateRuleRequest,
    ) -> Result<RuleCommit, ServiceError> {
        self.apply_one(tenant, &RuleOp::Update(rule.clone(), request))
    }

    /// Switches a rule on or off without touching its body.
    pub fn set_rule_enabled(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
        enabled: bool,
    ) -> Result<RuleCommit, ServiceError> {
        let op = if enabled {
            RuleOp::Enable(rule.clone())
        } else {
            RuleOp::Disable(rule.clone())
        };
        self.apply_one(tenant, &op)
    }

    /// Removes a rule (`DELETE /rules/{id}`).
    pub fn remove_rule(
        &self,
        tenant: &TenantId,
        rule: &RuleId,
    ) -> Result<RuleCommit, ServiceError> {
        self.apply_one(tenant, &RuleOp::Remove(rule.clone()))
    }

    /// One-op convenience over [`RuleStore::apply_ops`].
    fn apply_one(&self, tenant: &TenantId, op: &RuleOp) -> Result<RuleCommit, ServiceError> {
        self.apply_ops(tenant, std::slice::from_ref(op))
            .pop()
            .expect("one op yields one result")
    }

    /// Commits a batch of ops for one tenant, in order, with **one**
    /// copy-on-write clone and **one** publication.
    ///
    /// Each successful op gets its own epoch (`previous + i`) and
    /// receipt, exactly as if committed one at a time; failed ops get
    /// their typed error and consume no epoch. Only the final state is
    /// published — intermediate states within a batch are never
    /// observable, which is the coarser linearisation that makes
    /// batched admission fast without changing per-tenant order or
    /// epoch history. A batch in which every op fails publishes
    /// nothing.
    pub fn apply_ops(
        &self,
        tenant: &TenantId,
        ops: &[RuleOp],
    ) -> Vec<Result<RuleCommit, ServiceError>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let Some(cell) = self.cell(tenant) else {
            // Unknown tenant: shape errors keep precedence, everything
            // else reports the tenant, matching the one-at-a-time path.
            return ops
                .iter()
                .map(|op| {
                    op.validate()?;
                    Err(ServiceError::UnknownTenant(tenant.clone()))
                })
                .collect();
        };
        let _commit = cell.commit.lock().expect("rule store poisoned");
        let (base_epoch, base) = {
            let published = cell.published.lock().expect("rule store poisoned");
            (published.0, Arc::clone(&published.1))
        };
        let mut work = (*base).clone();
        let mut epoch = base_epoch;
        let mut results = Vec::with_capacity(ops.len());
        {
            // One deferred-index session for the whole batch: the
            // dispatch index rebuilds once when the guard drops, not
            // once per op — nobody can observe `work` until it is
            // published below.
            let mut edit = work.batch_edit();
            for op in ops {
                results.push(op.apply(tenant, &mut edit).map(|(rule, op)| {
                    epoch += 1;
                    RuleCommit {
                        tenant: tenant.clone(),
                        rule,
                        op,
                        epoch,
                    }
                }));
            }
        }
        if epoch > base_epoch {
            let publication = Arc::new(work);
            {
                let mut published = cell.published.lock().expect("rule store poisoned");
                *published = (epoch, publication);
            }
            cell.epoch.store(epoch, Ordering::Release);
        }
        results
    }
}

impl SnapshotSource for RuleStore {
    /// The tenant's latest publication; unknown tenants fall back to an
    /// empty pinned rulebase (detects nothing), per the trait contract.
    fn snapshot(&self, tenant: &TenantId) -> RulebaseSnapshot {
        self.snapshot_for(tenant)
            .unwrap_or_else(|_| RulebaseSnapshot::pinned(Rulebase::new()))
    }

    /// Lock-free epoch probe (modulo the directory lookup), enabling
    /// [`rabit_rulebase::SnapshotCache`] reuse across a fleet.
    fn snapshot_epoch(&self, tenant: &TenantId) -> Option<u64> {
        self.epoch_of(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_rulebase::general;

    fn tenant() -> TenantId {
        TenantId::new("hein")
    }

    fn seeded() -> RuleStore {
        let store = RuleStore::new();
        store.seed_tenant(tenant(), Rulebase::standard());
        store
    }

    #[test]
    fn seeding_publishes_epoch_zero() {
        let store = seeded();
        assert_eq!(store.epoch_of(&tenant()), Some(0));
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.tenant(), &tenant());
        assert_eq!(snap.len(), 11);
        assert_eq!(store.tenants(), vec![tenant()]);
    }

    #[test]
    fn commits_bump_the_epoch_and_publish_fresh_arcs() {
        let store = seeded();
        let before = store.snapshot_for(&tenant()).unwrap();
        let commit = store
            .create_rule(
                &tenant(),
                CreateRuleRequest::new(
                    general::rule_4_no_double_pick()
                        .with_signature(rabit_rulebase::RuleSignature::any()),
                ),
            )
            .expect_err("duplicate id must be rejected");
        assert!(matches!(commit, ServiceError::DuplicateRule { .. }));

        let custom = Rule::new(RuleId::Custom("no-op".into()), "never fires", |_, _, _| {
            None
        });
        let commit = store
            .create_rule(&tenant(), CreateRuleRequest::new(custom))
            .unwrap();
        assert_eq!(commit.epoch, 1);
        assert_eq!(commit.op, CommitOp::Create);
        let after = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.len(), 12);
        // Copy-on-write: the pre-commit holder still sees epoch 0.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.len(), 11);
        assert!(!before.same_publication(&after));
    }

    #[test]
    fn disabled_create_stages_without_firing() {
        let store = seeded();
        let staged = Rule::new(RuleId::Custom("staged".into()), "staged", |_, _, _| None);
        store
            .create_rule(&tenant(), CreateRuleRequest::new(staged).disabled())
            .unwrap();
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.len(), 12);
        assert_eq!(snap.enabled_count(), 11);
        assert_eq!(
            snap.is_enabled(&RuleId::Custom("staged".into())),
            Some(false)
        );
    }

    #[test]
    fn update_validates_shape_and_target() {
        let store = seeded();
        assert_eq!(
            store.update_rule(&tenant(), &RuleId::General(1), UpdateRuleRequest::new()),
            Err(ServiceError::EmptyUpdate)
        );
        let wrong_id = UpdateRuleRequest::new().with_rule(Rule::new(
            RuleId::Custom("other".into()),
            "x",
            |_, _, _| None,
        ));
        assert!(matches!(
            store.update_rule(&tenant(), &RuleId::General(1), wrong_id),
            Err(ServiceError::IdMismatch { .. })
        ));
        assert!(matches!(
            store.update_rule(
                &tenant(),
                &RuleId::Custom("ghost".into()),
                UpdateRuleRequest::new().with_enabled(false)
            ),
            Err(ServiceError::UnknownRule { .. })
        ));
        let commit = store
            .update_rule(
                &tenant(),
                &RuleId::General(1),
                UpdateRuleRequest::new().with_enabled(false),
            )
            .unwrap();
        assert_eq!(commit.epoch, 1);
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.is_enabled(&RuleId::General(1)), Some(false));
    }

    #[test]
    fn failed_commits_publish_nothing() {
        let store = seeded();
        let before = store.snapshot_for(&tenant()).unwrap();
        assert!(store
            .remove_rule(&tenant(), &RuleId::Custom("ghost".into()))
            .is_err());
        assert_eq!(store.epoch_of(&tenant()), Some(0));
        let after = store.snapshot_for(&tenant()).unwrap();
        assert!(before.same_publication(&after), "no new publication");
    }

    #[test]
    fn unknown_tenants_are_typed_errors_but_infallible_sources() {
        let store = seeded();
        let ghost = TenantId::new("ghost");
        assert_eq!(
            store.snapshot_for(&ghost).err(),
            Some(ServiceError::UnknownTenant(ghost.clone()))
        );
        let fallback = store.snapshot(&ghost);
        assert_eq!(fallback.len(), 0, "empty rulebase detects nothing");
        assert_eq!(store.snapshot_epoch(&ghost), None);
        assert!(store
            .set_rule_enabled(&ghost, &RuleId::General(1), false)
            .is_err());
    }

    #[test]
    fn remove_and_reenable_round_trip() {
        let store = seeded();
        let disable = store
            .set_rule_enabled(&tenant(), &RuleId::General(1), false)
            .unwrap();
        assert_eq!(disable.op, CommitOp::Disable);
        let enable = store
            .set_rule_enabled(&tenant(), &RuleId::General(1), true)
            .unwrap();
        assert_eq!(enable.op, CommitOp::Enable);
        assert_eq!(enable.epoch, 2);
        let remove = store.remove_rule(&tenant(), &RuleId::General(1)).unwrap();
        assert_eq!(remove.op, CommitOp::Remove);
        assert_eq!(remove.epoch, 3);
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.len(), 10);
        assert!(snap.rule(&RuleId::General(1)).is_none());
    }

    #[test]
    fn batched_ops_share_one_publication_with_per_op_epochs() {
        let store = seeded();
        let staged = Rule::new(RuleId::Custom("staged".into()), "staged", |_, _, _| None);
        let ops = vec![
            RuleOp::Create(CreateRuleRequest::new(staged).disabled()),
            RuleOp::Disable(RuleId::General(2)),
            RuleOp::Remove(RuleId::Custom("ghost".into())), // fails, no epoch
            RuleOp::Enable(RuleId::Custom("staged".into())),
        ];
        let results = store.apply_ops(&tenant(), &ops);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().epoch, 1);
        assert_eq!(results[1].as_ref().unwrap().epoch, 2);
        assert!(matches!(results[2], Err(ServiceError::UnknownRule { .. })));
        let last = results[3].as_ref().unwrap();
        assert_eq!((last.epoch, last.op), (3, CommitOp::Enable));
        assert_eq!(store.epoch_of(&tenant()), Some(3));
        let snap = store.snapshot_for(&tenant()).unwrap();
        assert_eq!(snap.len(), 12);
        assert_eq!(
            snap.is_enabled(&RuleId::Custom("staged".into())),
            Some(true)
        );
        assert_eq!(snap.is_enabled(&RuleId::General(2)), Some(false));
    }

    #[test]
    fn all_failed_batch_publishes_nothing() {
        let store = seeded();
        let before = store.snapshot_for(&tenant()).unwrap();
        let ops = vec![
            RuleOp::Remove(RuleId::Custom("ghost".into())),
            RuleOp::Update(RuleId::General(1), UpdateRuleRequest::new()),
        ];
        let results = store.apply_ops(&tenant(), &ops);
        assert!(results.iter().all(Result::is_err));
        assert_eq!(results[1], Err(ServiceError::EmptyUpdate));
        assert!(before.same_publication(&store.snapshot_for(&tenant()).unwrap()));
        assert_eq!(store.epoch_of(&tenant()), Some(0));
    }

    #[test]
    fn unknown_tenant_batches_keep_shape_error_precedence() {
        let store = RuleStore::new();
        let ghost = TenantId::new("ghost");
        let ops = vec![
            RuleOp::Disable(RuleId::General(1)),
            RuleOp::Update(RuleId::General(1), UpdateRuleRequest::new()),
        ];
        let results = store.apply_ops(&ghost, &ops);
        assert_eq!(results[0], Err(ServiceError::UnknownTenant(ghost)));
        assert_eq!(results[1], Err(ServiceError::EmptyUpdate));
    }

    #[test]
    fn batched_mutations_match_singles_bit_for_bit() {
        // The same op sequence, once through apply_ops and once through
        // the single-command methods, must yield identical receipts and
        // identical final rulebases.
        let batch_store = seeded();
        let single_store = seeded();
        let rule = |name: &str| {
            Rule::new(
                RuleId::Custom(name.to_string()),
                "never fires",
                |_, _, _| None,
            )
        };
        let ops = vec![
            RuleOp::Create(CreateRuleRequest::new(rule("a"))),
            RuleOp::Create(CreateRuleRequest::new(rule("b")).disabled()),
            RuleOp::Enable(RuleId::Custom("b".into())),
            RuleOp::Update(
                RuleId::Custom("a".into()),
                UpdateRuleRequest::new().with_enabled(false),
            ),
            RuleOp::Remove(RuleId::Custom("a".into())),
            RuleOp::Remove(RuleId::Custom("a".into())), // second remove fails
        ];
        let batched = batch_store.apply_ops(&tenant(), &ops);
        let singles: Vec<_> = ops
            .iter()
            .map(|op| single_store.apply_one(&tenant(), op))
            .collect();
        assert_eq!(batched, singles);
        assert_eq!(
            batch_store.epoch_of(&tenant()),
            single_store.epoch_of(&tenant())
        );
        let b = batch_store.snapshot_for(&tenant()).unwrap();
        let s = single_store.snapshot_for(&tenant()).unwrap();
        assert_eq!(b.len(), s.len());
        assert_eq!(b.enabled_count(), s.enabled_count());
    }
}
