//! The shared envelope for `BENCH_*.json` artifacts.
//!
//! Every benchmark binary that persists results writes one JSON file with
//! the same top-level shape, so downstream tooling (the README perf
//! table, the CI schema check) can consume any artifact without knowing
//! which bench produced it:
//!
//! ```json
//! {
//!   "name": "sweep",
//!   "config": { "quick_mode": false, "laps": 24 },
//!   "results": { "...": "bench-specific payload" }
//! }
//! ```
//!
//! * `name` — the bench binary's name (non-empty string);
//! * `config` — the knobs the run was configured with (object);
//! * `results` — the measured payload (object).
//!
//! [`write_artifact`] builds and writes the envelope; [`validate`]
//! checks an already-parsed artifact (the `bench_schema` binary runs it
//! over every `BENCH_*.json` in the repository).

use rabit_util::Json;

/// Builds the `{name, config, results}` envelope.
pub fn envelope(name: &str, config: Json, results: Json) -> Json {
    Json::obj([
        ("name", Json::Str(name.to_string())),
        ("config", config),
        ("results", results),
    ])
}

/// Checks that `json` is a valid bench artifact envelope: a top-level
/// object carrying a non-empty string `name`, an object `config`, and an
/// object `results`. Extra top-level keys are allowed.
pub fn validate(json: &Json) -> Result<(), String> {
    if json.as_obj().is_none() {
        return Err("top level is not an object".to_string());
    }
    match json.get("name").and_then(Json::as_str) {
        None => return Err("missing or non-string \"name\"".to_string()),
        Some("") => return Err("\"name\" is empty".to_string()),
        Some(_) => {}
    }
    for key in ["config", "results"] {
        match json.get(key) {
            None => return Err(format!("missing \"{key}\"")),
            Some(v) if v.as_obj().is_none() => return Err(format!("\"{key}\" is not an object")),
            Some(_) => {}
        }
    }
    Ok(())
}

/// Writes the enveloped artifact to `BENCH_<name>.json` in the current
/// directory and prints the path.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_artifact(name: &str, config: Json, results: Json) {
    let json = envelope(name, config, results);
    debug_assert!(
        validate(&json).is_ok(),
        "write_artifact builds valid envelopes"
    );
    let path = format!("BENCH_{name}.json");
    std::fs::write(&path, json.to_pretty() + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_and_validates() {
        let json = envelope(
            "sweep",
            Json::obj([("quick_mode", Json::Bool(true))]),
            Json::obj([("speedup", Json::Num(5.0))]),
        );
        validate(&json).expect("fresh envelope is valid");
        let reparsed = Json::parse(&json.to_pretty()).expect("pretty output parses");
        validate(&reparsed).expect("round-tripped envelope is valid");
        assert_eq!(reparsed.get("name").and_then(Json::as_str), Some("sweep"));
    }

    #[test]
    fn validate_rejects_malformed_artifacts() {
        let cases = [
            (Json::Num(3.0), "top level"),
            (Json::obj([("config", Json::obj([]))]), "name"),
            (
                Json::obj([("name", Json::Str("x".into())), ("config", Json::obj([]))]),
                "results",
            ),
            (
                Json::obj([
                    ("name", Json::Str("x".into())),
                    ("config", Json::Num(1.0)),
                    ("results", Json::obj([])),
                ]),
                "config",
            ),
            (
                Json::obj([
                    ("name", Json::Str("".into())),
                    ("config", Json::obj([])),
                    ("results", Json::obj([])),
                ]),
                "name",
            ),
        ];
        for (json, expect) in cases {
            let err = validate(&json).expect_err("malformed artifact must fail");
            assert!(
                err.contains(expect),
                "error {err:?} should mention {expect:?}"
            );
        }
    }
}
