//! Real compute cost of the offline tooling: RAD corpus generation and
//! rule mining, JSON configuration validation, and script parsing.

use rabit_bench::timing::{bench, group};
use rabit_config::{template, to_catalog, validate, LabConfig};
use rabit_rad::{generate_corpus, mine, MineParams, RadGenParams};
use rabit_tracer::{parse_script, AliasTable};
use std::hint::black_box;

fn main() {
    let params = RadGenParams {
        sessions: 100,
        ..RadGenParams::default()
    };
    let corpus = generate_corpus(&params);

    group("rad");
    bench("generate_100_sessions", || {
        generate_corpus(black_box(&params))
    });
    bench("mine_100_sessions", || {
        mine(black_box(&corpus), &MineParams::default())
    });

    let json = template::testbed_template_json();
    let config = template::testbed_template();

    group("config");
    bench("parse_testbed_json", || {
        LabConfig::from_json(black_box(&json)).unwrap()
    });
    bench("validate_testbed", || validate(black_box(&config)));
    bench("to_catalog_testbed", || {
        to_catalog(black_box(&config)).unwrap()
    });

    let aliases = AliasTable::standard();
    let script: String = (0..100)
        .map(|i| format!("viperx.move_pose(0.{i:02}, 0.1, 0.3)\n"))
        .collect();

    group("script");
    bench("parse_100_lines", || {
        parse_script("bench", black_box(&script), &aliases).unwrap()
    });
}
