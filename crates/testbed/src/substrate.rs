//! Deployment substrates over the testbed deck.
//!
//! The testbed deck realises every stage of the promotion pipeline: the
//! Extended Simulator sweeps its cuboid world (stage 1), the physical
//! testbed runs it at TESTBED latency and centimetre noise (stage 2),
//! and the same topology at PRODUCTION latency stands in for the real
//! lab (stage 3, Table I's "same deck, different speeds" comparison).
//!
//! * [`Testbed`] itself implements [`Substrate`] as the canonical
//!   stage-2 backend;
//! * [`TestbedSubstrate`] is a lightweight profile — a [`Stage`] plus a
//!   [`RabitStage`] study configuration — that rebuilds the deck fresh
//!   for every run, so the 16-bug suite can replay against any stage or
//!   configuration without sharing state;
//! * [`Testbed::simulator_substrate`] wires the deck's recipes into a
//!   sim-backed [`SimulatorSubstrate`];
//! * [`Testbed::pipeline`] assembles the full three-stage
//!   [`StagePipeline`].

use crate::env::{rulebase_for, RabitStage, Testbed};
use rabit_core::{FaultPlan, Lab, Stage, StagePipeline, Substrate, TrajectoryValidator};
use rabit_rulebase::{DeviceCatalog, RulebaseSnapshot};
use rabit_sim::SimulatorSubstrate;

/// A stage/configuration profile of the testbed deck implementing
/// [`Substrate`]: fresh labs at the stage's latency, the configuration's
/// rulebase, and (for [`RabitStage::ModifiedWithSimulator`]) a fresh
/// headless Extended Simulator as validator.
#[derive(Debug, Clone)]
pub struct TestbedSubstrate {
    name: String,
    stage: Stage,
    config: RabitStage,
    fault_plan: FaultPlan,
}

impl TestbedSubstrate {
    /// A profile at an explicit stage and study configuration.
    pub fn new(stage: Stage, config: RabitStage) -> Self {
        let tag = match config {
            RabitStage::Baseline => "baseline",
            RabitStage::Modified => "modified",
            RabitStage::ModifiedWithSimulator => "modified+sim",
        };
        TestbedSubstrate {
            name: format!("testbed:{}:{tag}", stage.name().to_lowercase()),
            stage,
            config,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Arms every run of this profile with a fault plan (robustness
    /// sweeps). [`Substrate::instantiate_with`] overrides it per run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// The canonical promotion profile for a stage: modified rules
    /// everywhere, with the Extended Simulator attached only at the
    /// simulator stage (physical stages validate nothing virtually).
    pub fn for_stage(stage: Stage) -> Self {
        let config = if stage == Stage::Simulator {
            RabitStage::ModifiedWithSimulator
        } else {
            RabitStage::Modified
        };
        TestbedSubstrate::new(stage, config)
    }

    /// A study configuration at the physical testbed stage — the three
    /// deployments the §IV uncontrolled study compares (8/12/13 of 16
    /// bugs detected).
    pub fn study(config: RabitStage) -> Self {
        TestbedSubstrate::new(Stage::Testbed, config)
    }

    /// The study configuration this profile runs.
    pub fn config(&self) -> RabitStage {
        self.config
    }
}

impl Substrate for TestbedSubstrate {
    fn name(&self) -> &str {
        &self.name
    }

    fn stage(&self) -> Stage {
        self.stage
    }

    fn build_lab(&self) -> Lab {
        Testbed::build_lab(self.latency())
    }

    fn rulebase(&self) -> RulebaseSnapshot {
        rulebase_for(self.config).into()
    }

    fn catalog(&self) -> DeviceCatalog {
        Testbed::build_catalog()
    }

    fn validator(&self) -> Option<Box<dyn TrajectoryValidator>> {
        (self.config == RabitStage::ModifiedWithSimulator)
            .then(|| Box::new(Testbed::build_extended_simulator(false)) as _)
    }

    fn fault_plan(&self) -> FaultPlan {
        self.fault_plan.clone()
    }
}

/// The assembled testbed is itself the canonical stage-2 substrate:
/// modified rules, TESTBED latency, no virtual validator.
impl Substrate for Testbed {
    fn name(&self) -> &str {
        "testbed"
    }

    fn stage(&self) -> Stage {
        Stage::Testbed
    }

    fn build_lab(&self) -> Lab {
        Testbed::build_lab(self.latency())
    }

    fn rulebase(&self) -> RulebaseSnapshot {
        rulebase_for(RabitStage::Modified).into()
    }

    fn catalog(&self) -> DeviceCatalog {
        self.catalog.clone()
    }
}

impl Testbed {
    /// The sim-backed stage-1 substrate over the testbed deck: fresh
    /// SIMULATED-latency labs from the deck recipe, modified rules, and
    /// a fresh headless Extended Simulator per engine.
    pub fn simulator_substrate() -> SimulatorSubstrate {
        let mut substrate = SimulatorSubstrate::new("testbed:simulator")
            .with_world(Testbed::simulator_world())
            .with_lab(|| Testbed::build_lab(Stage::Simulator.latency()))
            .with_rulebase(|| rulebase_for(RabitStage::Modified))
            .with_catalog(Testbed::build_catalog);
        for (id, model) in Testbed::simulator_arms() {
            substrate = substrate.with_arm(id, model);
        }
        substrate
    }

    /// The full three-stage promotion pipeline over the testbed deck:
    /// Extended Simulator → physical testbed → production profile.
    pub fn pipeline() -> StagePipeline {
        StagePipeline::new()
            .with_substrate(Box::new(Testbed::simulator_substrate()))
            .with_substrate(Box::new(TestbedSubstrate::for_stage(Stage::Testbed)))
            .with_substrate(Box::new(TestbedSubstrate::for_stage(Stage::Production)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflows;
    use rabit_devices::LatencyModel;

    #[test]
    fn study_profiles_match_the_paper_configurations() {
        let base = TestbedSubstrate::study(RabitStage::Baseline);
        let modif = TestbedSubstrate::study(RabitStage::Modified);
        let with_sim = TestbedSubstrate::study(RabitStage::ModifiedWithSimulator);
        assert_eq!(base.rulebase().len(), 15);
        assert_eq!(modif.rulebase().len(), 18);
        assert_eq!(with_sim.rulebase().len(), 18);
        assert!(base.validator().is_none());
        assert!(modif.validator().is_none());
        assert!(with_sim.validator().is_some());
        assert_eq!(base.stage(), Stage::Testbed);
        assert_eq!(base.name(), "testbed:testbed:baseline");
    }

    #[test]
    fn stage_profiles_carry_stage_latency_and_validator() {
        let sim = TestbedSubstrate::for_stage(Stage::Simulator);
        let prod = TestbedSubstrate::for_stage(Stage::Production);
        assert_eq!(sim.config(), RabitStage::ModifiedWithSimulator);
        assert!(sim.validator().is_some());
        assert_eq!(prod.config(), RabitStage::Modified);
        assert!(prod.validator().is_none());
        assert_eq!(sim.latency(), LatencyModel::SIMULATED);
        assert_eq!(prod.latency(), LatencyModel::PRODUCTION);
        assert_eq!(prod.position_noise().sigma(), 0.0005);
    }

    #[test]
    fn testbed_is_the_canonical_stage_two_substrate() {
        let tb = Testbed::new();
        assert_eq!(Substrate::name(&tb), "testbed");
        assert_eq!(tb.stage(), Stage::Testbed);
        assert_eq!(Substrate::rulebase(&tb).len(), 18);
        let (mut lab, mut rabit) = tb.instantiate();
        let wf = workflows::fig5_safe_workflow(&tb.locations);
        let report = rabit.run(&mut lab, wf.commands());
        assert!(report.completed(), "false positive: {:?}", report.alert);
        assert!(lab.damage_log().is_empty());
    }

    #[test]
    fn pipeline_deploys_the_safe_workflow() {
        let pipeline = Testbed::pipeline();
        assert_eq!(pipeline.len(), 3);
        let loc = crate::locations::locations();
        let wf = workflows::fig5_safe_workflow(&loc);
        let report = pipeline.promote(wf.name(), wf.commands());
        assert!(
            report.deployed(),
            "blocked at {:?}: {:?}",
            report.blocked_at(),
            report.stages.last().map(|s| &s.report.alert)
        );
        assert_eq!(report.stages.len(), 3);
        // The simulator stage actually swept trajectories.
        let sim_stage = report.stage(Stage::Simulator).unwrap();
        assert!(sim_stage.report.cache_hits + sim_stage.report.cache_misses > 0);
        assert_eq!(report.total_damage(), 0);
    }
}
