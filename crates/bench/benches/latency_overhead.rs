//! Real compute cost of the end-to-end engine: one guarded step versus
//! one raw device command, and a full guarded workflow run. (The *virtual
//! lab-time* overhead experiment lives in the `latency_overhead` binary;
//! this measures the CPU cost of RABIT's bookkeeping itself.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rabit_production::{solubility, ProductionDeck};
use rabit_tracer::Tracer;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());

    let mut group = c.benchmark_group("engine");
    group.sample_size(30);
    group.bench_function("solubility_unguarded", |b| {
        b.iter_batched(
            ProductionDeck::new,
            |mut deck| {
                let report = Tracer::pass_through(&mut deck.lab).run(black_box(&wf));
                assert!(report.completed());
                black_box(report.executed)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("solubility_guarded", |b| {
        b.iter_batched(
            ProductionDeck::new,
            |mut deck| {
                let mut rabit = deck.rabit();
                let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(black_box(&wf));
                assert!(report.completed());
                black_box(report.executed)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("solubility_guarded_headless_sim", |b| {
        b.iter_batched(
            ProductionDeck::new,
            |mut deck| {
                let mut rabit = deck.rabit_with_simulator(false);
                let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(black_box(&wf));
                assert!(report.completed());
                black_box(report.executed)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
