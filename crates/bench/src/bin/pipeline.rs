//! Promotion-pipeline benchmark.
//!
//! Exercises the canonical three-stage testbed pipeline
//! (`Testbed::pipeline()`: Extended Simulator → physical testbed →
//! production profile) end to end:
//!
//! * **per-stage throughput** — guarded runs of the safe Fig. 5 workflow
//!   per wall-clock second, including per-run lab + engine construction
//!   (a fresh substrate instantiation is part of what a stage costs);
//! * **per-stage detection** — how many of the 16 catalogued bugs each
//!   stage's configuration detects (13 with the simulator attached, 12
//!   on the physical profiles);
//! * **promotion wall-time** — the full gated promotion of the safe
//!   workflow through all stages, and of a buggy one that the first
//!   stage must block.
//!
//! Writes `BENCH_pipeline.json` and prints the results as tables. Run
//! with `cargo run --release -p rabit-bench --bin pipeline`; `--quick`
//! runs a reduced pass for CI smoke checks.

use rabit_bench::report::render_table;
use rabit_buginject::{catalog, run_study_on};
use rabit_core::{PipelineReport, Stage, StagePipeline, Substrate};
use rabit_testbed::{locations, workflows, Testbed};
use rabit_tracer::Workflow;
use rabit_util::Json;
use std::time::Instant;

/// Best-of-N wall-clock seconds for `f`.
fn measure(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct StageRow {
    stage: Stage,
    substrate: String,
    commands_per_sec: f64,
    lab_time_s: f64,
    detected: usize,
    suite_len: usize,
    cache_hits: u64,
    cache_misses: u64,
}

/// Measures one pipeline stage: guarded Fig. 5 throughput plus the
/// 16-bug detection count of the stage's configuration.
fn profile_stage(
    substrate: &dyn Substrate,
    wf: &Workflow,
    runs: usize,
    repeats: usize,
) -> StageRow {
    let mut executed = 0u64;
    let mut lab_time_s = 0.0;
    let mut cache = (0u64, 0u64);
    let wall_s = measure(repeats, || {
        executed = 0;
        lab_time_s = 0.0;
        cache = (0, 0);
        for _ in 0..runs {
            let (mut lab, mut rabit) = substrate.instantiate();
            let report = rabit.run(&mut lab, wf.commands());
            assert!(
                report.completed(),
                "safe workflow alerted at {}: {:?}",
                substrate.name(),
                report.alert
            );
            executed += report.executed as u64;
            lab_time_s += report.lab_time_s;
            cache.0 += report.cache_hits;
            cache.1 += report.cache_misses;
        }
    });
    let study = run_study_on(substrate);
    StageRow {
        stage: substrate.stage(),
        substrate: substrate.name().to_string(),
        commands_per_sec: executed as f64 / wall_s,
        lab_time_s,
        detected: study.detected(),
        suite_len: study.outcomes.len(),
        cache_hits: cache.0,
        cache_misses: cache.1,
    }
}

/// Times one gated promotion, returning the report of the final run.
fn timed_promotion(
    pipeline: &StagePipeline,
    wf: &Workflow,
    repeats: usize,
) -> (PipelineReport, f64) {
    let mut report = None;
    let wall_s = measure(repeats, || {
        report = Some(pipeline.promote(wf.name(), wf.commands()));
    });
    (report.expect("at least one promotion ran"), wall_s)
}

fn promotion_json(report: &PipelineReport, wall_s: f64) -> Json {
    Json::obj([
        ("workflow", Json::Str(report.workflow.clone())),
        ("deployed", Json::Bool(report.deployed())),
        (
            "blocked_at",
            report
                .blocked_at()
                .map_or(Json::Null, |s| Json::Str(s.name().to_string())),
        ),
        ("stages_run", Json::Num(report.stages.len() as f64)),
        ("wall_seconds", Json::Num(wall_s)),
        ("virtual_cost_seconds", Json::Num(report.total_cost_s())),
        ("damage_events", Json::Num(report.total_damage() as f64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (runs, repeats) = if quick { (4, 1) } else { (16, 3) };

    let pipeline = Testbed::pipeline();
    let loc = locations();
    let safe = workflows::fig5_safe_workflow(&loc);

    // --- Per-stage throughput + detection ---------------------------------
    let rows: Vec<StageRow> = pipeline
        .substrates()
        .iter()
        .map(|s| profile_stage(s.as_ref(), &safe, runs, repeats))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stage.name().to_string(),
                r.substrate.clone(),
                format!("{:.0}", r.commands_per_sec),
                format!("{}/{}", r.detected, r.suite_len),
                if r.cache_hits + r.cache_misses > 0 {
                    format!(
                        "{:.2}",
                        r.cache_hits as f64 / (r.cache_hits + r.cache_misses) as f64
                    )
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    println!("Pipeline stages ({runs} guarded runs each, best of {repeats})\n");
    println!(
        "{}",
        render_table(
            &[
                "stage",
                "substrate",
                "cmds/sec",
                "detected",
                "cache hit rate"
            ],
            &table
        )
    );

    // --- Gated promotions -------------------------------------------------
    let (safe_report, safe_s) = timed_promotion(&pipeline, &safe, repeats);
    assert!(safe_report.deployed(), "the safe workflow must deploy");
    // The first catalogued bug (Bug A's shape) must be blocked at the
    // simulator stage: its unsafe command never reaches a physical stage.
    let bugs = catalog();
    let buggy = bugs[0].buggy_workflow(&loc);
    let (buggy_report, buggy_s) = timed_promotion(&pipeline, &buggy, repeats);
    assert!(
        !buggy_report.deployed(),
        "the buggy workflow must be blocked"
    );
    assert_eq!(buggy_report.blocked_at(), Some(Stage::Simulator));

    println!(
        "promotion '{}': deployed through {} stage(s) in {:.3}s wall \
         ({:.0}s virtual incl. setup)",
        safe_report.workflow,
        safe_report.stages.len(),
        safe_s,
        safe_report.total_cost_s()
    );
    println!(
        "promotion '{}': blocked at {} in {:.3}s wall, {} damage events\n",
        buggy_report.workflow,
        buggy_report.blocked_at().expect("blocked").name(),
        buggy_s,
        buggy_report.total_damage()
    );

    // --- BENCH_pipeline.json ----------------------------------------------
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("runs_per_stage", Json::Num(runs as f64)),
    ]);
    let results = Json::obj([
        (
            "stages",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("stage", Json::Str(r.stage.name().to_string())),
                            ("substrate", Json::Str(r.substrate.clone())),
                            ("commands_per_sec", Json::Num(r.commands_per_sec)),
                            ("virtual_lab_seconds", Json::Num(r.lab_time_s)),
                            ("bugs_detected", Json::Num(r.detected as f64)),
                            ("bug_suite_size", Json::Num(r.suite_len as f64)),
                            ("cache_hits", Json::Num(r.cache_hits as f64)),
                            ("cache_misses", Json::Num(r.cache_misses as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "promotions",
            Json::obj([
                ("safe", promotion_json(&safe_report, safe_s)),
                ("buggy", promotion_json(&buggy_report, buggy_s)),
            ]),
        ),
    ]);
    rabit_bench::schema::write_artifact("pipeline", config, results);
}
