//! Scale tests: RABIT under long workflows and crowded decks.

use rabit::core::{Lab, Rabit, RabitConfig};
use rabit::devices::{ActionKind, Command, DeviceType, Hotplate, RobotArm, Vial};
use rabit::geometry::{Aabb, Vec3};
use rabit::production::{solubility, ProductionDeck};
use rabit::rulebase::{DeviceCatalog, DeviceMeta, Rulebase};
use rabit::tracer::{Tracer, Workflow};

/// A thousand-command campaign (many solubility runs back to back) runs
/// guarded without alerts, and the believed state stays coherent
/// throughout.
#[test]
fn thousand_command_campaign() {
    let mut deck = ProductionDeck::new();
    let mut rabit = deck.rabit();
    let single = solubility::solubility_workflow(&solubility::SolubilityParams::default());
    // Repeat the experiment over the same vial: decap → … → cap each run.
    let mut campaign = Workflow::new("campaign");
    let mut runs = 0;
    while campaign.len() + single.len() < 1000 {
        for command in single.commands() {
            campaign.push(command.clone());
        }
        runs += 1;
    }
    assert!(
        runs >= 10,
        "campaign spans {runs} runs, {} commands",
        campaign.len()
    );

    let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(&campaign);
    // The vial saturates with solid after the second run (the 10 mg
    // capacity fills at run 2's dose of 5 mg), at which point rule III-8
    // correctly stops the campaign — partial completion is the expected
    // outcome. What must hold: no damage, and a rule (not physics) ended
    // the run.
    match &report.alert {
        Some(alert) => {
            assert!(alert.to_string().contains("general:8"), "{alert}");
            assert!(report.executed > single.len(), "at least one full run");
        }
        None => panic!("the second dose must exceed the vial capacity"),
    }
    assert!(deck.lab.damage_log().is_empty());
}

/// A crowded deck: a hundred devices, every move checked against every
/// footprint, correctness preserved at the edges of the crowd.
#[test]
fn hundred_device_deck() {
    let mut lab = Lab::new().with_device(RobotArm::new(
        "arm",
        Vec3::new(0.0, 0.0, 0.5),
        Vec3::new(0.0, -0.5, 0.4),
    ));
    let mut catalog = DeviceCatalog::new().with(
        DeviceMeta::new("arm", DeviceType::RobotArm)
            .with_arm_positions(Vec3::new(0.0, 0.0, 0.5), Vec3::new(0.0, -0.5, 0.4)),
    );
    // A 10×10 grid of hotplates, 30 cm apart.
    for i in 0..100 {
        let x = (i % 10) as f64 * 0.3 - 1.5;
        let y = (i / 10) as f64 * 0.3 - 1.5;
        let id = format!("hp_{i}");
        lab.add_device(Hotplate::new(
            id.clone(),
            Aabb::new(Vec3::new(x, y, 0.0), Vec3::new(x + 0.2, y + 0.2, 0.1)),
        ));
        catalog.insert(DeviceMeta::new(id, DeviceType::ActionDevice).with_threshold(340.0));
    }
    lab.add_device(Vial::new("vial", Vec3::new(0.05, 0.05, 0.2)));
    catalog.insert(DeviceMeta::new("vial", DeviceType::Container));

    let mut rabit = Rabit::new(Rulebase::hein_lab(), catalog, RabitConfig::default());
    rabit.initialize(&mut lab);

    // Moving into the gap between devices: fine.
    let gap = Command::new(
        "arm",
        ActionKind::MoveToLocation {
            target: Vec3::new(-1.275, -1.275, 0.3),
        },
    );
    assert!(rabit.step(&mut lab, &gap).is_ok());

    // Moving into hotplate #57 (x: 0.6..0.8, y: 0.0..0.2): blocked, with
    // the right device named.
    let into_57 = Command::new(
        "arm",
        ActionKind::MoveToLocation {
            target: Vec3::new(0.7, 0.1, 0.05),
        },
    );
    let alert = rabit.step(&mut lab, &into_57).unwrap_err();
    assert!(alert.to_string().contains("hp_57"), "{alert}");
    assert!(lab.damage_log().is_empty());
}

/// State snapshots stay proportional to the deck: fetching a 100-device
/// lab yields exactly one entry per device, every time.
#[test]
fn snapshots_scale_with_the_deck() {
    let mut lab = Lab::new();
    for i in 0..100 {
        lab.add_device(Vial::new(format!("v{i}"), Vec3::new(0.0, 0.0, 0.1)));
    }
    for _ in 0..5 {
        let state = lab.fetch_state();
        assert_eq!(state.len(), 100);
    }
}
