//! A small, seeded, deterministic PRNG.
//!
//! xoshiro256** (Blackman & Vigna, public domain) seeded through
//! SplitMix64. Not cryptographic — it exists so that noise models, corpus
//! generators, and property tests are reproducible from a single `u64`
//! seed with no external dependency.

use std::ops::Range;

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Same seed, same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 random bits.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// A standard-normal sample (Box–Muller).
    pub fn random_normal(&mut self) -> f64 {
        let u1 = self.random_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.random_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A uniform unbiased sample in `[0, bound)` via rejection.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject the tail that would bias the modulo.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let v = lo + rng.random_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; fold it back.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            #[allow(unused_comparisons)]
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.bounded_u64(span) as i128) as $ty
            }
        })*
    };
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.random_range(-3.0..7.5f64);
            assert!((-3.0..7.5).contains(&f));
            let u = rng.random_range(0..6usize);
            assert!(u < 6);
            let i = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn integer_sampling_covers_the_range() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut rng = Rng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        let mut rng2 = Rng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng2.random_bool(0.0)));
        let mut rng3 = Rng::seed_from_u64(6);
        assert!((0..100).all(|_| rng3.random_bool(1.0)));
    }

    #[test]
    fn normal_samples_have_unit_moments() {
        let mut rng = Rng::seed_from_u64(9);
        let n = 50_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.random_normal();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
