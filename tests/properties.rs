//! Cross-crate property-based tests: random naive-programmer mutations
//! of the safe workflow must never violate RABIT's safety contract.
//!
//! Hand-rolled property loops: each property replays `CASES`
//! deterministic seeded mutation sequences drawn from the in-tree PRNG.

use rabit::buginject::RabitStage;
use rabit::devices::{ActionKind, Command};
use rabit::geometry::Vec3;
use rabit::testbed::{workflows, Testbed};
use rabit::tracer::{Tracer, Workflow};
use rabit::util::Rng;

const CASES: usize = 256;

/// One random edit in the naive programmer's repertoire: delete a
/// command, swap two commands, corrupt a coordinate, or insert a stray
/// move.
#[derive(Debug, Clone)]
enum Edit {
    Delete(usize),
    Swap(usize, usize),
    CorruptTarget {
        index: usize,
        target: Vec3,
    },
    InsertMove {
        index: usize,
        arm: bool,
        target: Vec3,
    },
}

fn coordinate(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.random_range(-0.6..1.4),
        rng.random_range(-0.6..0.7),
        rng.random_range(-0.1..0.9),
    )
}

fn edit(rng: &mut Rng, len: usize) -> Edit {
    match rng.random_range(0..4u32) {
        0 => Edit::Delete(rng.random_range(0..len)),
        1 => Edit::Swap(rng.random_range(0..len), rng.random_range(0..len)),
        2 => Edit::CorruptTarget {
            index: rng.random_range(0..len),
            target: coordinate(rng),
        },
        _ => Edit::InsertMove {
            index: rng.random_range(0..len + 1),
            arm: rng.random_bool(0.5),
            target: coordinate(rng),
        },
    }
}

fn apply(wf: &mut Workflow, edit: &Edit) {
    match edit {
        Edit::Delete(i) => {
            let i = i % wf.len();
            wf.delete(i);
        }
        Edit::Swap(a, b) => {
            let (a, b) = (a % wf.len(), b % wf.len());
            wf.swap(a, b);
        }
        Edit::CorruptTarget { index, target } => {
            let i = index % wf.len();
            let actor = wf.commands()[i].actor.clone();
            wf.replace(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target: *target }),
            );
        }
        Edit::InsertMove { index, arm, target } => {
            let i = index % (wf.len() + 1);
            let actor = if *arm { "viperx" } else { "ned2" };
            wf.insert(
                i,
                Command::new(actor, ActionKind::MoveToLocation { target: *target }),
            );
        }
    }
}

/// A seeded mutated workflow, or `None` if every command was deleted.
fn mutated_workflow(rng: &mut Rng) -> Option<Workflow> {
    let template = Testbed::new();
    let mut wf = workflows::fig5_safe_workflow(&template.locations);
    let n_edits = rng.random_range(1..3usize);
    for _ in 0..n_edits {
        if wf.is_empty() {
            break;
        }
        let e = edit(rng, 30);
        apply(&mut wf, &e);
    }
    (!wf.is_empty()).then_some(wf)
}

/// Safety contract 1: whatever the naive programmer does, a guarded run
/// never does MORE physical damage than the unguarded run of the same
/// workflow, and a pre-execution alert leaves the lab unharmed up to that
/// point.
#[test]
fn guarded_damage_never_exceeds_unguarded() {
    let mut rng = Rng::seed_from_u64(301);
    for case in 0..CASES {
        let Some(wf) = mutated_workflow(&mut rng) else {
            continue;
        };

        let mut guarded = Testbed::new();
        let mut rabit = guarded.rabit(RabitStage::Modified);
        let greport = Tracer::guarded(&mut guarded.lab, &mut rabit).run(&wf);

        let mut unguarded = Testbed::new();
        let _ = Tracer::pass_through(&mut unguarded.lab).run(&wf);

        assert!(
            guarded.lab.damage_log().len() <= unguarded.lab.damage_log().len(),
            "case {case}: guarded {:?} vs unguarded {:?}",
            guarded.lab.damage_log(),
            unguarded.lab.damage_log()
        );

        // Contract 2: if the run was stopped by a precondition or
        // trajectory alert, the stopping command itself did not execute.
        if let Some(alert) = &greport.alert {
            if matches!(
                alert,
                rabit::core::Alert::InvalidCommand { .. }
                    | rabit::core::Alert::InvalidTrajectory { .. }
            ) {
                assert_eq!(greport.trace.len(), greport.executed + 1, "case {case}");
            }
        }
    }
}

/// Safety contract 3: determinism under mutation — the same mutated
/// workflow produces the identical guarded outcome every time.
#[test]
fn mutated_runs_are_deterministic() {
    let mut rng = Rng::seed_from_u64(302);
    for case in 0..CASES {
        let Some(wf) = mutated_workflow(&mut rng) else {
            continue;
        };

        let run = || {
            let mut tb = Testbed::new();
            let mut rabit = tb.rabit(RabitStage::Modified);
            let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
            (
                report.executed,
                report.alert.map(|a| a.to_string()),
                tb.lab.damage_log().len(),
            )
        };
        assert_eq!(run(), run(), "case {case}");
    }
}
