//! Rigid-transform calibration between robot-arm coordinate frames.
//!
//! The paper (§IV, category 2) attempted to detect collisions between
//! ViperX and Ned2 by "transforming both robot arms' coordinate systems to
//! a global coordinate system using a transformation matrix", which
//! "resulted in an average error of 3 cm between the expected and computed
//! positions" — too coarse for safety decisions, which is why RABIT
//! multiplexes arm motion in time or space instead.
//!
//! This module reproduces that workflow: given noisy point correspondences
//! observed by two arms, fit the least-squares rigid transform (Kabsch
//! algorithm with a 3×3 SVD via Jacobi eigen-decomposition) and measure the
//! residual error. The `frame_error` bench harness uses it to reproduce the
//! ~3 cm figure at testbed noise levels.

#![allow(clippy::needless_range_loop)] // index-paired math over fixed-size arrays

use crate::{Mat3, Pose, Vec3};

/// Error returned by [`fit_rigid_transform`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitTransformError {
    /// Fewer than 3 point correspondences were supplied.
    TooFewPoints {
        /// The number of points supplied.
        got: usize,
    },
    /// The source and target slices have different lengths.
    LengthMismatch {
        /// Number of source points.
        source: usize,
        /// Number of target points.
        target: usize,
    },
    /// The points are (numerically) collinear or coincident, so the
    /// rotation is under-determined.
    Degenerate,
}

impl std::fmt::Display for FitTransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitTransformError::TooFewPoints { got } => {
                write!(f, "need at least 3 point correspondences, got {got}")
            }
            FitTransformError::LengthMismatch { source, target } => {
                write!(f, "source has {source} points but target has {target}")
            }
            FitTransformError::Degenerate => {
                write!(
                    f,
                    "points are collinear or coincident; rotation under-determined"
                )
            }
        }
    }
}

impl std::error::Error for FitTransformError {}

/// Result of a rigid-transform fit.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The fitted transform mapping source-frame points into the target frame.
    pub transform: Pose,
    /// Root-mean-square residual over the correspondences, in the same
    /// units as the input points (metres in RABIT).
    pub rms_error: f64,
    /// Mean (average) residual — the statistic the paper reports (~3 cm).
    pub mean_error: f64,
    /// Largest single-point residual.
    pub max_error: f64,
}

/// Fits the least-squares rigid transform `T` such that
/// `T(source[i]) ≈ target[i]` (Kabsch algorithm).
///
/// # Errors
///
/// Returns an error if fewer than 3 correspondences are given, the slices
/// have different lengths, or the point sets are degenerate (collinear).
pub fn fit_rigid_transform(
    source: &[Vec3],
    target: &[Vec3],
) -> Result<FitResult, FitTransformError> {
    if source.len() != target.len() {
        return Err(FitTransformError::LengthMismatch {
            source: source.len(),
            target: target.len(),
        });
    }
    if source.len() < 3 {
        return Err(FitTransformError::TooFewPoints { got: source.len() });
    }

    let n = source.len() as f64;
    let centroid_s: Vec3 = source.iter().copied().sum::<Vec3>() / n;
    let centroid_t: Vec3 = target.iter().copied().sum::<Vec3>() / n;

    // Cross-covariance H = Σ (s - cs)(t - ct)^T.
    let mut h = [[0.0f64; 3]; 3];
    for (s, t) in source.iter().zip(target.iter()) {
        let ds = *s - centroid_s;
        let dt = *t - centroid_t;
        let dsa = ds.to_array();
        let dta = dt.to_array();
        for (r, row) in h.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v += dsa[r] * dta[c];
            }
        }
    }
    let h = Mat3::from_rows(h);

    let rotation = kabsch_rotation(&h).ok_or(FitTransformError::Degenerate)?;
    let translation = centroid_t - rotation * centroid_s;
    let transform = Pose::new(rotation, translation);

    let mut sum_sq = 0.0;
    let mut sum = 0.0;
    let mut max_err: f64 = 0.0;
    for (s, t) in source.iter().zip(target.iter()) {
        let e = (transform.transform_point(*s) - *t).norm();
        sum_sq += e * e;
        sum += e;
        max_err = max_err.max(e);
    }
    Ok(FitResult {
        transform,
        rms_error: (sum_sq / n).sqrt(),
        mean_error: sum / n,
        max_error: max_err,
    })
}

/// Computes the optimal rotation `R = V * diag(1,1,det(V U^T)) * U^T` from
/// the cross-covariance `H = U Σ V^T`, using an SVD built from the Jacobi
/// eigen-decomposition of the symmetric matrices `H^T H` and `H H^T`.
fn kabsch_rotation(h: &Mat3) -> Option<Mat3> {
    // Eigen-decompose H^T H = V Σ² V^T.
    let hth = h.transpose() * *h;
    let (eigvals, v) = jacobi_eigen_symmetric(&hth);
    // Degenerate if the two largest singular values do not span a plane.
    // Sort eigenvalues descending with matching eigenvectors.
    let mut idx = [0usize, 1, 2];
    idx.sort_by(|&a, &b| eigvals[b].partial_cmp(&eigvals[a]).unwrap());
    let sv: Vec<f64> = idx.iter().map(|&i| eigvals[i].max(0.0).sqrt()).collect();
    if sv[1] <= 1e-12 {
        return None; // rank < 2: collinear points
    }
    let vcols: Vec<Vec3> = idx.iter().map(|&i| v.column(i)).collect();
    // u_i = H v_i / σ_i ; for a near-zero σ₂ use the cross product to
    // complete a right-handed basis.
    let u0 = (*h * vcols[0]) / sv[0];
    let u1 = (*h * vcols[1]) / sv[1];
    let u2 = if sv[2] > 1e-12 {
        (*h * vcols[2]) / sv[2]
    } else {
        u0.cross(u1)
    };
    // Proper rotation: R = V·diag(1,1,d)·Uᵀ with d = det(V)·det(U); applying
    // the diag to U's last column folds the correction into R = V Uᵀ.
    let det_u = u0.cross(u1).dot(u2);
    let det_v = vcols[0].cross(vcols[1]).dot(vcols[2]);
    let u2 = if det_u * det_v < 0.0 { -u2 } else { u2 };
    let v2 = vcols[2];
    let u_mat = Mat3::from_columns(u0, u1, u2);
    let v_mat = Mat3::from_columns(vcols[0], vcols[1], v2);
    // R maps source → target: R = U V^T (with H built as Σ ds dt^T, the
    // optimal rotation is Vᵗ-side; verify orientation by construction).
    let r = u_mat * v_mat.transpose();
    let r = r.transpose(); // H = Σ ds dtᵀ ⇒ R = V Uᵀ = (U Vᵀ)ᵀ
    if r.is_rotation(1e-6) {
        Some(r)
    } else {
        None
    }
}

/// Jacobi eigenvalue iteration for a symmetric 3×3 matrix. Returns the
/// eigenvalues and the matrix whose columns are the eigenvectors.
fn jacobi_eigen_symmetric(m: &Mat3) -> ([f64; 3], Mat3) {
    let mut a = [[0.0f64; 3]; 3];
    for (r, row) in a.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = m.get(r, c);
        }
    }
    let mut v = [[0.0f64; 3]; 3];
    v[0][0] = 1.0;
    v[1][1] = 1.0;
    v[2][2] = 1.0;

    for _ in 0..64 {
        // Find the largest off-diagonal element.
        let (mut p, mut q, mut max) = (0usize, 1usize, a[0][1].abs());
        if a[0][2].abs() > max {
            p = 0;
            q = 2;
            max = a[0][2].abs();
        }
        if a[1][2].abs() > max {
            p = 1;
            q = 2;
            max = a[1][2].abs();
        }
        if max < 1e-15 {
            break;
        }
        let app = a[p][p];
        let aqq = a[q][q];
        let apq = a[p][q];
        let theta = 0.5 * (aqq - app) / apq;
        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
        let c = 1.0 / (t * t + 1.0).sqrt();
        let s = t * c;

        // Apply the rotation A ← JᵀAJ.
        for k in 0..3 {
            let akp = a[k][p];
            let akq = a[k][q];
            a[k][p] = c * akp - s * akq;
            a[k][q] = s * akp + c * akq;
        }
        for k in 0..3 {
            let apk = a[p][k];
            let aqk = a[q][k];
            a[p][k] = c * apk - s * aqk;
            a[q][k] = s * apk + c * aqk;
        }
        for row in v.iter_mut() {
            let vkp = row[p];
            let vkq = row[q];
            row[p] = c * vkp - s * vkq;
            row[q] = s * vkp + c * vkq;
        }
    }
    ([a[0][0], a[1][1], a[2][2]], Mat3::from_rows(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    fn sample_points() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(0.0, 0.4, 0.0),
            Vec3::new(0.0, 0.0, 0.3),
            Vec3::new(0.2, 0.3, 0.1),
            Vec3::new(-0.1, 0.2, 0.25),
        ]
    }

    #[test]
    fn recovers_exact_transform_from_clean_data() {
        let truth = Pose::new(
            Mat3::rotation_axis_angle(Vec3::new(0.2, 1.0, 0.4), 0.8).unwrap(),
            Vec3::new(0.8, -0.1, 0.05),
        );
        let src = sample_points();
        let dst: Vec<Vec3> = src.iter().map(|p| truth.transform_point(*p)).collect();
        let fit = fit_rigid_transform(&src, &dst).unwrap();
        assert!(fit.rms_error < 1e-9, "rms {}", fit.rms_error);
        assert!(fit.mean_error < 1e-9);
        for p in &src {
            let e = (fit.transform.transform_point(*p) - truth.transform_point(*p)).norm();
            assert!(e < 1e-9);
        }
    }

    #[test]
    fn identity_fit() {
        let src = sample_points();
        let fit = fit_rigid_transform(&src, &src).unwrap();
        assert!(fit.rms_error < 1e-12);
        assert!((fit.transform.translation).norm() < 1e-9);
        assert!(fit.transform.rotation.is_rotation(1e-9));
    }

    #[test]
    fn pure_translation_fit() {
        let src = sample_points();
        let shift = Vec3::new(0.1, 0.2, 0.3);
        let dst: Vec<Vec3> = src.iter().map(|p| *p + shift).collect();
        let fit = fit_rigid_transform(&src, &dst).unwrap();
        assert!((fit.transform.translation - shift).norm() < 1e-9);
        assert!(fit.max_error < 1e-9);
    }

    #[test]
    fn noisy_fit_reports_residuals() {
        // Deterministic pseudo-noise keeps the test reproducible.
        let truth = Pose::new(Mat3::rotation_z(0.3), Vec3::new(0.5, 0.0, 0.0));
        let src = sample_points();
        let dst: Vec<Vec3> = src
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let n = 0.01
                    * Vec3::new(
                        ((i * 7 + 1) as f64).sin(),
                        ((i * 13 + 2) as f64).sin(),
                        ((i * 29 + 3) as f64).sin(),
                    );
                truth.transform_point(*p) + n
            })
            .collect();
        let fit = fit_rigid_transform(&src, &dst).unwrap();
        assert!(fit.mean_error > 1e-4, "noise should leave residual");
        assert!(fit.mean_error < 0.03, "fit should still be decent");
        assert!(fit.max_error >= fit.mean_error);
        assert!(fit.rms_error >= fit.mean_error * 0.99);
    }

    #[test]
    fn too_few_points_rejected() {
        let p = [Vec3::ZERO, Vec3::X];
        let err = fit_rigid_transform(&p, &p).unwrap_err();
        assert_eq!(err, FitTransformError::TooFewPoints { got: 2 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = [Vec3::ZERO, Vec3::X, Vec3::Y];
        let b = [Vec3::ZERO, Vec3::X];
        let err = fit_rigid_transform(&a, &b).unwrap_err();
        assert_eq!(
            err,
            FitTransformError::LengthMismatch {
                source: 3,
                target: 2
            }
        );
    }

    #[test]
    fn collinear_points_rejected() {
        let src = [Vec3::ZERO, Vec3::X, Vec3::X * 2.0, Vec3::X * 3.0];
        let err = fit_rigid_transform(&src, &src).unwrap_err();
        assert_eq!(err, FitTransformError::Degenerate);
    }

    #[test]
    fn jacobi_diagonalizes_symmetric_matrix() {
        let m = Mat3::from_rows([[4.0, 1.0, 0.5], [1.0, 3.0, 0.2], [0.5, 0.2, 2.0]]);
        let (vals, vecs) = jacobi_eigen_symmetric(&m);
        // Check M v_i = λ_i v_i for each eigenpair.
        for i in 0..3 {
            let v = vecs.column(i);
            let mv = m * v;
            assert!((mv - v * vals[i]).norm() < 1e-9, "eigenpair {i} failed");
        }
        // Trace is preserved.
        let trace: f64 = vals.iter().sum();
        assert!((trace - 9.0).abs() < 1e-9);
    }
}
