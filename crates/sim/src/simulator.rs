//! The Extended Simulator.
//!
//! The paper augments the vendor's URSim with device cuboids and
//! trajectory polling (§III): "by continuously polling the robot arm's
//! trajectory and comparing it with the 3D objects' coordinates, the
//! Extended Simulator can detect if the robot arm is likely to collide
//! with one of the automation devices and alert the user."
//!
//! [`ExtendedSimulator`] implements `rabit-core`'s
//! [`TrajectoryValidator`], so attaching it to the engine turns
//! `SimAvailable` on in the Fig. 2 algorithm.

use crate::world::{ClearanceScratch, ExclusionMask, SimWorld};
use rabit_core::{CollisionReport, TrajectoryValidator, TrajectoryVerdict};
use rabit_devices::{ActionKind, Command, DeviceId, LabState, StateKey};
use rabit_geometry::broadphase::QueryCache;
use rabit_geometry::{Capsule, Pose, Vec3};
use rabit_kinematics::ik::{solve_position, IkParams};
use rabit_kinematics::sweep::CAPSULE_COUNT;
use rabit_kinematics::trajectory::Trajectory;
use rabit_kinematics::{capsules_union_bound, ArmModel, HeldObject, JointConfig};
use std::collections::BTreeMap;

/// The paper's measured simulator overhead per collision check when the
/// GUI is in the loop (~2 s, §II-C).
pub const GUI_CHECK_LATENCY_S: f64 = 2.0;

/// Headless check latency after bypassing the GUI (the paper's planned
/// deployment optimisation).
pub const HEADLESS_CHECK_LATENCY_S: f64 = 0.02;

/// One simulated arm: its kinematic model and mirrored configuration.
#[derive(Debug, Clone)]
struct SimArm {
    model: ArmModel,
    current: JointConfig,
    /// Set while the arm is inside a device: the configuration it entered
    /// from and the device id (excluded from sweeps until it retracts).
    entered: Option<(JointConfig, DeviceId)>,
}

/// Configuration for the Extended Simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Trajectory polling interval in seconds of motion (the paper polls
    /// the arm continuously; smaller = finer sweep, more checks).
    pub poll_interval_s: f64,
    /// Whether the simulator runs through its GUI (≈2 s per check) or
    /// headless.
    pub gui: bool,
    /// Whether held objects extend the arm geometry (the post-Bug-D
    /// modification).
    pub model_held_objects: bool,
    /// Whether sweeps use the broad-phase AABB index to prune obstacle
    /// candidates before the narrow-phase capsule tests. Verdicts are
    /// identical either way; pruning only changes the work done.
    pub broad_phase: bool,
    /// Whether repeated validations are served from the verdict cache
    /// (keyed on arm, start pose, goal, held object, and world epoch).
    /// Verdicts are identical either way; caching only changes the work
    /// done.
    pub verdict_cache: bool,
    /// Escape hatch: check every polling-grid sample instead of running
    /// the adaptive conservative-advancement kernel. Verdicts (including
    /// the triggering sample) are identical either way; the adaptive
    /// kernel only skips samples it can prove hit-free from measured
    /// clearance and the arm's Lipschitz motion bound.
    pub dense_sampling: bool,
    /// Whether the adaptive kernel tries the whole-arm certificate before
    /// the per-capsule clearance machinery: one free-distance query around
    /// the arm's swept bound can certify a whole run of samples hit-free
    /// at once. Verdicts are identical either way; the certificate only
    /// changes the work done.
    pub whole_arm_certificate: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            poll_interval_s: 0.05,
            gui: true,
            model_held_objects: true,
            broad_phase: true,
            verdict_cache: true,
            dense_sampling: false,
            whole_arm_certificate: true,
        }
    }
}

/// Maximum number of entries the verdict cache retains; beyond it the
/// least-recently-used entry is evicted.
const VERDICT_CACHE_CAPACITY: usize = 512;

/// Maximum number of entries the IK candidate cache retains; when full
/// it is cleared wholesale (the workloads it serves — fleet laps
/// replaying one workflow — revisit a few dozen distinct keys, so
/// wholesale clearing never thrashes in practice).
const IK_CACHE_CAPACITY: usize = 1024;

/// Safety margin (metres) subtracted from measured clearance before it
/// becomes a skip budget. It absorbs the ≲1e-11 overshoot of the cuboid
/// distance query while staying far below any physically meaningful
/// clearance, so the adaptive kernel never skips a sample the dense grid
/// would have flagged.
const CLEARANCE_MARGIN: f64 = 1e-6;

/// Largest clearance (metres) worth measuring: skip runs are bounded by
/// the remaining motion anyway, and capping the probe keeps the
/// broad-phase query for clearance from sweeping in every obstacle on
/// the deck.
const MAX_CLEARANCE_CAP: f64 = 0.6;

/// Number of upcoming samples whose forward kinematics are prefetched in
/// one batched pass when the clearance budget admits no skip at all —
/// the arm is grazing an obstacle, so the next several samples will
/// almost certainly be checked too.
const DENSE_WINDOW: usize = 8;

/// Broad-phase probes in the temporal-coherence cache are inflated by
/// this slack (metres): successive trajectory samples move the probe by
/// at most a few centimetres, so one tree walk serves a whole run of
/// samples.
const QUERY_CACHE_SLACK: f64 = 0.1;

/// Minimum number of skippable samples for a whole-arm certificate span
/// to be accepted. Below it the per-capsule path wins anyway (its skip
/// budgets are per-link and therefore tighter), so the kernel falls
/// through rather than booking a span that saves less than it cost.
const WHOLE_ARM_MIN_SPAN: usize = 3;

/// First capsule of the certificate's *distal* group. The whole-arm
/// certificate probes two capsule groups separately — proximal
/// (`1..CERT_DISTAL_SPLIT`: shoulder and upper arm, slow but pinned
/// near the mounting platform) and distal (`CERT_DISTAL_SPLIT..`:
/// forearm through gripper, fast but usually high above the deck) — so
/// the platform's proximity to the slow links is not charged against
/// the fast links' motion budget, which would collapse every span to a
/// sample or two.
const CERT_DISTAL_SPLIT: usize = 3;

/// Number of upcoming grid samples a clearance probe is sized to cover:
/// each capsule's probe cap is its per-sample motion bound times this
/// horizon (still clamped by its remaining motion and
/// [`MAX_CLEARANCE_CAP`]). Probing farther buys skip runs the sweep
/// rarely gets to spend but drags every obstacle on the deck into the
/// broad-phase candidate set — with horizon-sized probes, links far
/// from everything get an *empty* candidate set and their clearance
/// (= the cap) costs no exact distance evaluations at all, which is
/// what lets the op reduction show up as wall-clock.
const SKIP_HORIZON_SAMPLES: f64 = 8.0;

/// Slack for the clearance probe's own temporal-coherence cache.
/// Clearance probes jump by a whole skip run between anchors — farther
/// than narrow-phase probes move between adjacent samples — so they get
/// a wider superset to stay cache-hot.
const CLEARANCE_CACHE_SLACK: f64 = 0.25;

/// Inverse quantisation step for cache keys: poses within 1e-4 rad (or
/// metres) land in the same bucket. An exact-match confirmation inside
/// the entry guards against aliasing, so quantisation never changes a
/// verdict — it only bounds the key space.
const KEY_QUANT_INV: f64 = 1e4;

fn quant(x: f64) -> i64 {
    (x * KEY_QUANT_INV).round() as i64
}

fn quant3(v: Vec3) -> [i64; 3] {
    [quant(v.x), quant(v.y), quant(v.z)]
}

fn quant6(q: &JointConfig) -> [i64; 6] {
    let a = q.angles();
    [
        quant(a[0]),
        quant(a[1]),
        quant(a[2]),
        quant(a[3]),
        quant(a[4]),
        quant(a[5]),
    ]
}

/// Exact bit pattern of a configuration — the IK-cache key component.
/// Unlike the quantised verdict keys, IK keys are exact: a hit must
/// reproduce the solver's output verbatim, so no aliasing check is
/// needed (distinct inputs cannot share a key).
fn config_bits(q: &JointConfig) -> [u64; 6] {
    let a = q.angles();
    [
        a[0].to_bits(),
        a[1].to_bits(),
        a[2].to_bits(),
        a[3].to_bits(),
        a[4].to_bits(),
        a[5].to_bits(),
    ]
}

/// IK candidate cache key: the arm (its model is fixed per id between
/// [`ExtendedSimulator::add_arm`] calls), the exact start configuration,
/// and the exact target position.
type IkKey = (DeviceId, [u64; 6], [u64; 3]);

/// Quantised goal discriminant inside a [`VerdictKey`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum GoalKey {
    Position([i64; 3]),
    Home,
    Sleep,
    Enter(DeviceId, [i64; 3]),
    Exit,
}

/// Cache key: everything a verdict depends on, quantised. The world
/// epoch is part of the key, so any obstacle mutation implicitly
/// invalidates every prior entry (stale entries age out via LRU) — and
/// the rulebase epoch is composed alongside it, so a live rule commit
/// (create/update/enable/disable) likewise invalidates every verdict
/// computed under the previous rule generation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct VerdictKey {
    arm: DeviceId,
    epoch: u64,
    rulebase_epoch: u64,
    start: [i64; 6],
    goal: GoalKey,
    held: bool,
    entered: Option<DeviceId>,
}

/// Exact (unquantised) goal stored in the entry for aliasing checks.
#[derive(Debug, Clone, PartialEq)]
enum ExactGoal {
    Position(Vec3),
    Home,
    Sleep,
    Enter(DeviceId, Vec3),
    Exit,
}

/// Exact inputs a cached verdict was computed from. Two inputs that
/// quantise to the same [`VerdictKey`] but differ exactly must not share
/// a verdict — this confirmation keeps cached and uncached validation
/// bit-for-bit identical.
#[derive(Debug, Clone, PartialEq)]
struct ExactKey {
    start: JointConfig,
    goal: ExactGoal,
    entered: Option<(JointConfig, DeviceId)>,
}

/// The arm-state side effects of a `Safe` verdict, replayed on a cache
/// hit so the mirrored pose evolves exactly as it would uncached.
#[derive(Debug, Clone)]
struct PostState {
    current: JointConfig,
    entered: Option<(JointConfig, DeviceId)>,
}

#[derive(Debug, Clone)]
struct CachedVerdict {
    exact: ExactKey,
    verdict: TrajectoryVerdict,
    /// `Some` iff the verdict was `Safe` (only safe motions mutate the
    /// mirrored arm state).
    post: Option<PostState>,
    /// Last-use stamp for LRU eviction.
    stamp: u64,
}

/// The Extended Simulator: URSim-equivalent kinematics plus device
/// cuboids and trajectory polling.
#[derive(Debug, Clone)]
pub struct ExtendedSimulator {
    world: SimWorld,
    arms: BTreeMap<DeviceId, SimArm>,
    config: SimConfig,
    /// Count of collision checks performed (for the overhead experiment).
    checks: u64,
    /// Count of narrow-phase obstacle tests (what broad-phase pruning
    /// saves).
    narrow_checks: u64,
    /// Memoized verdicts, keyed on everything a verdict depends on.
    cache: BTreeMap<VerdictKey, CachedVerdict>,
    cache_hits: u64,
    cache_misses: u64,
    /// Monotonic use counter driving LRU eviction.
    cache_stamp: u64,
    /// The rulebase epoch governing the next validation, as reported by
    /// the engine via `note_rulebase_epoch`. Composed into every
    /// [`VerdictKey`] so a rule commit can never serve a stale verdict.
    rulebase_epoch: u64,
    /// Memoised IK candidate lists for position goals. Candidates depend
    /// only on the arm's model, its mirrored start configuration, and
    /// the target — not on the world, the held object, or any config
    /// flag — so repeated commands (fleet laps replaying one workflow,
    /// campaign re-runs) skip the damped-least-squares solves entirely.
    /// Keys are exact bit patterns and hits return the solver's output
    /// verbatim, so validation stays bit-for-bit identical; only the
    /// redundant numeric work is elided.
    ik_cache: BTreeMap<IkKey, Vec<JointConfig>>,
    /// Grid samples the adaptive kernel proved hit-free and skipped.
    samples_skipped: u64,
    /// Per-primitive exact signed-distance evaluations issued by the
    /// adaptive kernel's clearance and free-distance queries.
    distance_queries: u64,
    /// Lane slots pushed through the 4-wide SoA distance kernels,
    /// including padding lanes on ragged tails (i.e. 4 × kernel
    /// invocations) — together with `distance_queries` this measures the
    /// batching efficiency of the clearance path.
    distance_evals_batched: u64,
    /// Whole-arm certificate spans accepted by the adaptive kernel (each
    /// elided the per-capsule machinery for a run of samples).
    certificate_spans: u64,
    /// Temporal-coherence caches for broad-phase queries — one for
    /// narrow-phase probes, one for the wider clearance probes (mixing
    /// them would thrash: the probes differ in size every sample). Both
    /// are valid for the world epoch in `query_cache_epoch`.
    query_cache: QueryCache,
    clearance_cache: QueryCache,
    query_cache_epoch: u64,
    /// Reusable buffers: IK candidates, arm capsules per sample, and
    /// broad-phase candidate indices. Keeping them on the simulator makes
    /// the steady-state sweep allocation-free.
    scratch_candidates: Vec<JointConfig>,
    scratch_capsules: Vec<Capsule>,
    scratch_prune: Vec<usize>,
    /// Exclusion bitset, resolved once per sweep from the exclusion names
    /// and reused across every sample of the trajectory.
    scratch_mask: ExclusionMask,
    /// Packet-query buffers for the batched clearance kernel.
    scratch_clear: ClearanceScratch,
    /// Candidate buffer for whole-arm free-distance queries.
    scratch_free: Vec<usize>,
    /// Adaptive-kernel buffers: the materialised sample grid, the
    /// remaining per-joint variation suffix sums, and the batched-FK
    /// window (configurations in, pose rows out).
    scratch_grid: Vec<(f64, JointConfig)>,
    scratch_suffix: Vec<[f64; 6]>,
    scratch_window: Vec<JointConfig>,
    scratch_poses: Vec<[Pose; 7]>,
}

impl ExtendedSimulator {
    /// Creates a simulator over a static world.
    pub fn new(world: SimWorld, config: SimConfig) -> Self {
        ExtendedSimulator {
            world,
            arms: BTreeMap::new(),
            config,
            checks: 0,
            narrow_checks: 0,
            cache: BTreeMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_stamp: 0,
            rulebase_epoch: 0,
            ik_cache: BTreeMap::new(),
            samples_skipped: 0,
            distance_queries: 0,
            distance_evals_batched: 0,
            certificate_spans: 0,
            query_cache: QueryCache::new(),
            clearance_cache: QueryCache::new(),
            query_cache_epoch: 0,
            scratch_candidates: Vec::new(),
            scratch_capsules: Vec::new(),
            scratch_prune: Vec::new(),
            scratch_mask: ExclusionMask::default(),
            scratch_clear: ClearanceScratch::default(),
            scratch_free: Vec::new(),
            scratch_grid: Vec::new(),
            scratch_suffix: Vec::new(),
            scratch_window: Vec::new(),
            scratch_poses: Vec::new(),
        }
    }

    /// Registers an arm model, mirrored at its home configuration.
    pub fn with_arm(mut self, id: impl Into<DeviceId>, model: ArmModel) -> Self {
        self.add_arm(id, model);
        self
    }

    /// Registers an arm model. Drops any cached verdicts and IK
    /// candidates: a re-registered arm may carry a different model under
    /// the same id.
    pub fn add_arm(&mut self, id: impl Into<DeviceId>, model: ArmModel) {
        let current = model.home_configuration();
        self.arms.insert(
            id.into(),
            SimArm {
                model,
                current,
                entered: None,
            },
        );
        self.cache.clear();
        self.ik_cache.clear();
    }

    /// The world model (to add/remove device cuboids at runtime).
    pub fn world_mut(&mut self) -> &mut SimWorld {
        &mut self.world
    }

    /// The world model.
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Number of collision checks performed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    /// Number of narrow-phase obstacle tests performed so far. With
    /// `broad_phase` enabled this grows far slower than
    /// `checks × obstacles`.
    pub fn narrow_checks_performed(&self) -> u64 {
        self.narrow_checks
    }

    /// Number of polling-grid samples the adaptive sweep kernel proved
    /// hit-free from clearance + motion bounds and therefore skipped.
    /// Always zero with [`SimConfig::dense_sampling`].
    pub fn samples_skipped(&self) -> u64 {
        self.samples_skipped
    }

    /// Number of per-primitive exact signed-distance evaluations the
    /// adaptive sweep kernel issued while measuring clearance and
    /// whole-arm free distance. Always zero with
    /// [`SimConfig::dense_sampling`].
    pub fn distance_queries(&self) -> u64 {
        self.distance_queries
    }

    /// Number of lane slots pushed through the 4-wide SoA distance
    /// kernels (including padding lanes; 4 × kernel invocations). The
    /// ratio `distance_queries / distance_evals_batched` is the lane
    /// occupancy of the batched clearance path.
    pub fn distance_evals_batched(&self) -> u64 {
        self.distance_evals_batched
    }

    /// Number of whole-arm certificate spans the adaptive kernel
    /// accepted. Always zero with [`SimConfig::dense_sampling`] or with
    /// [`SimConfig::whole_arm_certificate`] off.
    pub fn certificate_spans(&self) -> u64 {
        self.certificate_spans
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Mutable configuration access (benchmarks flip
    /// [`SimConfig::verdict_cache`] to compare the cached and uncached
    /// paths). Turning the cache off leaves stale entries in place but
    /// unread; [`ExtendedSimulator::clear_verdict_cache`] drops them.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// Verdict-cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Verdict-cache misses so far (validations that ran the full sweep).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Number of verdicts currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached verdict (the statistics counters are kept).
    pub fn clear_verdict_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of memoised IK candidate lists currently held. A steady
    /// count across repeated workloads means the damped-least-squares
    /// solves are fully amortised; unbounded growth means the keys
    /// (start configuration or target) never repeat.
    pub fn ik_cache_len(&self) -> usize {
        self.ik_cache.len()
    }

    /// The mirrored joint configuration of an arm.
    pub fn arm_configuration(&self, id: &DeviceId) -> Option<JointConfig> {
        self.arms.get(id).map(|a| a.current)
    }

    /// Resolves the Cartesian goal implied by a robot command, if any.
    fn goal_of(&self, command: &Command, state: &LabState) -> Goal {
        match &command.action {
            ActionKind::MoveToLocation { target } => Goal::Position(*target),
            ActionKind::MoveHome => Goal::Joint(JointTarget::Home),
            ActionKind::MoveToSleep => Goal::Joint(JointTarget::Sleep),
            ActionKind::PickObject { object } | ActionKind::PlaceObject { object, into: None } => {
                match state
                    .get(object, &StateKey::Location)
                    .and_then(|v| v.as_position())
                {
                    Some(p) => Goal::Position(p),
                    None => Goal::None,
                }
            }
            ActionKind::MoveOutOfDevice => Goal::Exit,
            ActionKind::PlaceObject {
                object: _,
                into: Some(device),
            }
            | ActionKind::MoveInsideDevice { device } => {
                // Approach point: centred above the device cuboid; the
                // device itself is excluded from the sweep (entering it is
                // the intent; door safety is the rulebase's job).
                match state
                    .get(device, &StateKey::Footprint)
                    .and_then(|v| v.as_box())
                {
                    Some(fp) => {
                        let c = fp.center();
                        Goal::Enter {
                            device: device.clone(),
                            position: Vec3::new(c.x, c.y, fp.max().z + 0.05),
                        }
                    }
                    None => Goal::None,
                }
            }
            _ => Goal::None,
        }
    }

    /// Sweeps a trajectory against the world, returning the first hit as
    /// a structured [`CollisionReport`] (obstacle, link, contact point,
    /// time fraction of the motion).
    ///
    /// By default the adaptive conservative-advancement kernel runs; the
    /// [`SimConfig::dense_sampling`] escape hatch checks every grid
    /// sample. The returned report — including which sample trips — is
    /// identical either way.
    fn sweep(
        &mut self,
        arm_id: &DeviceId,
        trajectory: &Trajectory,
        held: Option<&HeldObject>,
        exclude: &[&str],
    ) -> Option<CollisionReport> {
        if self.config.dense_sampling {
            self.sweep_dense(arm_id, trajectory, held, exclude)
        } else {
            self.sweep_adaptive(arm_id, trajectory, held, exclude)
        }
    }

    /// The dense sweep: every sample of the polling grid is checked.
    ///
    /// Allocation-free in steady state: samples stream from the
    /// trajectory iterator, and the capsule and broad-phase buffers are
    /// reused across samples and across calls.
    fn sweep_dense(
        &mut self,
        arm_id: &DeviceId,
        trajectory: &Trajectory,
        held: Option<&HeldObject>,
        exclude: &[&str],
    ) -> Option<CollisionReport> {
        let mut capsules = std::mem::take(&mut self.scratch_capsules);
        let mut prune = std::mem::take(&mut self.scratch_prune);
        let mut mask = std::mem::take(&mut self.scratch_mask);
        self.world.fill_exclusion_mask(exclude, &mut mask);
        let mut result = None;
        if let Some(arm) = self.arms.get(arm_id) {
            for (fraction, q) in trajectory.samples_every(self.config.poll_interval_s) {
                self.checks += 1;
                arm.model.link_capsules_into(&q, held, &mut capsules);
                // Skip the base link (capsule 0): it is bolted to the
                // mounting platform, so its permanent contact with the
                // platform slab is not a collision.
                let (hit, tested) = self.world.first_hit_detailed_masked(
                    &capsules[1..],
                    &mask,
                    self.config.broad_phase,
                    &mut prune,
                );
                self.narrow_checks += tested;
                if let Some(hit) = hit {
                    result = Some(CollisionReport {
                        device: DeviceId::new(hit.obstacle.name.clone()),
                        // Capsule indices are relative to the slice that
                        // skipped the base link; +1 restores the arm's
                        // own link numbering.
                        link: hit.capsule_index + 1,
                        contact: hit.contact,
                        at_fraction: fraction,
                    });
                    break;
                }
            }
        }
        self.scratch_capsules = capsules;
        self.scratch_prune = prune;
        self.scratch_mask = mask;
        result
    }

    /// The adaptive conservative-advancement sweep.
    ///
    /// At each *checked* sample the kernel measures the clearance of
    /// every arm capsule to the nearest obstacle in one batched,
    /// temporally-cached query ([`SimWorld::clearances_into`]). The
    /// clearances serve two purposes at once:
    ///
    /// 1. **Certificate** — clearance uses the same distance arithmetic
    ///    as the narrow phase, so all-positive clearances *prove* the
    ///    narrow phase would find no hit at this sample; the scan is
    ///    elided entirely. Only when some capsule touches something
    ///    (clearance ≤ 0) does the kernel fall back to the exact
    ///    narrow-phase scan, which decides the verdict precisely as the
    ///    dense kernel would.
    /// 2. **Skip budget** — every upcoming grid sample whose per-capsule
    ///    Lipschitz motion bound (accumulated raw joint deltas ×
    ///    precomputed link reach, [`rabit_kinematics::MotionBound`])
    ///    stays within the clearance minus a safety margin is skipped:
    ///    its capsule set provably lies inside an obstacle-free
    ///    neighbourhood of the checked one, so the dense grid could not
    ///    have flagged it.
    ///
    /// When no skip is possible (the arm grazes an obstacle) the next
    /// few samples will be checked one by one, so their forward
    /// kinematics are prefetched in a single batched pass
    /// ([`DhChain::joint_poses_batch`]). Verdicts — including the
    /// triggering sample index — are identical to
    /// [`ExtendedSimulator::sweep_dense`].
    ///
    /// Broad-phase candidates come from temporal-coherence
    /// [`QueryCache`]s, cleared whenever the world epoch moves; a cached
    /// candidate set is exactly the fresh broad-phase answer, so hits
    /// match the pruned dense path.
    ///
    /// [`DhChain::joint_poses_batch`]: rabit_kinematics::DhChain::joint_poses_batch
    fn sweep_adaptive(
        &mut self,
        arm_id: &DeviceId,
        trajectory: &Trajectory,
        held: Option<&HeldObject>,
        exclude: &[&str],
    ) -> Option<CollisionReport> {
        let epoch = self.world.epoch();
        if epoch != self.query_cache_epoch {
            self.query_cache.clear();
            self.clearance_cache.clear();
            self.query_cache_epoch = epoch;
        }
        let mut capsules = std::mem::take(&mut self.scratch_capsules);
        let mut prune = std::mem::take(&mut self.scratch_prune);
        let mut grid = std::mem::take(&mut self.scratch_grid);
        let mut suffix = std::mem::take(&mut self.scratch_suffix);
        let mut window = std::mem::take(&mut self.scratch_window);
        let mut poses = std::mem::take(&mut self.scratch_poses);
        let mut mask = std::mem::take(&mut self.scratch_mask);
        let mut cscratch = std::mem::take(&mut self.scratch_clear);
        let mut free_scratch = std::mem::take(&mut self.scratch_free);
        self.world.fill_exclusion_mask(exclude, &mut mask);
        let mut result = None;

        if let Some(arm) = self.arms.get(arm_id) {
            grid.clear();
            grid.extend(trajectory.samples_every(self.config.poll_interval_s));
            let n = grid.len();
            // Remaining per-joint total variation from sample i to the
            // end: caps the largest clearance worth measuring at i. Raw
            // (unwrapped) deltas throughout — executed trajectories
            // interpolate raw joint values, so wrap shortcuts would be
            // unsound here.
            suffix.clear();
            suffix.resize(n, [0.0; 6]);
            for i in (0..n.saturating_sub(1)).rev() {
                let mut row = suffix[i + 1];
                for (j, r) in row.iter_mut().enumerate() {
                    *r += (grid[i + 1].1.angle(j) - grid[i].1.angle(j)).abs();
                }
                suffix[i] = row;
            }
            let bound = arm.model.motion_bound(held);

            let report = |hit: crate::world::HitDetail<'_>, fraction: f64| CollisionReport {
                device: DeviceId::new(hit.obstacle.name.clone()),
                // Capsule indices are relative to the slice that skipped
                // the base link; +1 restores the arm's link numbering.
                link: hit.capsule_index + 1,
                contact: hit.contact,
                at_fraction: fraction,
            };

            // `poses` holds prefetched batched FK for
            // `grid[batch_start .. batch_start + poses.len()]`.
            let mut batch_start: Option<usize> = None;
            let mut i = 0;
            'sweep: while i < n {
                self.checks += 1;
                // The base link (capsule 0) is bolted to the platform and
                // exempt from collision — and therefore also irrelevant
                // to the clearance certificate and the skip decision.
                match batch_start {
                    Some(s) if i >= s && i - s < poses.len() => {
                        arm.model
                            .capsules_from_poses(&poses[i - s], held, &mut capsules);
                    }
                    _ => arm
                        .model
                        .link_capsules_into(&grid[i].1, held, &mut capsules),
                }

                // Whole-arm certificate: two free-distance queries, one
                // around the union bound of the proximal capsules and
                // one around the distal ones. When the world is provably
                // free within a positive margin of both probes, the
                // anchor sample is hit-free for every capsule at once —
                // no per-capsule clearances, no narrow phase — and every
                // upcoming sample whose per-group motion bounds stay
                // inside the measured free distances is skipped in the
                // same stroke.
                // Per-sample step deltas at this anchor: the probe caps
                // below are sized to `SKIP_HORIZON_SAMPLES` of them.
                let mut step = [0.0_f64; 6];
                if i + 1 < n {
                    for (j, d) in step.iter_mut().enumerate() {
                        *d = (grid[i + 1].1.angle(j) - grid[i].1.angle(j)).abs();
                    }
                }

                if self.config.whole_arm_certificate && i + 1 < n {
                    let (prox, dist) = capsules[1..].split_at(CERT_DISTAL_SPLIT - 1);
                    if let (Some(probe_p), Some(probe_d)) =
                        (capsules_union_bound(prox), capsules_union_bound(dist))
                    {
                        let group_cap = |group: core::ops::Range<usize>| {
                            (bound.group_bound(group.clone(), &step) * SKIP_HORIZON_SAMPLES)
                                .min(bound.group_bound(group, &suffix[i]))
                                .min(MAX_CLEARANCE_CAP)
                                + CLEARANCE_MARGIN
                        };
                        let (free_p, evals) = self.world.free_distance_masked(
                            &probe_p,
                            &mask,
                            group_cap(1..CERT_DISTAL_SPLIT),
                            &mut free_scratch,
                        );
                        self.distance_queries += evals;
                        let free_d = if free_p > CLEARANCE_MARGIN {
                            let (free_d, evals) = self.world.free_distance_masked(
                                &probe_d,
                                &mask,
                                group_cap(CERT_DISTAL_SPLIT..CAPSULE_COUNT),
                                &mut free_scratch,
                            );
                            self.distance_queries += evals;
                            free_d
                        } else {
                            0.0
                        };
                        if free_p > CLEARANCE_MARGIN && free_d > CLEARANCE_MARGIN {
                            let mut s = 0;
                            while i + s + 1 < n {
                                let cand = &grid[i + s + 1].1;
                                let mut delta = [0.0_f64; 6];
                                for (j, d) in delta.iter_mut().enumerate() {
                                    *d = (cand.angle(j) - grid[i].1.angle(j)).abs();
                                }
                                let move_p = bound.group_bound(1..CERT_DISTAL_SPLIT, &delta);
                                let move_d =
                                    bound.group_bound(CERT_DISTAL_SPLIT..CAPSULE_COUNT, &delta);
                                if move_p > free_p - CLEARANCE_MARGIN
                                    || move_d > free_d - CLEARANCE_MARGIN
                                {
                                    break;
                                }
                                s += 1;
                            }
                            if s >= WHOLE_ARM_MIN_SPAN {
                                self.certificate_spans += 1;
                                self.samples_skipped += s as u64;
                                i += s + 1;
                                continue 'sweep;
                            }
                        }
                    }
                }

                // One batched clearance query per sample: certificate
                // first, skip budget second. Each capsule's cap is the
                // smaller of its remaining motion and its skip horizon —
                // slow links get probes tight enough to exclude even
                // nearby obstacles (empty candidate set, clearance for
                // free), fast links get just enough to fund a full
                // horizon of skips.
                let mut caps = [0.0_f64; CAPSULE_COUNT - 1];
                for (l, cap) in caps.iter_mut().enumerate() {
                    *cap = (bound.capsule_bound(l + 1, &step) * SKIP_HORIZON_SAMPLES)
                        .min(bound.capsule_bound(l + 1, &suffix[i]))
                        .min(MAX_CLEARANCE_CAP)
                        + CLEARANCE_MARGIN;
                }
                let mut clearances = [0.0_f64; CAPSULE_COUNT - 1];
                let (evals, lanes) = self.world.clearances_into_masked(
                    &capsules[1..],
                    &mask,
                    &caps,
                    CLEARANCE_CACHE_SLACK,
                    &mut self.clearance_cache,
                    &mut cscratch,
                    &mut clearances,
                );
                self.distance_queries += evals;
                self.distance_evals_batched += lanes;
                if clearances.iter().any(|&c| c <= 0.0) {
                    // Some capsule touches something: only now is the
                    // exact narrow phase needed, and it decides the
                    // verdict precisely as the dense kernel would.
                    let (hit, tested) = self.world.first_hit_cached_masked(
                        &capsules[1..],
                        &mask,
                        QUERY_CACHE_SLACK,
                        &mut self.query_cache,
                        &mut prune,
                    );
                    self.narrow_checks += tested;
                    if let Some(hit) = hit {
                        result = Some(report(hit, grid[i].0));
                        break 'sweep;
                    }
                }
                if i + 1 >= n {
                    break;
                }

                // Conservative advancement: sample i + s + 1 is skippable
                // when every capsule's motion bound from i stays within
                // its clearance budget.
                let mut s = 0;
                while i + s + 1 < n {
                    let cand = &grid[i + s + 1].1;
                    let mut delta = [0.0_f64; 6];
                    for (j, d) in delta.iter_mut().enumerate() {
                        *d = (cand.angle(j) - grid[i].1.angle(j)).abs();
                    }
                    let fits = (1..CAPSULE_COUNT).all(|l| {
                        bound.capsule_bound(l, &delta) <= clearances[l - 1] - CLEARANCE_MARGIN
                    });
                    if !fits {
                        break;
                    }
                    s += 1;
                }
                if s > 0 {
                    self.samples_skipped += s as u64;
                    i += s + 1;
                    continue;
                }

                // Grazing an obstacle: no skip budget, so the next few
                // samples will each be checked. Prefetch their forward
                // kinematics in one batched pass (unless the current
                // batch already covers the next sample).
                let next = i + 1;
                let covered = matches!(batch_start, Some(s) if next >= s && next - s < poses.len());
                if !covered {
                    let end = (next + DENSE_WINDOW - 1).min(n - 1);
                    window.clear();
                    window.extend(grid[next..=end].iter().map(|(_, q)| *q));
                    arm.model.chain().joint_poses_batch(&window, &mut poses);
                    batch_start = Some(next);
                }
                i = next;
            }
        }
        self.scratch_capsules = capsules;
        self.scratch_prune = prune;
        self.scratch_grid = grid;
        self.scratch_suffix = suffix;
        self.scratch_window = window;
        self.scratch_poses = poses;
        self.scratch_mask = mask;
        self.scratch_clear = cscratch;
        self.scratch_free = free_scratch;
        result
    }

    /// Builds the (quantised, exact) key pair for a validation request.
    /// Callers must have filtered `Goal::None` already.
    fn cache_key(&self, arm_id: &DeviceId, goal: &Goal, held: bool) -> (VerdictKey, ExactKey) {
        let arm = &self.arms[arm_id];
        let (goal_key, exact_goal) = match goal {
            Goal::Position(p) => (GoalKey::Position(quant3(*p)), ExactGoal::Position(*p)),
            Goal::Joint(JointTarget::Home) => (GoalKey::Home, ExactGoal::Home),
            Goal::Joint(JointTarget::Sleep) => (GoalKey::Sleep, ExactGoal::Sleep),
            Goal::Enter { device, position } => (
                GoalKey::Enter(device.clone(), quant3(*position)),
                ExactGoal::Enter(device.clone(), *position),
            ),
            Goal::Exit => (GoalKey::Exit, ExactGoal::Exit),
            Goal::None => unreachable!("Goal::None is filtered before cache lookup"),
        };
        (
            VerdictKey {
                arm: arm_id.clone(),
                epoch: self.world.epoch(),
                rulebase_epoch: self.rulebase_epoch,
                start: quant6(&arm.current),
                goal: goal_key,
                held,
                entered: arm.entered.as_ref().map(|(_, d)| d.clone()),
            },
            ExactKey {
                start: arm.current,
                goal: exact_goal,
                entered: arm.entered.clone(),
            },
        )
    }

    /// Inserts a verdict, evicting the least-recently-used entry at
    /// capacity.
    fn insert_cached(
        &mut self,
        key: VerdictKey,
        exact: ExactKey,
        verdict: TrajectoryVerdict,
        post: Option<PostState>,
    ) {
        if self.cache.len() >= VERDICT_CACHE_CAPACITY && !self.cache.contains_key(&key) {
            let oldest = self
                .cache
                .iter()
                .min_by_key(|(_, v)| v.stamp)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                self.cache.remove(&oldest);
            }
        }
        self.cache_stamp += 1;
        self.cache.insert(
            key,
            CachedVerdict {
                exact,
                verdict,
                post,
                stamp: self.cache_stamp,
            },
        );
    }

    /// Memoised wrapper around [`ik_candidates_into`]. Candidate lists
    /// for a position goal are a pure function of the arm's model, its
    /// mirrored start configuration, and the target, and the numeric
    /// solves behind them dominate a validation's cost by orders of
    /// magnitude over the sweep itself — so workloads that repeat
    /// commands (fleet laps replaying one workflow, campaign re-runs)
    /// pay the damped-least-squares bill once per distinct motion.
    fn ik_candidates_cached(
        &mut self,
        arm_id: &DeviceId,
        target: Vec3,
        out: &mut Vec<JointConfig>,
    ) {
        let arm = &self.arms[arm_id];
        let key: IkKey = (
            arm_id.clone(),
            config_bits(&arm.current),
            [target.x.to_bits(), target.y.to_bits(), target.z.to_bits()],
        );
        if let Some(cached) = self.ik_cache.get(&key) {
            out.clear();
            out.extend_from_slice(cached);
            return;
        }
        ik_candidates_into(&arm.model, &arm.current, target, out);
        if self.ik_cache.len() >= IK_CACHE_CAPACITY {
            self.ik_cache.clear();
        }
        self.ik_cache.insert(key, out.clone());
    }

    /// The full (uncached) validation path: IK candidates, one sweep per
    /// candidate, mirrored-pose update on the first safe trajectory.
    fn validate_uncached(
        &mut self,
        arm_id: &DeviceId,
        goal: Goal,
        held: Option<&HeldObject>,
    ) -> TrajectoryVerdict {
        // Candidate target configurations. Position goals are redundant
        // (6 joints, 3 constraints): the controller picks among postures,
        // so the simulator only reports a collision when *every* feasible
        // posture's trajectory collides — otherwise the arm would simply
        // take the clear path.
        let mut entering: Option<DeviceId> = None;
        let mut exiting = false;
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        // While inside a device, that device stays excluded from sweeps
        // until the arm retracts.
        let still_inside = self.arms[arm_id]
            .entered
            .as_ref()
            .map(|(_, d)| d.to_string());
        let exclude_owned: Option<String> = match goal {
            Goal::None => None,
            Goal::Joint(JointTarget::Home) => {
                candidates.push(self.arms[arm_id].model.home_configuration());
                still_inside
            }
            Goal::Joint(JointTarget::Sleep) => {
                candidates.push(self.arms[arm_id].model.sleep_configuration());
                still_inside
            }
            Goal::Position(p) => {
                self.ik_candidates_cached(arm_id, p, &mut candidates);
                still_inside
            }
            Goal::Enter { device, position } => {
                self.ik_candidates_cached(arm_id, position, &mut candidates);
                let exclude = device.to_string();
                entering = Some(device);
                Some(exclude)
            }
            Goal::Exit => match &self.arms[arm_id].entered {
                // Retract the way it came, device still excluded.
                Some((q_prev, device)) => {
                    exiting = true;
                    candidates.push(*q_prev);
                    Some(device.to_string())
                }
                None => None,
            },
        };

        if candidates.is_empty() {
            // The simulator cannot compute a trajectory either — mirror
            // the real arm and leave the decision to the controller
            // (silent skip / exception).
            self.scratch_candidates = candidates;
            return TrajectoryVerdict::Unavailable;
        }

        let start = self.arms[arm_id].current;
        let exclude_buf: [&str; 1];
        let exclude: &[&str] = match exclude_owned.as_deref() {
            Some(name) => {
                exclude_buf = [name];
                &exclude_buf
            }
            None => &[],
        };
        let mut first_hit: Option<CollisionReport> = None;
        let mut safe = false;
        for &target_config in &candidates {
            let trajectory = Trajectory::linear(start, target_config);
            match self.sweep(arm_id, &trajectory, held, exclude) {
                None => {
                    // Mirror the motion: the simulated arm now rests at
                    // the target, which is what makes the silent-skip
                    // follow-up detection (paper footnote 2) work.
                    if let Some(arm) = self.arms.get_mut(arm_id) {
                        match (&entering, exiting) {
                            (Some(device), _) => {
                                // Re-entering (e.g. a place following a
                                // move-inside) keeps the original
                                // pre-entry pose.
                                let same = arm.entered.as_ref().is_some_and(|(_, d)| d == device);
                                if !same {
                                    arm.entered = Some((arm.current, device.clone()));
                                }
                            }
                            (None, true) => arm.entered = None,
                            (None, false) => {}
                        }
                        arm.current = target_config;
                    }
                    safe = true;
                    break;
                }
                Some(hit) => {
                    first_hit.get_or_insert(hit);
                }
            }
        }
        candidates.clear();
        self.scratch_candidates = candidates;
        if safe {
            return TrajectoryVerdict::Safe;
        }
        TrajectoryVerdict::Collision(first_hit.expect("at least one candidate was swept"))
    }
}

enum Goal {
    Position(Vec3),
    Joint(JointTarget),
    Enter { device: DeviceId, position: Vec3 },
    Exit,
    None,
}

/// Collects up to a handful of distinct IK postures for a position goal
/// into `out` (cleared first): one seeded from the current configuration,
/// plus diversity seeds that flip the shoulder/elbow (elbow-up vs
/// elbow-down and mirrored-base postures). Duplicates (within 0.05 rad
/// L∞) are dropped. The seed set is a fixed array, so the only heap use
/// is `out`'s amortised growth.
fn ik_candidates_into(
    model: &ArmModel,
    current: &JointConfig,
    target: Vec3,
    out: &mut Vec<JointConfig>,
) {
    out.clear();
    // Elbow/shoulder flips of the current posture.
    let flipped = JointConfig::new([
        current.angle(0),
        -current.angle(1),
        -current.angle(2),
        current.angle(3),
        -current.angle(4),
        current.angle(5),
    ]);
    // A raised-wrist seed biases toward elbow-up solutions.
    let mut raised = model.home_configuration();
    raised = raised.with_angle(1, model.limits()[1].clamp(raised.angle(1) + 0.5));
    // Base-facing seeds: rotate the base joint toward the target while
    // keeping the home arm posture — the classic heuristic that steers
    // the iteration away from wrapped-around, elbow-down branches. Both
    // facing conventions are tried (UR-style arms extend along −x at
    // zero base angle).
    let local = model.chain().base().inverse().transform_point(target);
    let facing = local.y.atan2(local.x);
    let face = |theta: f64| {
        model
            .home_configuration()
            .with_angle(0, model.limits()[0].clamp(theta))
    };
    let seeds = [
        *current,
        model.home_configuration(),
        flipped,
        raised,
        face(facing),
        face(facing + std::f64::consts::PI),
    ];

    for seed in seeds {
        if let Ok(q) = solve_position(model, &seed, target, &IkParams::default()) {
            if !out.iter().any(|o| o.max_joint_delta(&q) < 0.05) {
                out.push(q);
            }
        }
    }
    // Prefer postures that keep the arm body high: sort by descending
    // lowest point, so collision-free "natural" paths are swept first.
    out.sort_by(|a, b| {
        let la = model.lowest_point(a, None);
        let lb = model.lowest_point(b, None);
        lb.partial_cmp(&la).unwrap_or(std::cmp::Ordering::Equal)
    });
}

enum JointTarget {
    Home,
    Sleep,
}

impl TrajectoryValidator for ExtendedSimulator {
    fn validate(&mut self, command: &Command, state: &LabState) -> TrajectoryVerdict {
        if !self.arms.contains_key(&command.actor) {
            return TrajectoryVerdict::Unavailable;
        }
        let goal = self.goal_of(command, state);
        if matches!(goal, Goal::None) {
            return TrajectoryVerdict::Unavailable;
        }

        // Does the arm hold something? Only modelled after the Bug-D fix.
        let held = if self.config.model_held_objects {
            state
                .get_id(&command.actor, &StateKey::Holding)
                .flatten()
                .map(|_| HeldObject::vial())
        } else {
            None
        };

        if !self.config.verdict_cache {
            return self.validate_uncached(&command.actor, goal, held.as_ref());
        }

        // Cache lookup. The quantised key narrows to one bucket; the
        // exact-input confirmation inside the entry rules out aliasing,
        // so a hit is guaranteed to reproduce the uncached verdict —
        // including the mirrored-pose side effects, replayed from the
        // stored post-state.
        let (key, exact) = self.cache_key(&command.actor, &goal, held.is_some());
        if let Some(entry) = self.cache.get_mut(&key) {
            if entry.exact == exact {
                self.cache_stamp += 1;
                entry.stamp = self.cache_stamp;
                let verdict = entry.verdict.clone();
                let post = entry.post.clone();
                self.cache_hits += 1;
                if let Some(post) = post {
                    if let Some(arm) = self.arms.get_mut(&command.actor) {
                        arm.current = post.current;
                        arm.entered = post.entered;
                    }
                }
                return verdict;
            }
        }
        self.cache_misses += 1;

        let verdict = self.validate_uncached(&command.actor, goal, held.as_ref());

        let post = matches!(verdict, TrajectoryVerdict::Safe).then(|| {
            let arm = &self.arms[&command.actor];
            PostState {
                current: arm.current,
                entered: arm.entered.clone(),
            }
        });
        self.insert_cached(key, exact, verdict.clone(), post);
        verdict
    }

    fn note_rulebase_epoch(&mut self, epoch: u64) {
        // Stored, not acted on: the epoch flows into every VerdictKey, so
        // entries from older rule generations simply stop matching and
        // age out via LRU — no eager cache sweep needed.
        self.rulebase_epoch = epoch;
    }

    fn check_latency_s(&self) -> f64 {
        if self.config.gui {
            GUI_CHECK_LATENCY_S
        } else {
            HEADLESS_CHECK_LATENCY_S
        }
    }

    fn narrow_checks_performed(&self) -> u64 {
        self.narrow_checks
    }

    fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    fn samples_checked(&self) -> u64 {
        self.checks
    }

    fn samples_skipped(&self) -> u64 {
        self.samples_skipped
    }

    fn distance_queries(&self) -> u64 {
        self.distance_queries
    }

    fn distance_evals_batched(&self) -> u64 {
        self.distance_evals_batched
    }

    fn certificate_spans(&self) -> u64 {
        self.certificate_spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_devices::DeviceState;
    use rabit_geometry::Aabb;
    use rabit_kinematics::presets;

    fn empty_state() -> LabState {
        let mut s = LabState::new();
        s.insert(
            "ur3e",
            DeviceState::new().with(StateKey::Holding, None::<DeviceId>),
        );
        s
    }

    fn sim_with(world: SimWorld) -> ExtendedSimulator {
        ExtendedSimulator::new(
            world,
            SimConfig {
                gui: false,
                ..SimConfig::default()
            },
        )
        .with_arm("ur3e", presets::ur3e())
    }

    fn mv(target: Vec3) -> Command {
        Command::new("ur3e", ActionKind::MoveToLocation { target })
    }

    #[test]
    fn free_space_move_is_safe_and_mirrors_pose() {
        let mut sim = sim_with(SimWorld::new());
        let arm = presets::ur3e();
        let start_tool = arm.tool_position(&arm.home_configuration());
        let target = start_tool + Vec3::new(0.05, 0.05, 0.05);
        let verdict = sim.validate(&mv(target), &empty_state());
        assert_eq!(verdict, TrajectoryVerdict::Safe);
        // Simulator mirrored the motion.
        let q = sim.arm_configuration(&"ur3e".into()).unwrap();
        assert!(arm.tool_position(&q).distance(target) < 1e-3);
        assert!(sim.checks_performed() > 0);
    }

    #[test]
    fn obstacle_on_path_is_detected() {
        // A wall of cuboid between home tool position and the target.
        let arm = presets::ur3e();
        let home_tool = arm.tool_position(&arm.home_configuration());
        let target = home_tool + Vec3::new(0.0, 0.25, 0.0);
        let mid = home_tool.lerp(target, 0.5);
        let world = SimWorld::new().with_obstacle(
            "hotplate",
            Aabb::from_center_half_extents(mid, Vec3::new(0.35, 0.04, 0.35)),
        );
        let mut sim = sim_with(world);
        match sim.validate(&mv(target), &empty_state()) {
            TrajectoryVerdict::Collision(report) => {
                assert_eq!(report.device.as_str(), "hotplate");
                assert!((0.0..=1.0).contains(&report.at_fraction));
                // The structured payload carries link-level detail: a
                // real link (base is exempt) and a finite contact point.
                assert!(report.link >= 1);
                assert!(report.contact.is_finite());
            }
            other => panic!("expected collision, got {other:?}"),
        }
        // After a rejected move the mirrored pose is unchanged.
        let q = sim.arm_configuration(&"ur3e".into()).unwrap();
        assert_eq!(q, presets::ur3e().home_configuration());
    }

    #[test]
    fn unknown_arm_is_unavailable() {
        let mut sim = sim_with(SimWorld::new());
        let cmd = Command::new("ghost", ActionKind::MoveHome);
        assert_eq!(
            sim.validate(&cmd, &empty_state()),
            TrajectoryVerdict::Unavailable
        );
    }

    #[test]
    fn out_of_reach_target_is_unavailable() {
        let mut sim = sim_with(SimWorld::new());
        let verdict = sim.validate(&mv(Vec3::new(5.0, 5.0, 5.0)), &empty_state());
        assert_eq!(verdict, TrajectoryVerdict::Unavailable);
    }

    #[test]
    fn non_motion_goal_is_unavailable() {
        let mut sim = sim_with(SimWorld::new());
        let cmd = Command::new("ur3e", ActionKind::OpenGripper);
        assert_eq!(
            sim.validate(&cmd, &empty_state()),
            TrajectoryVerdict::Unavailable
        );
    }

    #[test]
    fn held_object_extension_changes_verdict() {
        // A low shelf the bare arm skims over but a held vial clips.
        let arm = presets::ur3e();
        let home_tool = arm.tool_position(&arm.home_configuration());
        let target = home_tool + Vec3::new(0.08, 0.0, -0.02);
        // Shelf just below the path.
        let mid = home_tool.lerp(target, 0.5);
        let world = SimWorld::new().with_obstacle(
            "shelf",
            Aabb::from_center_half_extents(
                mid - Vec3::new(0.0, 0.0, 0.12),
                Vec3::new(0.2, 0.2, 0.06),
            ),
        );
        let mut holding_state = empty_state();
        holding_state.insert(
            "ur3e",
            DeviceState::new().with(StateKey::Holding, Some(DeviceId::new("vial"))),
        );
        // Without held-object modelling: safe.
        let mut cfg = SimConfig {
            gui: false,
            ..SimConfig::default()
        };
        cfg.model_held_objects = false;
        let mut sim = ExtendedSimulator::new(world.clone(), cfg).with_arm("ur3e", presets::ur3e());
        assert_eq!(
            sim.validate(&mv(target), &holding_state),
            TrajectoryVerdict::Safe
        );
        // With the Bug-D fix: collision.
        let mut cfg2 = SimConfig {
            gui: false,
            ..SimConfig::default()
        };
        cfg2.model_held_objects = true;
        let mut sim2 = ExtendedSimulator::new(world, cfg2).with_arm("ur3e", presets::ur3e());
        match sim2.validate(&mv(target), &holding_state) {
            TrajectoryVerdict::Collision(report) => assert_eq!(report.device.as_str(), "shelf"),
            other => panic!("expected collision with held vial, got {other:?}"),
        }
    }

    #[test]
    fn gui_vs_headless_latency() {
        let gui = ExtendedSimulator::new(SimWorld::new(), SimConfig::default());
        assert_eq!(gui.check_latency_s(), GUI_CHECK_LATENCY_S);
        let headless = ExtendedSimulator::new(
            SimWorld::new(),
            SimConfig {
                gui: false,
                ..SimConfig::default()
            },
        );
        assert_eq!(headless.check_latency_s(), HEADLESS_CHECK_LATENCY_S);
    }

    #[test]
    fn enter_device_excludes_the_device_itself() {
        // A doser cuboid; entering it must not count as a collision with
        // it (the rulebase handles the door), but the platform below
        // still guards the approach.
        let doser_box = Aabb::new(Vec3::new(-0.45, -0.15, 0.0), Vec3::new(-0.2, 0.15, 0.25));
        let world = SimWorld::new().with_obstacle("doser", doser_box);
        let mut sim = sim_with(world);
        let mut state = empty_state();
        state.insert(
            "doser",
            DeviceState::new().with(StateKey::Footprint, doser_box),
        );
        let cmd = Command::new(
            "ur3e",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let verdict = sim.validate(&cmd, &state);
        assert_eq!(
            verdict,
            TrajectoryVerdict::Safe,
            "entering the target device is intended"
        );
    }

    #[test]
    fn adaptive_sweep_skips_most_samples_in_free_space() {
        // The same free-space move on an adaptive and a dense simulator:
        // identical verdict and mirrored pose, far fewer checks.
        let arm = presets::ur3e();
        let start_tool = arm.tool_position(&arm.home_configuration());
        let target = start_tool + Vec3::new(-0.1, 0.15, 0.1);
        let run = |dense: bool| {
            let mut sim = ExtendedSimulator::new(
                SimWorld::new().with_obstacle(
                    "far_box",
                    Aabb::from_center_half_extents(Vec3::new(2.0, 2.0, 0.2), Vec3::splat(0.1)),
                ),
                SimConfig {
                    gui: false,
                    verdict_cache: false,
                    dense_sampling: dense,
                    ..SimConfig::default()
                },
            )
            .with_arm("ur3e", presets::ur3e());
            let verdict = sim.validate(&mv(target), &empty_state());
            let pose = sim.arm_configuration(&"ur3e".into()).unwrap();
            (verdict, pose, sim.checks_performed(), sim.samples_skipped())
        };
        let (dense_verdict, dense_pose, dense_checks, dense_skipped) = run(true);
        let (adaptive_verdict, adaptive_pose, adaptive_checks, adaptive_skipped) = run(false);
        assert_eq!(dense_verdict, TrajectoryVerdict::Safe);
        assert_eq!(adaptive_verdict, dense_verdict);
        assert_eq!(adaptive_pose, dense_pose);
        assert_eq!(dense_skipped, 0);
        assert!(adaptive_skipped > 0, "free space should admit skips");
        assert!(
            adaptive_checks * 2 < dense_checks,
            "adaptive checked {adaptive_checks} of {dense_checks} dense samples"
        );
    }

    #[test]
    fn adaptive_sweep_reports_the_same_collision_as_dense() {
        let arm = presets::ur3e();
        let home_tool = arm.tool_position(&arm.home_configuration());
        let target = home_tool + Vec3::new(0.0, 0.25, 0.0);
        let mid = home_tool.lerp(target, 0.5);
        let world = SimWorld::new().with_obstacle(
            "hotplate",
            Aabb::from_center_half_extents(mid, Vec3::new(0.35, 0.04, 0.35)),
        );
        let run = |dense: bool| {
            let mut sim = ExtendedSimulator::new(
                world.clone(),
                SimConfig {
                    gui: false,
                    verdict_cache: false,
                    dense_sampling: dense,
                    ..SimConfig::default()
                },
            )
            .with_arm("ur3e", presets::ur3e());
            sim.validate(&mv(target), &empty_state())
        };
        let dense = run(true);
        let adaptive = run(false);
        assert!(matches!(dense, TrajectoryVerdict::Collision(_)));
        // Bit-identical payload: obstacle, link, contact, sample fraction.
        assert_eq!(adaptive, dense);
    }

    #[test]
    fn world_mutation_invalidates_the_broadphase_cache() {
        // First move: free space, heavy skipping. Then an obstacle lands
        // on the same path; the epoch bump must flush the query cache so
        // the second validation sees it.
        let arm = presets::ur3e();
        let start_tool = arm.tool_position(&arm.home_configuration());
        let target = start_tool + Vec3::new(0.0, 0.25, 0.0);
        let mut sim = ExtendedSimulator::new(
            SimWorld::new(),
            SimConfig {
                gui: false,
                verdict_cache: false,
                ..SimConfig::default()
            },
        )
        .with_arm("ur3e", presets::ur3e());
        assert_eq!(
            sim.validate(&mv(target), &empty_state()),
            TrajectoryVerdict::Safe
        );
        // Move back home so the next validation retraces the same path.
        let home = Command::new("ur3e", ActionKind::MoveHome);
        assert_eq!(sim.validate(&home, &empty_state()), TrajectoryVerdict::Safe);
        sim.world_mut().add_obstacle(
            "dropped_crate",
            Aabb::from_center_half_extents(start_tool.lerp(target, 0.5), Vec3::new(0.3, 0.03, 0.3)),
        );
        match sim.validate(&mv(target), &empty_state()) {
            TrajectoryVerdict::Collision(report) => {
                assert_eq!(report.device.as_str(), "dropped_crate")
            }
            other => panic!("expected collision after mutation, got {other:?}"),
        }
    }

    #[test]
    fn silent_skip_followup_is_caught() {
        // Footnote 2: A→B avoids an obstacle; B becomes infeasible B' and
        // the arm silently skips it; the direct A→C path then collides —
        // and the simulator, whose mirrored pose is still A, catches it.
        let arm = presets::ur3e();
        let a_tool = arm.tool_position(&arm.home_configuration());
        let c = a_tool + Vec3::new(0.0, 0.22, 0.0);
        let world = SimWorld::new().with_obstacle(
            "tall_device",
            Aabb::from_center_half_extents(a_tool.lerp(c, 0.5), Vec3::new(0.3, 0.03, 0.4)),
        );
        let mut sim = sim_with(world);
        // B' infeasible: simulator says Unavailable, mirrored pose stays A.
        let b_prime = Vec3::new(4.0, 4.0, 4.0);
        assert_eq!(
            sim.validate(&mv(b_prime), &empty_state()),
            TrajectoryVerdict::Unavailable
        );
        // A→C now collides in the simulator.
        match sim.validate(&mv(c), &empty_state()) {
            TrajectoryVerdict::Collision(report) => {
                assert_eq!(report.device.as_str(), "tall_device")
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }
}
