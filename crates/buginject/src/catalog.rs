//! The 16-bug catalog of the uncontrolled study (§IV).
//!
//! "Our collaborator, the 'naive' programmer, carried out 16 program
//! changes with potentially unsafe consequences." Each [`Bug`] is one
//! such change: a mutation of the safe Fig. 5 workflow (delete a command,
//! change an argument, insert or reorder commands), annotated with its
//! behaviour category, its Table V severity class, and the configuration
//! in which RABIT is expected to first detect it.

use rabit_core::Severity;
use rabit_devices::{ActionKind, Command};
use rabit_geometry::Vec3;
use rabit_testbed::{workflows, Locations, RabitStage};
use rabit_tracer::Workflow;
use std::fmt;

/// The four unsafe-behaviour categories of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugCategory {
    /// 1 — "Interactions with the dosing device door".
    DoorInteraction,
    /// 2 — "Collisions between two robot arms".
    ArmCollision,
    /// 3 — "Experiments without a vial".
    MissingVial,
    /// 4 — "Changing position coordinates" (and other command arguments).
    CoordinateChange,
}

impl fmt::Display for BugCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugCategory::DoorInteraction => f.write_str("dosing-device door"),
            BugCategory::ArmCollision => f.write_str("two robot arms"),
            BugCategory::MissingVial => f.write_str("experiment without a vial"),
            BugCategory::CoordinateChange => f.write_str("position coordinates"),
        }
    }
}

/// When a bug is first detected across the study's configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectedFrom {
    /// Detected by baseline RABIT (and every later configuration).
    Baseline,
    /// Detected only after the mid-study modifications.
    Modified,
    /// Detected only with the Extended Simulator attached.
    Simulator,
    /// Never detected by RABIT (the paper's residue: no gripper sensor,
    /// silently-skipped commands on one arm).
    Never,
}

impl DetectedFrom {
    /// Whether the bug is expected to be detected under `stage`.
    pub fn expected_at(&self, stage: RabitStage) -> bool {
        match (self, stage) {
            (DetectedFrom::Baseline, _) => true,
            (DetectedFrom::Modified, RabitStage::Baseline) => false,
            (DetectedFrom::Modified, _) => true,
            (DetectedFrom::Simulator, RabitStage::ModifiedWithSimulator) => true,
            (DetectedFrom::Simulator, _) => false,
            (DetectedFrom::Never, _) => false,
        }
    }
}

/// One catalogued bug.
pub struct Bug {
    /// Stable identifier (`bug_a_door_not_reopened`, …).
    pub id: &'static str,
    /// What the naive programmer changed, in prose.
    pub description: &'static str,
    /// §IV behaviour category.
    pub category: BugCategory,
    /// Table V severity of the potential damage.
    pub severity: Severity,
    /// Configuration from which RABIT detects it.
    pub detected_from: DetectedFrom,
    /// The mutation applied to the safe workflow.
    mutate: fn(&mut Workflow, &Locations),
}

impl fmt::Debug for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bug")
            .field("id", &self.id)
            .field("category", &self.category)
            .field("severity", &self.severity)
            .field("detected_from", &self.detected_from)
            .finish_non_exhaustive()
    }
}

impl Bug {
    /// Builds the buggy workflow: the safe Fig. 5 workflow with this
    /// bug's mutation applied.
    pub fn buggy_workflow(&self, loc: &Locations) -> Workflow {
        let mut wf = workflows::fig5_safe_workflow(loc).renamed(format!("fig5_{}", self.id));
        (self.mutate)(&mut wf, loc);
        wf
    }
}

fn find(wf: &Workflow, needle: &str) -> usize {
    wf.find(needle)
        .unwrap_or_else(|| panic!("safe workflow lacks '{needle}'"))
}

fn nth(wf: &Workflow, needle: &str, n: usize) -> usize {
    wf.commands()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.to_string().contains(needle))
        .map(|(i, _)| i)
        .nth(n)
        .unwrap_or_else(|| panic!("safe workflow lacks occurrence {n} of '{needle}'"))
}

fn mv(arm: &str, target: Vec3) -> Command {
    Command::new(arm, ActionKind::MoveToLocation { target })
}

/// The full 16-bug catalog, in study order.
pub fn catalog() -> Vec<Bug> {
    vec![
        // ---- Category 1: dosing-device door (all detected, §IV.1) ----
        Bug {
            id: "bug_a_door_not_reopened",
            description: "Bug A: the door re-open before retrieving the vial is \
                          omitted; ViperX collides with the closed glass door",
            category: BugCategory::DoorInteraction,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = workflows::door_reopen_index(wf);
                wf.delete(idx);
            },
        },
        Bug {
            id: "door_closed_on_arm",
            description: "the door is commanded shut while ViperX is still \
                          inside the dosing device",
            category: BugCategory::DoorInteraction,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = find(wf, "move_robot_inside(dosing_device)") + 1;
                wf.insert(
                    idx,
                    Command::new("dosing_device", ActionKind::SetDoor { open: false }),
                );
            },
        },
        Bug {
            id: "initial_door_open_omitted",
            description: "the initial open_door() call is omitted (the footnote-1 \
                          scenario: the programmer forgot Line 13 of doseSolid)",
            category: BugCategory::DoorInteraction,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = find(wf, "dosing_device.open_door");
                wf.delete(idx);
            },
        },
        Bug {
            id: "dose_with_door_open",
            description: "the close_door() before dosing is omitted; powder \
                          drifts out of the open chamber",
            category: BugCategory::DoorInteraction,
            severity: Severity::Low,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = find(wf, "dosing_device.close_door");
                wf.delete(idx);
            },
        },
        // ---- Category 4: coordinates & arguments ----
        Bug {
            id: "hotplate_overtemp",
            description: "a stirring step is added with the temperature argument \
                          mistyped as 500 °C (threshold: 150 °C)",
            category: BugCategory::CoordinateChange,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, loc| {
                // After the vial is back in the grid, carry it to the
                // hotplate and stir — with a catastrophic setpoint.
                let idx = find(wf, "viperx.go_to_sleep");
                let grid = loc.grid_nw_viperx;
                let hot_side = Vec3::new(0.45, 0.37, 0.25);
                for (offset, cmd) in [
                    mv("viperx", grid.pickup_safe_height),
                    mv("viperx", grid.pickup),
                    Command::new(
                        "viperx",
                        ActionKind::PickObject {
                            object: "vial".into(),
                        },
                    ),
                    mv("viperx", grid.pickup_safe_height),
                    mv("viperx", hot_side),
                    Command::new(
                        "viperx",
                        ActionKind::PlaceObject {
                            object: "vial".into(),
                            into: Some("hotplate".into()),
                        },
                    ),
                    Command::new("hotplate", ActionKind::StartAction { value: 500.0 }),
                ]
                .into_iter()
                .enumerate()
                {
                    wf.insert(idx + offset, cmd);
                }
            },
        },
        Bug {
            id: "target_inside_doser",
            description: "the dosing approach coordinate is mistyped so the \
                          target lies inside the dosing device's volume",
            category: BugCategory::CoordinateChange,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = nth(wf, "viperx.move_to_location(0.1500", 0);
                wf.replace(idx, mv("viperx", Vec3::new(0.15, 0.50, 0.15)));
            },
        },
        Bug {
            id: "target_inside_centrifuge",
            description: "a waypoint is mistyped into the centrifuge's volume",
            category: BugCategory::CoordinateChange,
            severity: Severity::High,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, _| {
                let idx = find(wf, "viperx.go_to_home_pose") + 1;
                wf.insert(idx, mv("viperx", Vec3::new(-0.25, -0.05, 0.10)));
            },
        },
        Bug {
            id: "bare_arm_platform",
            description: "Bug D (empty gripper): the grid safe height is \
                          mistyped as z = 0.03, driving the gripper into the \
                          platform",
            category: BugCategory::CoordinateChange,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Baseline,
            mutate: |wf, loc| {
                let s = loc.grid_nw_viperx.pickup_safe_height;
                let needle = format!(
                    "viperx.move_to_location({:.4}, {:.4}, {:.4})",
                    s.x, s.y, s.z
                );
                let idx = nth(wf, &needle, 0);
                wf.replace(idx, mv("viperx", Vec3::new(0.537, 0.018, 0.03)));
            },
        },
        // ---- Category 2: two robot arms ----
        Bug {
            id: "concurrent_motion",
            description: "Ned2 is commanded to move before parking, while \
                          ViperX is active in the shared workspace",
            category: BugCategory::ArmCollision,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Modified,
            mutate: |wf, _| {
                wf.insert(0, mv("ned2", Vec3::new(0.85, 0.25, 0.30)));
            },
        },
        Bug {
            id: "bug_b_arm_collision",
            description: "Bug B: Ned2 is sent to a 'random' location close to \
                          the grid while ViperX is stationed above it — the two \
                          arms collide",
            category: BugCategory::ArmCollision,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Modified,
            mutate: |wf, loc| {
                let idx = workflows::bug_b_insertion_index(wf);
                wf.insert(idx, mv("ned2", loc.random_location_ned2));
            },
        },
        Bug {
            id: "sleep_intrusion",
            description: "ViperX is sent into the corner where Ned2 sleeps",
            category: BugCategory::ArmCollision,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Modified,
            mutate: |wf, _| {
                let idx = find(wf, "viperx.go_to_home_pose") + 1;
                wf.insert(idx, mv("viperx", Vec3::new(0.75, -0.28, 0.15)));
            },
        },
        // ---- Category 4 continued ----
        Bug {
            id: "held_vial_low",
            description: "Bug D (holding): a carry waypoint is mistyped as \
                          z = 0.08 — safe for the bare arm, but the held vial \
                          crashes into the platform",
            category: BugCategory::CoordinateChange,
            severity: Severity::MediumLow,
            detected_from: DetectedFrom::Modified,
            mutate: |wf, loc| {
                // The move back to grid safe height right after retrieving
                // the vial from the dosing device (holding): occurrence 2
                // of the safe-height waypoint (0 = before the first pick,
                // 1 = after it, 2 = the post-retrieval carry).
                let s = loc.grid_nw_viperx.pickup_safe_height;
                let needle = format!(
                    "viperx.move_to_location({:.4}, {:.4}, {:.4})",
                    s.x, s.y, s.z
                );
                let idx = nth(wf, &needle, 2);
                wf.replace(idx, mv("viperx", Vec3::new(0.35, 0.15, 0.08)));
            },
        },
        Bug {
            id: "silent_skip_path",
            description: "footnote 2: an avoid-the-grid waypoint is mistyped to \
                          an infeasible position; ViperX silently skips it and \
                          the direct path slices through the grid",
            category: BugCategory::CoordinateChange,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Simulator,
            mutate: |wf, _| {
                let idx = find(wf, "viperx.go_to_home_pose") + 1;
                // Route south-of-grid → (over the top) → north-of-grid,
                // with the clearing waypoint corrupted to B'.
                wf.insert(idx, mv("viperx", Vec3::new(0.537, -0.12, 0.07)));
                wf.insert(idx + 1, mv("viperx", Vec3::new(5.0, 5.0, 5.0)));
                wf.insert(idx + 2, mv("viperx", Vec3::new(0.537, 0.14, 0.07)));
            },
        },
        Bug {
            id: "ned2_infeasible_high",
            description: "Ned2 is sent to a very high, clearly infeasible \
                          position; its controller throws an exception and \
                          halts (a device fault, not a RABIT detection)",
            category: BugCategory::CoordinateChange,
            severity: Severity::MediumHigh,
            detected_from: DetectedFrom::Never,
            mutate: |wf, _| {
                let idx = nth(wf, "ned2.go_to_home_pose", 0);
                wf.replace(idx, mv("ned2", Vec3::new(0.85, 0.0, 2.0)));
            },
        },
        // ---- Category 3: experiments without a vial ----
        Bug {
            id: "bug_c_pick_omitted",
            description: "Bug C: the pick_up call is omitted; the experiment \
                          continues without a vial and the dose spills into the \
                          empty chamber",
            category: BugCategory::MissingVial,
            severity: Severity::Low,
            detected_from: DetectedFrom::Never,
            mutate: |wf, _| {
                let idx = workflows::first_pick_index(wf);
                wf.delete(idx);
            },
        },
        Bug {
            id: "gripper_reorder",
            description: "open_gripper/close_gripper are reordered inside the \
                          pick helper; the jaws close on air and the experiment \
                          continues without a vial",
            category: BugCategory::MissingVial,
            severity: Severity::Low,
            detected_from: DetectedFrom::Never,
            mutate: |wf, _| {
                let idx = workflows::first_pick_index(wf);
                wf.replace(idx, Command::new("viperx", ActionKind::CloseGripper));
                wf.insert(idx + 1, Command::new("viperx", ActionKind::OpenGripper));
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabit_testbed::locations;

    #[test]
    fn catalog_has_sixteen_bugs_with_unique_ids() {
        let bugs = catalog();
        assert_eq!(bugs.len(), 16);
        let mut ids: Vec<&str> = bugs.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn severity_totals_match_table_v() {
        let bugs = catalog();
        let count = |s: Severity| bugs.iter().filter(|b| b.severity == s).count();
        assert_eq!(count(Severity::Low), 3);
        assert_eq!(count(Severity::MediumLow), 1);
        assert_eq!(count(Severity::MediumHigh), 6);
        assert_eq!(count(Severity::High), 6);
    }

    #[test]
    fn expected_detection_counts_match_the_paper() {
        let bugs = catalog();
        let detected = |stage: RabitStage| {
            bugs.iter()
                .filter(|b| b.detected_from.expected_at(stage))
                .count()
        };
        assert_eq!(detected(RabitStage::Baseline), 8, "50% of 16");
        assert_eq!(detected(RabitStage::Modified), 12, "75% of 16");
        assert_eq!(detected(RabitStage::ModifiedWithSimulator), 13, "81% of 16");
    }

    #[test]
    fn table_v_detected_column_matches() {
        // Table V reports the modified configuration.
        let bugs = catalog();
        let detected = |s: Severity| {
            bugs.iter()
                .filter(|b| b.severity == s && b.detected_from.expected_at(RabitStage::Modified))
                .count()
        };
        assert_eq!(detected(Severity::Low), 1);
        assert_eq!(detected(Severity::MediumLow), 1);
        assert_eq!(detected(Severity::MediumHigh), 4);
        assert_eq!(detected(Severity::High), 6);
    }

    #[test]
    fn every_mutation_changes_the_workflow() {
        let loc = locations();
        let safe = workflows::fig5_safe_workflow(&loc);
        for bug in catalog() {
            let buggy = bug.buggy_workflow(&loc);
            assert_ne!(buggy.commands(), safe.commands(), "{} is a no-op", bug.id);
            assert!(buggy.name().contains(bug.id));
        }
    }

    #[test]
    fn category_sizes() {
        let bugs = catalog();
        let count = |c: BugCategory| bugs.iter().filter(|b| b.category == c).count();
        assert_eq!(count(BugCategory::DoorInteraction), 4);
        assert_eq!(count(BugCategory::ArmCollision), 3);
        assert_eq!(count(BugCategory::MissingVial), 2);
        assert_eq!(count(BugCategory::CoordinateChange), 7);
        assert!(!BugCategory::DoorInteraction.to_string().is_empty());
    }
}
