//! Rule-service churn benchmark.
//!
//! Exercises the versioned multi-tenant rule service the way a busy
//! deployment would: several tenants' rulebases under continuous live
//! CRUD through the [`ServiceBroker`], while validation traffic keeps
//! pulling fresh snapshots and checking commands against them. Two
//! headline numbers come out:
//!
//! * **commands/sec** — broker commit throughput: a per-tenant script of
//!   enable/disable toggles, rule creates, partial updates, and removes,
//!   fanned across the worker pool and timed end to end (submit →
//!   flush);
//! * **p50/p99 check latency (µs)** — the cost one validation pays under
//!   churn: snapshot the tenant's latest publication and run a rule
//!   check against it, timed per call while a background churn thread
//!   keeps committing. Copy-on-write snapshots mean the check never
//!   takes the store lock for longer than two `Arc` bumps — the p99 is
//!   the proof.
//!
//! Writes `BENCH_service.json` (envelope kind `"service"`, validated on
//! write and by the `bench_schema` CI check) and prints the tables.
//! `--quick` runs a reduced pass for CI smoke checks.
//!
//! Run with `cargo run --release -p rabit-bench --bin service -- [--quick]`.

use rabit_bench::report::render_table;
use rabit_devices::{ActionKind, Command, DeviceState, DeviceType, LabState, StateKey};
use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rule, RuleId, Rulebase, TenantId};
use rabit_service::{
    CreateRuleRequest, RuleCommand, RuleOp, RuleStore, ServiceBroker, UpdateRuleRequest,
};
use rabit_util::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tenants churned concurrently (the schema's multi-tenant floor is 4).
const TENANTS: usize = 6;
/// Broker worker threads.
const BROKER_THREADS: usize = 4;
/// Commit rounds per tenant in the throughput phase (each round is 5
/// commands: create, disable, update, enable, remove).
const ROUNDS: usize = 400;
const ROUNDS_QUICK: usize = 40;
/// Timed validation checks in the latency phase.
const CHECKS: usize = 20_000;
const CHECKS_QUICK: usize = 2_000;

fn tenant(i: usize) -> TenantId {
    TenantId::new(format!("lab{i}"))
}

/// A rule that never fires — the churn payload.
fn staged_rule(name: &str) -> Rule {
    Rule::new(
        RuleId::Custom(name.to_string()),
        "staged by bench",
        |_, _, _| None,
    )
}

/// One churn round for a tenant: create a rule, toggle a general rule
/// off and back on, partially update the staged rule, then remove it —
/// five commits that leave the rulebase exactly where it started (but
/// five epochs later), so commit cost stays flat over the run.
fn submit_round(broker: &ServiceBroker, tenant: &TenantId, round: usize) {
    let name = format!("staged-{round}");
    let toggled = RuleId::General((round % 11) as u8 + 1);
    drop(broker.submit(RuleCommand::new(
        tenant.clone(),
        RuleOp::Create(CreateRuleRequest::new(staged_rule(&name)).disabled()),
    )));
    drop(broker.submit(RuleCommand::new(
        tenant.clone(),
        RuleOp::Disable(toggled.clone()),
    )));
    drop(broker.submit(RuleCommand::new(
        tenant.clone(),
        RuleOp::Update(
            RuleId::Custom(name.clone()),
            UpdateRuleRequest::new().with_enabled(true),
        ),
    )));
    drop(broker.submit(RuleCommand::new(tenant.clone(), RuleOp::Enable(toggled))));
    drop(broker.submit(RuleCommand::new(
        tenant.clone(),
        RuleOp::Remove(RuleId::Custom(name)),
    )));
}

/// The validation workload: a command + state + catalog that walks the
/// full dispatch path of the hein rulebase (an arm entering a dosing
/// system with its door open — every door rule is consulted, none fire).
fn check_fixture() -> (Command, LabState, DeviceCatalog) {
    let command = Command::new(
        "arm",
        ActionKind::MoveInsideDevice {
            device: "doser".into(),
        },
    );
    let mut state = LabState::new();
    state.insert(
        "arm",
        DeviceState::new().with(StateKey::Holding, None::<rabit_devices::DeviceId>),
    );
    state.insert("doser", DeviceState::new().with(StateKey::DoorOpen, true));
    let catalog = DeviceCatalog::new()
        .with(DeviceMeta::new("arm", DeviceType::RobotArm))
        .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door());
    (command, state, catalog)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { ROUNDS_QUICK } else { ROUNDS };
    let checks = if quick { CHECKS_QUICK } else { CHECKS };

    let store = Arc::new(RuleStore::new());
    for i in 0..TENANTS {
        store.seed_tenant(tenant(i), Rulebase::hein_lab());
    }

    // Phase 1: commit throughput across all tenants.
    let broker = ServiceBroker::new(Arc::clone(&store), BROKER_THREADS);
    let commands = TENANTS * rounds * 5;
    let t0 = Instant::now();
    for round in 0..rounds {
        for i in 0..TENANTS {
            submit_round(&broker, &tenant(i), round);
        }
    }
    broker.flush();
    let commit_wall_s = t0.elapsed().as_secs_f64();
    let commands_per_sec = commands as f64 / commit_wall_s;
    for i in 0..TENANTS {
        let epoch = store.epoch_of(&tenant(i)).expect("seeded tenant");
        assert_eq!(
            epoch,
            (rounds * 5) as u64,
            "every commit of tenant {i} must have landed"
        );
    }

    // Phase 2: per-check latency while a churn thread keeps committing.
    let stop = Arc::new(AtomicBool::new(false));
    let churner = {
        let broker_store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let broker = ServiceBroker::new(broker_store, BROKER_THREADS);
            let mut round = rounds;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..TENANTS {
                    submit_round(&broker, &tenant(i), round);
                }
                round += 1;
            }
            broker.flush();
            round - rounds
        })
    };
    // Don't start the clock until churn commits are actually landing —
    // a warm check loop can otherwise finish before the churn broker's
    // workers have spun up, and "latency under churn" would be a lie.
    let baseline = (rounds * 5) as u64;
    while store.epoch_of(&tenant(0)).expect("seeded tenant") <= baseline {
        std::thread::yield_now();
    }
    let (command, state, catalog) = check_fixture();
    let mut latencies_ns = Vec::with_capacity(checks);
    use rabit_rulebase::SnapshotSource;
    for i in 0..checks {
        let target = tenant(i % TENANTS);
        let t = Instant::now();
        let snapshot = store.snapshot(&target);
        let violations = snapshot.check(&command, &state, &catalog);
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        assert!(violations.is_empty(), "fixture is violation-free");
    }
    stop.store(true, Ordering::Relaxed);
    let churn_rounds = churner.join().expect("churn thread");
    latencies_ns.sort_unstable();
    let p50 = percentile_us(&latencies_ns, 0.50);
    let p99 = percentile_us(&latencies_ns, 0.99);

    println!("\n# rule service under churn\n");
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec!["tenants".into(), TENANTS.to_string()],
                vec!["broker threads".into(), BROKER_THREADS.to_string()],
                vec!["commands committed".into(), commands.to_string()],
                vec!["commit wall (s)".into(), format!("{commit_wall_s:.3}")],
                vec!["commands/sec".into(), format!("{commands_per_sec:.0}")],
                vec!["checks timed".into(), checks.to_string()],
                vec![
                    "churn rounds behind checks".into(),
                    churn_rounds.to_string()
                ],
                vec!["check p50 (µs)".into(), format!("{p50:.2}")],
                vec!["check p99 (µs)".into(), format!("{p99:.2}")],
            ],
        )
    );

    rabit_bench::schema::write_artifact_with_kind(
        "service",
        "service",
        Json::obj([
            ("quick_mode", Json::Bool(quick)),
            ("tenants", Json::Num(TENANTS as f64)),
            ("broker_threads", Json::Num(BROKER_THREADS as f64)),
            ("rounds_per_tenant", Json::Num(rounds as f64)),
            ("checks_timed", Json::Num(checks as f64)),
        ]),
        Json::obj([
            ("tenants", Json::Num(TENANTS as f64)),
            ("commands_committed", Json::Num(commands as f64)),
            ("commit_wall_s", Json::Num(commit_wall_s)),
            ("commands_per_sec", Json::Num(commands_per_sec)),
            ("p50_check_latency_us", Json::Num(p50)),
            ("p99_check_latency_us", Json::Num(p99)),
            ("churn_rounds_during_checks", Json::Num(churn_rounds as f64)),
        ]),
    );
}
