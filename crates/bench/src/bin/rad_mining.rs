//! §II-A at production scale: the streaming RAD pipeline.
//!
//! The original rulebase-construction step — mine the Robot Arm Dataset
//! for the lab's conventions — is re-run here the way a deployment would
//! run it: sessions are *streamed* through [`OnlineMiner`] one command
//! at a time, never materialising a corpus, while a counting global
//! allocator proves the pipeline's memory stays `O(rules)` no matter
//! how many commands flow through. Mid-stream the lab's conventions
//! drift (dosing flips from door-closed to door-open); the decayed
//! window re-scores, logs the collapse/emergence, and the qualifying
//! rule set is promoted into a live `RuleStore` epoch that a fleet run
//! validates against.
//!
//! Writes `BENCH_rad.json` (envelope kind `"rad"`; full-mode artifacts
//! must clear the `RAD_MIN_COMMANDS` volume and
//! `RAD_MIN_COMMANDS_PER_SEC` throughput floors in the schema).
//! `--quick` streams a small corpus for CI smoke checks.
//!
//! Run with `cargo run --release -p rabit-bench --bin rad_mining`.

use rabit_bench::report::render_table;
use rabit_bench::schema::{write_artifact_with_kind, RAD_MIN_COMMANDS};
use rabit_core::{Lab, Stage, Substrate};
use rabit_devices::{DeviceType, DosingDevice, RobotArm, Vial};
use rabit_geometry::{Aabb, Vec3};
use rabit_rad::{
    mine, score, LabTraceStream, MineParams, MinedRule, OnlineMiner, RadGenParams, RulePromoter,
    TraceStream, DRIFTED_TRUTH, GROUND_TRUTH,
};
use rabit_rulebase::{DeviceCatalog, DeviceMeta, Rulebase, RulebaseSnapshot, TenantId};
use rabit_service::RuleStore;
use rabit_tracer::{run_fleet_on_live, Workflow};
use rabit_util::Json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that tracks *live* bytes and their
/// high-water mark, so the bench can assert the streaming path never
/// holds more than a bounded working set (i.e. no corpus Vec hides
/// behind the iterator).
struct CountingAlloc;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates verbatim to the system allocator; the counters are
// relaxed atomics with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_dealloc(layout.size());
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live level, returning the
/// baseline for a measured phase.
fn reset_peak() -> u64 {
    let live = live_bytes();
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// The streaming phase may not retain more than this above its baseline
/// (one session in flight + miner counters + decay bookkeeping). A
/// materialised 100M-command corpus would be gigabytes; this bound is
/// what "constant memory" means operationally.
const PEAK_DELTA_BOUND: u64 = 8 * 1024 * 1024;

/// The same mini-lab the live-CRUD suite drives: one arm, one dosing
/// device with a door, one vial — enough surface for every mined rule
/// class to fire.
struct MiniSubstrate;

impl Substrate for MiniSubstrate {
    fn name(&self) -> &str {
        "mini"
    }
    fn stage(&self) -> Stage {
        Stage::Simulator
    }
    fn build_lab(&self) -> Lab {
        Lab::new()
            .with_device(RobotArm::new(
                "viperx",
                Vec3::new(0.3, 0.0, 0.3),
                Vec3::new(0.1, -0.3, 0.2),
            ))
            .with_device(DosingDevice::new(
                "doser",
                Aabb::new(Vec3::new(0.1, 0.35, 0.0), Vec3::new(0.25, 0.55, 0.3)),
            ))
            .with_device(Vial::new("vial", Vec3::new(0.537, 0.018, 0.12)))
    }
    fn rulebase(&self) -> RulebaseSnapshot {
        Rulebase::new().into()
    }
    fn catalog(&self) -> DeviceCatalog {
        DeviceCatalog::new()
            .with(
                DeviceMeta::new("viperx", DeviceType::RobotArm)
                    .with_arm_positions(Vec3::new(0.3, 0.0, 0.3), Vec3::new(0.1, -0.3, 0.2)),
            )
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("vial", DeviceType::Container))
    }
}

fn fleet_workflows() -> Vec<Workflow> {
    vec![
        Workflow::new("drift_safe")
            .set_door("doser", true)
            .dose_solid("doser", 12.0, "vial")
            .move_inside("viperx", "doser")
            .move_out("viperx")
            .set_door("doser", false),
        Workflow::new("old_habit")
            .dose_solid("doser", 12.0, "vial")
            .set_door("doser", true)
            .move_inside("viperx", "doser")
            .move_out("viperx"),
    ]
}

fn rule_table(rules: &[MinedRule]) -> String {
    let rows: Vec<Vec<String>> = rules
        .iter()
        .map(|r| {
            vec![
                r.name().to_string(),
                r.support().to_string(),
                format!("{:.1}%", r.confidence() * 100.0),
            ]
        })
        .collect();
    render_table(&["Mined rule", "Support", "Confidence"], &rows)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("§II-A — streaming rule mining from the Robot Arm Dataset\n");

    // Size the stream: full mode must clear the 100M-command floor.
    // Session length varies with the RNG (noise skips commands, drifted
    // sessions skip the re-open), so estimate from a drifted sample and
    // add headroom.
    let sampled: usize =
        TraceStream::new(&RadGenParams::new().with_sessions(100).with_drift_at(50))
            .map(|t| t.executed_commands().count())
            .sum();
    let cmds_per_session = (sampled / 100).max(1);
    let target_commands: u64 = if quick {
        200_000
    } else {
        RAD_MIN_COMMANDS as u64
    };
    let sessions = (target_commands as usize / cmds_per_session) * 11 / 10;
    let drift_at = sessions / 2;
    let params = RadGenParams::new()
        .with_sessions(sessions)
        .with_drift_at(drift_at);
    println!(
        "Stream: {sessions} sessions (~{cmds_per_session} commands each), \
         conventions drift at session {drift_at}{}",
        if quick { " [--quick]" } else { "" }
    );

    // --- Phase 1: constant-memory streaming through the drift. -------
    let mut miner = OnlineMiner::new(MineParams::default());
    let mut before_drift: Vec<MinedRule> = Vec::new();
    let baseline = reset_peak();
    let start = Instant::now();
    for (i, trace) in TraceStream::new(&params).enumerate() {
        miner.observe_trace(&trace);
        if i + 1 == drift_at {
            before_drift = miner.decayed_rules();
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let peak_delta = peak_bytes().saturating_sub(baseline);
    let commands = miner.commands_seen();
    let rate = commands as f64 / wall;

    println!(
        "\nStreamed {commands} commands in {wall:.2}s — {:.2}M commands/s, \
         peak working set {:.1} KiB above baseline",
        rate / 1e6,
        peak_delta as f64 / 1024.0
    );
    assert!(
        commands >= target_commands,
        "stream volume {commands} below target {target_commands}"
    );
    assert!(
        peak_delta <= PEAK_DELTA_BOUND,
        "streaming path retained {peak_delta} bytes (> {PEAK_DELTA_BOUND}): \
         a corpus is being materialised somewhere"
    );

    // --- Phase 2: drift scoring. -------------------------------------
    let after_drift = miner.decayed_rules();
    let (p_before, r_before) = score(&before_drift, &GROUND_TRUTH);
    let (p_after, r_after) = score(&after_drift, &DRIFTED_TRUTH);
    println!("\nDecayed window at the drift boundary (old conventions):");
    println!("{}", rule_table(&before_drift));
    println!("precision {p_before:.2} / recall {r_before:.2} vs the pre-drift truth\n");
    println!("Decayed window at end of stream (new conventions):");
    println!("{}", rule_table(&after_drift));
    println!("precision {p_after:.2} / recall {r_after:.2} vs the drifted truth");

    let collapses = miner
        .drift_events()
        .iter()
        .filter(|e| e.is_collapse())
        .count();
    let emergences = miner.drift_events().len() - collapses;
    println!("\nDrift events: {collapses} collapse(s), {emergences} emergence(s):");
    for e in miner.drift_events() {
        println!("  {e}");
    }
    assert!(
        collapses >= 1 && emergences >= 1,
        "the drift must be observed as both a collapse and an emergence"
    );

    // --- Phase 3: promotion into a live epoch the fleet validates. ---
    let tenant = TenantId::new("rad-bench");
    let store = RuleStore::new();
    store.seed_tenant(tenant.clone(), Rulebase::new());
    let outcome = RulePromoter::new(tenant.clone())
        .promote(&after_drift, &store)
        .expect("promotion against the seeded bench tenant");
    println!(
        "\nPromoted {} mined rule(s) into tenant \"{tenant}\" at epoch {}",
        outcome.created.len(),
        outcome.epoch
    );

    let sub = MiniSubstrate;
    let wfs = fleet_workflows();
    let jobs: Vec<(&dyn Substrate, &Workflow)> = wfs.iter().map(|w| (&sub as _, w)).collect();
    let fleet = run_fleet_on_live(&jobs, 2, &store, &tenant);
    let fleet_epoch = fleet.runs.first().map_or(0, |r| r.rulebase_epoch);
    assert!(
        fleet.runs.iter().all(|r| r.rulebase_epoch == outcome.epoch),
        "every fleet run must validate against the promoted epoch"
    );
    assert_eq!(
        fleet.completed_runs(),
        1,
        "the old-habit workflow is blocked by a mined rule"
    );
    println!(
        "Fleet on the live store: {}/{} runs completed at rulebase epoch {fleet_epoch} \
         (the old-convention workflow is blocked by the promoted rules)",
        fleet.completed_runs(),
        fleet.runs.len()
    );

    // --- Cross-check: the batch facade and the lab-captured stream. --
    let small = RadGenParams::new();
    let batch = mine(&rabit_rad::generate_corpus(&small), &MineParams::default());
    let (p_batch, r_batch) = score(&batch, &GROUND_TRUTH);
    let lab_sessions = if quick { 10 } else { 60 };
    let mut lab_miner = OnlineMiner::new(MineParams::default());
    for trace in LabTraceStream::new(lab_sessions, 11) {
        lab_miner.observe_trace(&trace);
    }
    let lab_rules = lab_miner.rules();
    let (p_lab, r_lab) = score(&lab_rules, &GROUND_TRUTH);
    println!(
        "\nBatch facade on the default corpus: {} rules, precision {p_batch:.2} / recall \
         {r_batch:.2}\nLab-captured stream (pass-through RATracer on the testbed, \
         {lab_sessions} sessions): {} rules, precision {p_lab:.2} / recall {r_lab:.2}",
        batch.len(),
        lab_rules.len(),
    );

    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("sessions", Json::Num(sessions as f64)),
        ("drift_at", Json::Num(drift_at as f64)),
        ("noise_rate", Json::Num(params.noise_rate)),
        ("seed", Json::Num(params.seed as f64)),
    ]);
    let results = Json::obj([
        ("commands", Json::Num(commands as f64)),
        ("commands_per_sec", Json::Num(rate)),
        ("wall_seconds", Json::Num(wall)),
        ("peak_live_bytes", Json::Num(peak_delta as f64)),
        ("rules_mined", Json::Num(after_drift.len() as f64)),
        ("precision_before_drift", Json::Num(p_before)),
        ("recall_before_drift", Json::Num(r_before)),
        ("precision_after_drift", Json::Num(p_after)),
        ("recall_after_drift", Json::Num(r_after)),
        ("drift_collapses", Json::Num(collapses as f64)),
        ("drift_emergences", Json::Num(emergences as f64)),
        ("promoted_epoch", Json::Num(outcome.epoch as f64)),
        ("fleet_rulebase_epoch", Json::Num(fleet_epoch as f64)),
    ]);
    write_artifact_with_kind("rad", "rad", config, results);
}
