//! Adaptive conservative-advancement sweep benchmark.
//!
//! Runs the standard fleet workload — serial guarded fig5 safe-workflow
//! runs on the testbed, verdict cache disabled so every validation
//! really sweeps — under three kernel configurations and compares:
//!
//! * `dense` — dense sampling, every polling-grid sample checked;
//! * `adaptive` — conservative-advancement skipping on the batched SoA
//!   distance kernel, whole-arm certificates off;
//! * `batched` — the full kernel: adaptive skipping, packet BVH
//!   queries, and whole-arm certificate spans.
//!
//! Reported per mode: wall time per command, polling-grid samples
//! evaluated versus skipped, narrow-phase obstacle tests (the cost the
//! kernel exists to cut), clearance distance queries and batched lane
//! slots (the price the kernel pays instead), and accepted certificate
//! spans. The headline `wall_speedup` is dense wall over batched wall.
//!
//! All configurations must agree on every verdict — the adaptive kernel
//! only skips samples it proves hit-free — so the benchmark asserts all
//! runs complete in every mode and that checked + skipped partitions
//! the same polling grid.
//!
//! Methodology: trajectories are polled at [`POLL_INTERVAL_S`]
//! (continuous polling, per the paper), and each repeat runs
//! [`WARMUP_LAPS`] untimed laps first so one-off IK solves — identical
//! in every mode — do not sit inside the timed window. Counters are
//! snapshotted after warm-up and report the timed laps only.
//!
//! Writes `BENCH_sweep.json` and prints the tables. `--quick` runs a
//! reduced pass for CI smoke checks and asserts the whole-arm
//! certificate actually fires.
//!
//! Run with `cargo run --release -p rabit-bench --bin sweep`.

use rabit_bench::report::render_table;
use rabit_buginject::RabitStage;
use rabit_testbed::{workflows, Testbed};
use rabit_tracer::Tracer;
use rabit_util::Json;
use std::time::Instant;

#[derive(Clone, Copy)]
struct Mode {
    dense_sampling: bool,
    whole_arm_certificate: bool,
}

/// The three kernel configurations, in the order they are reported:
/// dense, adaptive (certificates off), batched (the full kernel).
const MODES: [Mode; 3] = [
    Mode {
        dense_sampling: true,
        whole_arm_certificate: false,
    },
    Mode {
        dense_sampling: false,
        whole_arm_certificate: false,
    },
    Mode {
        dense_sampling: false,
        whole_arm_certificate: true,
    },
];

struct SweepResult {
    wall_s: f64,
    commands: usize,
    samples_checked: u64,
    samples_skipped: u64,
    narrow_checks: u64,
    distance_queries: u64,
    distance_evals_batched: u64,
    certificate_spans: u64,
}

/// Polling interval for the benchmark workload. The paper's Extended
/// Simulator polls trajectories continuously; 10 ms is the densest grid
/// the testbed trajectories support without degenerate one-sample
/// sweeps, and it is where the sweep kernel — not command dispatch —
/// dominates the wall clock. All modes use the same grid, so verdict
/// identity across kernels is unaffected.
const POLL_INTERVAL_S: f64 = 0.01;

/// Untimed laps run before the clock starts. Two are needed: the first
/// lap populates the IK candidate memo from the registration state, and
/// the second covers the steady-orbit start configurations (including
/// the one deliberately unreachable pick target, whose full-restart IK
/// failure costs ~30 ms once per distinct key). Cold IK solving is
/// identical in every mode, so excluding it leaves the timed window
/// measuring what the modes actually differ in: the sweep kernels.
const WARMUP_LAPS: usize = 2;

/// Serial guarded runs of the fig5 safe workflow with a fresh lab per
/// lap and one long-lived engine, the shape of a deployed RABIT
/// instance. The verdict cache is off so every lap's validations sweep.
fn run_workload(laps: usize, mode: Mode) -> SweepResult {
    let tb = Testbed::new();
    let wf = workflows::fig5_safe_workflow(&tb.locations);
    let mut sim = tb.extended_simulator(false);
    sim.config_mut().verdict_cache = false;
    sim.config_mut().poll_interval_s = POLL_INTERVAL_S;
    sim.config_mut().dense_sampling = mode.dense_sampling;
    sim.config_mut().whole_arm_certificate = mode.whole_arm_certificate;
    let mut rabit = tb.rabit(RabitStage::Modified).with_validator(Box::new(sim));
    rabit.config_mut().first_violation_only = true;

    for _ in 0..WARMUP_LAPS {
        let mut warm = Testbed::new().lab;
        let report = Tracer::guarded(&mut warm, &mut rabit).run(&wf);
        assert!(report.completed(), "fig5 safe workflow must complete");
    }
    let mut labs: Vec<_> = (0..laps).map(|_| Testbed::new().lab).collect();
    // Counter snapshot so the report covers the timed laps only.
    let warm_sweep = rabit.validator_sweep_stats();
    let warm_narrow = rabit.validator_narrow_checks();
    let t0 = Instant::now();
    for lab in &mut labs {
        let report = Tracer::guarded(lab, &mut rabit).run(&wf);
        assert!(report.completed(), "fig5 safe workflow must complete");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let sweep = rabit.validator_sweep_stats();
    SweepResult {
        wall_s,
        commands: laps * wf.len(),
        samples_checked: sweep.samples_checked - warm_sweep.samples_checked,
        samples_skipped: sweep.samples_skipped - warm_sweep.samples_skipped,
        narrow_checks: rabit.validator_narrow_checks() - warm_narrow,
        distance_queries: sweep.distance_queries - warm_sweep.distance_queries,
        distance_evals_batched: sweep.distance_evals_batched - warm_sweep.distance_evals_batched,
        certificate_spans: sweep.certificate_spans - warm_sweep.certificate_spans,
    }
}

/// Best-of-N wall clock over fresh workloads; counters are deterministic
/// across repeats, so the last repeat's are as good as any.
fn best_of(repeats: usize, laps: usize, mode: Mode) -> SweepResult {
    let mut best = run_workload(laps, mode);
    for _ in 1..repeats {
        let next = run_workload(laps, mode);
        assert_eq!(
            next.samples_checked, best.samples_checked,
            "sweep counters must be deterministic across repeats"
        );
        best.wall_s = best.wall_s.min(next.wall_s);
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (laps, repeats) = if quick { (4, 1) } else { (24, 3) };

    let [dense, adaptive, batched] = MODES.map(|m| best_of(repeats, laps, m));

    assert_eq!(
        dense.samples_skipped, 0,
        "dense sampling must not skip anything"
    );
    for r in [&adaptive, &batched] {
        assert_eq!(
            r.samples_checked + r.samples_skipped,
            dense.samples_checked,
            "all kernels must walk the same polling grid"
        );
    }
    assert!(
        batched.certificate_spans > 0,
        "whole-arm certificate must fire on the fig5 workload"
    );

    let total = dense.samples_checked;
    let skip_rate = |r: &SweepResult| r.samples_skipped as f64 / total.max(1) as f64;
    let narrow_reduction =
        |r: &SweepResult| dense.narrow_checks as f64 / r.narrow_checks.max(1) as f64;
    let ns_per_cmd = |r: &SweepResult| r.wall_s / r.commands as f64 * 1e9;
    let wall_speedup = dense.wall_s / batched.wall_s;

    println!(
        "Adaptive sweep ({laps} laps of the fig5 safe workflow, \
         verdict cache off, best of {repeats})\n"
    );
    let row = |name: &str, r: &SweepResult| {
        vec![
            name.into(),
            format!("{:.0}", ns_per_cmd(r)),
            r.samples_checked.to_string(),
            r.samples_skipped.to_string(),
            r.narrow_checks.to_string(),
            r.distance_queries.to_string(),
            r.distance_evals_batched.to_string(),
            r.certificate_spans.to_string(),
        ]
    };
    println!(
        "{}",
        render_table(
            &[
                "kernel",
                "ns/command",
                "samples checked",
                "samples skipped",
                "narrow checks",
                "distance queries",
                "batched lanes",
                "cert spans",
            ],
            &[
                row("dense", &dense),
                row("adaptive", &adaptive),
                row("batched", &batched),
            ]
        )
    );
    println!(
        "skip rate: {:.1}%   narrow-phase reduction: {:.2}x   \
         wall speedup (dense/batched): {:.2}x",
        skip_rate(&batched) * 100.0,
        narrow_reduction(&batched),
        wall_speedup
    );

    let side = |r: &SweepResult| {
        Json::obj([
            ("wall_seconds", Json::Num(r.wall_s)),
            ("ns_per_command", Json::Num(ns_per_cmd(r))),
            ("commands", Json::Num(r.commands as f64)),
            ("samples_checked", Json::Num(r.samples_checked as f64)),
            ("samples_skipped", Json::Num(r.samples_skipped as f64)),
            ("narrow_checks", Json::Num(r.narrow_checks as f64)),
            ("distance_queries", Json::Num(r.distance_queries as f64)),
            (
                "distance_evals_batched",
                Json::Num(r.distance_evals_batched as f64),
            ),
            ("certificate_spans", Json::Num(r.certificate_spans as f64)),
        ])
    };
    let config = Json::obj([
        ("quick_mode", Json::Bool(quick)),
        ("laps", Json::Num(laps as f64)),
        ("repeats", Json::Num(repeats as f64)),
        ("workflow", Json::Str("fig5_safe".into())),
        ("verdict_cache", Json::Bool(false)),
        ("poll_interval_s", Json::Num(POLL_INTERVAL_S)),
        ("warmup_laps", Json::Num(WARMUP_LAPS as f64)),
    ]);
    let results = Json::obj([
        ("dense", side(&dense)),
        ("adaptive", side(&adaptive)),
        ("batched", side(&batched)),
        ("skip_rate", Json::Num(skip_rate(&batched))),
        (
            "narrow_phase_reduction",
            Json::Num(narrow_reduction(&batched)),
        ),
        (
            "adaptive_wall_speedup",
            Json::Num(dense.wall_s / adaptive.wall_s),
        ),
        ("wall_speedup", Json::Num(wall_speedup)),
    ]);
    rabit_bench::schema::write_artifact("sweep", config, results);
}
