//! The production environment (stage 3): the Hein Lab experiment deck.
//!
//! "We consider the Hein Lab's experiment deck shown in Fig. 1(a) as our
//! production environment. It consists of a lab computer, a six-axis
//! robot arm, and five automation devices." (§II)
//!
//! * [`ProductionDeck`] — UR3e + dosing device, syringe pump, centrifuge,
//!   thermoshaker, hotplate, the vial grid, and the imaging [`Camera`],
//!   with production-grade command latencies and firmware limits;
//! * [`solubility`] — the Fig. 1(b) automated solubility workflow, fully
//!   expanded to device commands;
//! * RABIT builders with and without the Extended Simulator attached,
//!   and the deck's two-stage promotion pipeline
//!   ([`ProductionDeck::pipeline`]): the Hein Lab has no cardboard
//!   intermediate, so workflows promote straight from simulation.
//!
//! # Example
//!
//! ```
//! use rabit_production::{ProductionDeck, solubility};
//! use rabit_tracer::Tracer;
//!
//! let mut deck = ProductionDeck::new();
//! let mut rabit = deck.rabit();
//! let wf = solubility::solubility_workflow(&solubility::SolubilityParams::default());
//! let report = Tracer::guarded(&mut deck.lab, &mut rabit).run(&wf);
//! assert!(report.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berlinguette;
mod camera;
mod deck;
pub mod solubility;
mod substrate;

pub use berlinguette::BerlinguetteLab;
pub use camera::{Camera, RECORD_IMAGE};
pub use deck::{arm_positions, footprints, locations, production_rulebase, ProductionDeck};
