//! Rule mining from command traces.
//!
//! "We mined the dataset to identify rules implied by the sequences of
//! commands. We identified rules that ought to apply to all self-driving
//! labs, e.g., device doors must be opened before a robot arm can enter
//! them, as well as rules that seemed unique to the lab from which the
//! data were collected, e.g., solids must be added to containers before
//! liquids." (§II-A)
//!
//! The miner recovers two rule classes:
//!
//! * **state-guard rules** — "action *G* on device *d* happens only while
//!   toggle *T* is in state *s*", mined by replaying each trace against a
//!   small toggle vocabulary (doors, running state) and measuring the
//!   guard's confidence;
//! * **ordering rules** — "the first solid dose precedes the first liquid
//!   dose into the same container", mined per container per trace.
//!
//! [`mine`] is the batch entry point; it is a thin collect-adapter over
//! the incremental [`OnlineMiner`](crate::OnlineMiner), which consumes
//! one event at a time at memory `O(rules)` and is the path production
//! corpora (100M+ commands) take. The streaming-equivalence suite proves
//! the two mine rule-for-rule identical results.

use rabit_devices::{ActionKind, Command, DeviceId, LabState, StateKey};
use rabit_rulebase::{Rule, RuleId};
use rabit_tracer::Trace;
use std::fmt;

/// A toggle dimension the miner tracks while replaying traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Toggle {
    /// Door open (true) / closed (false).
    Door,
    /// Device action running (true) / stopped (false).
    Running,
}

impl fmt::Display for Toggle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Toggle::Door => f.write_str("door_open"),
            Toggle::Running => f.write_str("running"),
        }
    }
}

/// The guarded-action classes the miner counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GuardedAction {
    /// A robot arm moving inside the device.
    EnterDevice,
    /// The device dosing or starting its action.
    StartRunning,
    /// The device's door being opened.
    OpenDoor,
}

impl fmt::Display for GuardedAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardedAction::EnterDevice => f.write_str("move_robot_inside"),
            GuardedAction::StartRunning => f.write_str("start_running"),
            GuardedAction::OpenDoor => f.write_str("open_door"),
        }
    }
}

/// One mined rule with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum MinedRule {
    /// `action` on a device only happens while `toggle` is `required`.
    StateGuard {
        /// The guarded action class.
        action: GuardedAction,
        /// The guarding toggle.
        toggle: Toggle,
        /// The toggle state the evidence supports.
        required: bool,
        /// Number of observed guarded actions.
        support: usize,
        /// Fraction of observations satisfying the guard.
        confidence: f64,
    },
    /// In each trace, the first solid dose into a container precedes the
    /// first liquid dose into it.
    SolidBeforeLiquid {
        /// Number of (trace, container) pairs with both substances.
        support: usize,
        /// Fraction in the conventional order.
        confidence: f64,
    },
}

/// The interned name of one `(action, toggle, required)` guard. The
/// vocabulary is a tiny closed set, so names are `'static` — scoring and
/// promotion loops compare them without allocating.
pub(crate) const fn guard_name(
    action: GuardedAction,
    toggle: Toggle,
    required: bool,
) -> &'static str {
    use GuardedAction::*;
    use Toggle::*;
    match (action, toggle, required) {
        (EnterDevice, Door, true) => "move_robot_inside_requires_door_open=true",
        (EnterDevice, Door, false) => "move_robot_inside_requires_door_open=false",
        (EnterDevice, Running, true) => "move_robot_inside_requires_running=true",
        (EnterDevice, Running, false) => "move_robot_inside_requires_running=false",
        (StartRunning, Door, true) => "start_running_requires_door_open=true",
        (StartRunning, Door, false) => "start_running_requires_door_open=false",
        (StartRunning, Running, true) => "start_running_requires_running=true",
        (StartRunning, Running, false) => "start_running_requires_running=false",
        (OpenDoor, Door, true) => "open_door_requires_door_open=true",
        (OpenDoor, Door, false) => "open_door_requires_door_open=false",
        (OpenDoor, Running, true) => "open_door_requires_running=true",
        (OpenDoor, Running, false) => "open_door_requires_running=false",
    }
}

impl MinedRule {
    /// The rule's support count.
    pub fn support(&self) -> usize {
        match self {
            MinedRule::StateGuard { support, .. }
            | MinedRule::SolidBeforeLiquid { support, .. } => *support,
        }
    }

    /// The rule's confidence.
    pub fn confidence(&self) -> f64 {
        match self {
            MinedRule::StateGuard { confidence, .. }
            | MinedRule::SolidBeforeLiquid { confidence, .. } => *confidence,
        }
    }

    /// A short name for reports. The name vocabulary is closed (guards
    /// over a fixed action/toggle set plus the ordering rule), so this
    /// returns a borrowed `'static` string — it is called in scoring and
    /// promotion inner loops and must not allocate.
    pub fn name(&self) -> &'static str {
        match self {
            MinedRule::StateGuard {
                action,
                toggle,
                required,
                ..
            } => guard_name(*action, *toggle, *required),
            MinedRule::SolidBeforeLiquid { .. } => "solid_before_liquid",
        }
    }

    /// Converts a mined rule into an enforceable rulebase [`Rule`].
    pub fn to_rule(&self) -> Rule {
        let id = RuleId::Mined(self.name().to_string());
        match self.clone() {
            MinedRule::StateGuard {
                action,
                toggle,
                required,
                ..
            } => Rule::new(
                id,
                format!("mined: {action} only while {toggle} = {required}"),
                move |cmd: &Command, state: &LabState, ctx| {
                    let (device, matches_class): (DeviceId, bool) = match (&cmd.action, action) {
                        (ActionKind::MoveInsideDevice { device }, GuardedAction::EnterDevice) => {
                            (device.clone(), true)
                        }
                        (
                            ActionKind::StartAction { .. } | ActionKind::DoseSolid { .. },
                            GuardedAction::StartRunning,
                        ) => (cmd.actor.clone(), true),
                        (ActionKind::SetDoor { open: true }, GuardedAction::OpenDoor) => {
                            (cmd.actor.clone(), true)
                        }
                        _ => (cmd.actor.clone(), false),
                    };
                    if !matches_class {
                        return None;
                    }
                    let observed = match toggle {
                        Toggle::Door => {
                            if !ctx.catalog.has_door(&device) {
                                return None;
                            }
                            state.get_bool(&device, &StateKey::DoorOpen)
                        }
                        Toggle::Running => state.get_bool(&device, &StateKey::ActionActive),
                    };
                    match observed {
                        Some(s) if s == required => None,
                        _ => Some(format!(
                            "mined guard violated: {action} on {device} while {toggle} ≠ {required}"
                        )),
                    }
                },
            ),
            MinedRule::SolidBeforeLiquid { .. } => Rule::new(
                id,
                "mined: solids are added to containers before liquids",
                |cmd: &Command, state: &LabState, _| {
                    let receiver = match &cmd.action {
                        ActionKind::DoseLiquid { into, .. } => into,
                        _ => return None,
                    };
                    let solid = state
                        .get_number(receiver, &StateKey::SolidMg)
                        .unwrap_or(0.0);
                    (solid <= 0.0)
                        .then(|| format!("mined: liquid into {receiver} before any solid"))
                },
            ),
        }
    }
}

/// Miner configuration.
///
/// Construct with the `with_*` builders or struct-update syntax:
///
/// ```
/// use rabit_rad::MineParams;
///
/// let strict = MineParams::new().with_min_support(50).with_min_confidence(0.98);
/// assert_eq!(strict.min_support, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MineParams {
    /// Minimum observations before a pattern is considered.
    pub min_support: usize,
    /// Minimum confidence for a rule to be emitted.
    pub min_confidence: f64,
}

impl Default for MineParams {
    fn default() -> Self {
        MineParams {
            min_support: 20,
            min_confidence: 0.9,
        }
    }
}

impl MineParams {
    /// The default thresholds (support 20, confidence 0.9) as a builder
    /// starting point.
    pub fn new() -> Self {
        MineParams::default()
    }

    /// Sets the minimum support count.
    pub fn with_min_support(mut self, min_support: usize) -> Self {
        self.min_support = min_support;
        self
    }

    /// Sets the minimum confidence.
    pub fn with_min_confidence(mut self, min_confidence: f64) -> Self {
        self.min_confidence = min_confidence;
        self
    }
}

/// Mines rules from a trace corpus in one batch pass.
///
/// Collect-adapter over [`OnlineMiner`](crate::OnlineMiner): feeds every
/// trace through the incremental miner and snapshots its rule set. For
/// corpora that do not fit in memory, drive the `OnlineMiner` directly
/// from a [`TraceStream`](crate::TraceStream).
pub fn mine(corpus: &[Trace], params: &MineParams) -> Vec<MinedRule> {
    let mut miner = crate::OnlineMiner::new(*params);
    for trace in corpus {
        miner.observe_trace(trace);
    }
    miner.rules()
}

/// The rule names a perfect miner would recover from a conventional
/// (pre-drift) corpus.
pub const GROUND_TRUTH: [&str; 3] = [
    "move_robot_inside_requires_door_open=true",
    "start_running_requires_door_open=false",
    "solid_before_liquid",
];

/// The rule names a perfect miner tracks a *drifted* lab to (see
/// [`RadGenParams::with_drift_at`](crate::RadGenParams::with_drift_at)):
/// entry-through-open-door and solid-before-liquid persist, but the
/// dosing guard flips to door-open.
pub const DRIFTED_TRUTH: [&str; 3] = [
    "move_robot_inside_requires_door_open=true",
    "start_running_requires_door_open=true",
    "solid_before_liquid",
];

/// The ground-truth rule names a perfect miner would recover from a
/// conventional corpus — the default truth for [`score`].
pub fn ground_truth_names() -> Vec<&'static str> {
    GROUND_TRUTH.to_vec()
}

/// Precision/recall of a mined rule set against an explicit ground
/// truth (a slice of rule names, e.g. [`GROUND_TRUTH`] or
/// [`DRIFTED_TRUTH`]).
///
/// Precision of an empty mined set is 1.0 by convention; recall of an
/// empty truth is 0.0.
pub fn score(mined: &[MinedRule], truth: &[&str]) -> (f64, f64) {
    let tp = mined.iter().filter(|m| truth.contains(&m.name())).count();
    let precision = if mined.is_empty() {
        1.0
    } else {
        tp as f64 / mined.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        tp as f64 / truth.len() as f64
    };
    (precision, recall)
}

/// [`score`] against the default conventional-lab truth
/// ([`GROUND_TRUTH`]) — the old single-argument behaviour.
pub fn score_default(mined: &[MinedRule]) -> (f64, f64) {
    score(mined, &GROUND_TRUTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_corpus, RadGenParams};

    fn mined_default() -> Vec<MinedRule> {
        let corpus = generate_corpus(&RadGenParams::default());
        mine(&corpus, &MineParams::default())
    }

    #[test]
    fn miner_recovers_the_door_rules() {
        let rules = mined_default();
        let names: Vec<&str> = rules.iter().map(MinedRule::name).collect();
        assert!(
            names.contains(&"move_robot_inside_requires_door_open=true"),
            "mined: {names:?}"
        );
        assert!(
            names.contains(&"start_running_requires_door_open=false"),
            "mined: {names:?}"
        );
    }

    #[test]
    fn miner_recovers_solid_before_liquid() {
        let rules = mined_default();
        assert!(rules
            .iter()
            .any(|r| matches!(r, MinedRule::SolidBeforeLiquid { .. })));
    }

    #[test]
    fn recall_is_full_and_precision_high_on_conventional_corpus() {
        let (precision, recall) = score_default(&mined_default());
        assert_eq!(recall, 1.0, "all ground-truth rules recovered");
        // Some extra (true-but-uninteresting) guards may be mined, so
        // precision need not be 1.0, but it must be substantial.
        assert!(precision >= 0.5, "precision {precision}");
    }

    #[test]
    fn score_takes_an_explicit_truth() {
        let mined = mined_default();
        // Against a truth that names none of the mined rules, recall
        // and precision both collapse.
        let (p, r) = score(&mined, &["no_such_rule"]);
        assert_eq!(r, 0.0);
        assert_eq!(p, 0.0);
        // The default-truth convenience matches the explicit call.
        assert_eq!(score_default(&mined), score(&mined, &GROUND_TRUTH));
    }

    #[test]
    fn names_are_borrowed_and_stable() {
        let rule = MinedRule::StateGuard {
            action: GuardedAction::StartRunning,
            toggle: Toggle::Door,
            required: false,
            support: 100,
            confidence: 1.0,
        };
        // Two calls return the very same static string — no per-call
        // allocation.
        assert!(std::ptr::eq(rule.name(), rule.name()));
        assert_eq!(rule.name(), "start_running_requires_door_open=false");
        // The name matches the Display-derived format for every guard
        // combination (the interned table cannot drift from the enums).
        for action in [
            GuardedAction::EnterDevice,
            GuardedAction::StartRunning,
            GuardedAction::OpenDoor,
        ] {
            for toggle in [Toggle::Door, Toggle::Running] {
                for required in [true, false] {
                    assert_eq!(
                        guard_name(action, toggle, required),
                        format!("{action}_requires_{toggle}={required}")
                    );
                }
            }
        }
    }

    #[test]
    fn confidence_threshold_filters_noisy_patterns() {
        // With massive noise the door-close convention breaks down at
        // high confidence thresholds.
        let noisy = generate_corpus(&RadGenParams {
            noise_rate: 0.6,
            ..RadGenParams::default()
        });
        let strict = mine(&noisy, &MineParams::new().with_min_confidence(0.98));
        let names: Vec<&str> = strict.iter().map(MinedRule::name).collect();
        // Entering through an open door still holds (enter always follows
        // open in the template)…
        assert!(names.contains(&"move_robot_inside_requires_door_open=true"));
        // …but dosing-with-door-closed is violated in noisy sessions
        // (door left open), so it falls below 98% confidence.
        assert!(
            !names.contains(&"start_running_requires_door_open=false"),
            "mined: {names:?}"
        );
    }

    #[test]
    fn mined_rules_are_enforceable() {
        use rabit_devices::{DeviceState, DeviceType};
        use rabit_rulebase::{DeviceCatalog, DeviceMeta, RuleCtx};

        let rule = MinedRule::StateGuard {
            action: GuardedAction::EnterDevice,
            toggle: Toggle::Door,
            required: true,
            support: 100,
            confidence: 1.0,
        }
        .to_rule();
        let catalog = DeviceCatalog::new()
            .with(DeviceMeta::new("doser", DeviceType::DosingSystem).with_door())
            .with(DeviceMeta::new("arm", DeviceType::RobotArm));
        let ctx = RuleCtx { catalog: &catalog };
        let mut state = LabState::new();
        state.insert("doser", DeviceState::new().with(StateKey::DoorOpen, false));
        let cmd = Command::new(
            "arm",
            ActionKind::MoveInsideDevice {
                device: "doser".into(),
            },
        );
        let v = rule
            .check(&cmd, &state, &ctx)
            .expect("closed door violates the mined rule");
        assert!(v.rule.to_string().starts_with("mined:"));
        state.set(&"doser".into(), StateKey::DoorOpen, true);
        assert!(rule.check(&cmd, &state, &ctx).is_none());
    }

    #[test]
    fn mined_ordering_rule_is_enforceable() {
        use rabit_devices::DeviceState;
        use rabit_rulebase::{DeviceCatalog, RuleCtx};

        let rule = MinedRule::SolidBeforeLiquid {
            support: 50,
            confidence: 1.0,
        }
        .to_rule();
        let catalog = DeviceCatalog::new();
        let ctx = RuleCtx { catalog: &catalog };
        let mut state = LabState::new();
        state.insert("vial", DeviceState::new().with(StateKey::SolidMg, 0.0));
        let dose = Command::new(
            "pump",
            ActionKind::DoseLiquid {
                volume_ml: 1.0,
                into: "vial".into(),
            },
        );
        assert!(rule.check(&dose, &state, &ctx).is_some());
        state.set(&"vial".into(), StateKey::SolidMg, 4.0);
        assert!(rule.check(&dose, &state, &ctx).is_none());
    }

    #[test]
    fn support_threshold_suppresses_small_corpora() {
        let tiny = generate_corpus(&RadGenParams {
            sessions: 2,
            ..RadGenParams::default()
        });
        let rules = mine(&tiny, &MineParams::new().with_min_support(1000));
        assert!(rules.is_empty());
    }

    #[test]
    fn scores_handle_empty_input() {
        let (p, r) = score_default(&[]);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
        let (p, r) = score(&[], &[]);
        assert_eq!(p, 1.0);
        assert_eq!(r, 0.0);
    }
}
