//! Arm parameter presets for the three robots in the paper.
//!
//! * **UR3e** (Universal Robots) — the production arm in the Hein Lab;
//!   DH parameters from the vendor datasheet.
//! * **ViperX-300** (Trossen Robotics) and **Ned2** (Niryo) — the two
//!   educational arms on the low-fidelity testbed. Their DH rows here are
//!   simplified models with the correct overall reach and link structure;
//!   RABIT only relies on reach, capsule geometry, and failure behaviour,
//!   not vendor-exact wrist kinematics.

use crate::arm::ArmModel;
use crate::chain::{DhChain, DhParam, JointConfig, JointLimits};
use rabit_geometry::Pose;
use std::f64::consts::{FRAC_PI_2, PI};

/// The production six-axis Universal Robots UR3e (reach ≈ 500 mm).
pub fn ur3e() -> ArmModel {
    let chain = DhChain::new(
        [
            DhParam::new(0.0, 0.15185, FRAC_PI_2, 0.0),
            DhParam::new(-0.24355, 0.0, 0.0, 0.0),
            DhParam::new(-0.2132, 0.0, 0.0, 0.0),
            DhParam::new(0.0, 0.13105, FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.08535, -FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.0921, 0.0, 0.0),
        ],
        Pose::IDENTITY,
    );
    ArmModel::new(
        "UR3e",
        chain,
        [JointLimits::new(-2.0 * PI, 2.0 * PI); 6],
        [0.045, 0.04, 0.035, 0.03, 0.03, 0.025],
        0.12,
        0.02,
        JointConfig::new([0.0, -1.2, 1.0, -1.4, -FRAC_PI_2, 0.0]),
        JointConfig::new([0.0, -2.4, 2.2, -1.4, -FRAC_PI_2, 0.0]),
    )
}

/// The Universal Robots UR5e (reach ≈ 850 mm): the central transfer arm
/// of the Berlinguette Lab's multi-station platform (paper §V-B).
pub fn ur5e() -> ArmModel {
    let chain = DhChain::new(
        [
            DhParam::new(0.0, 0.1625, FRAC_PI_2, 0.0),
            DhParam::new(-0.425, 0.0, 0.0, 0.0),
            DhParam::new(-0.3922, 0.0, 0.0, 0.0),
            DhParam::new(0.0, 0.1333, FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.0997, -FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.0996, 0.0, 0.0),
        ],
        Pose::IDENTITY,
    );
    ArmModel::new(
        "UR5e",
        chain,
        [JointLimits::new(-2.0 * PI, 2.0 * PI); 6],
        [0.06, 0.055, 0.045, 0.04, 0.035, 0.03],
        0.14,
        0.025,
        JointConfig::new([0.0, -1.2, 1.0, -1.4, -FRAC_PI_2, 0.0]),
        JointConfig::new([0.0, -2.4, 2.2, -1.4, -FRAC_PI_2, 0.0]),
    )
}

/// The Trossen Robotics ViperX-300 testbed arm (reach ≈ 750 mm).
///
/// Noted failure behaviour (paper §IV, category 4): when it cannot compute
/// a trajectory it *silently ignores* the command — modelled by the
/// testbed's arm wrapper.
pub fn viperx300() -> ArmModel {
    let chain = DhChain::new(
        [
            DhParam::new(0.0, 0.127, FRAC_PI_2, 0.0),
            DhParam::new(0.306, 0.0, 0.0, 0.0),
            DhParam::new(0.30, 0.0, 0.0, 0.0),
            DhParam::new(0.0, 0.0, FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.07, -FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.045, 0.0, 0.0),
        ],
        Pose::IDENTITY,
    );
    ArmModel::new(
        "ViperX",
        chain,
        [
            JointLimits::new(-PI, PI),
            JointLimits::new(-1.85, 1.25),
            JointLimits::new(-1.76, 1.6),
            JointLimits::new(-PI, PI),
            JointLimits::new(-1.86, 2.0),
            JointLimits::new(-PI, PI),
        ],
        [0.05, 0.04, 0.035, 0.03, 0.025, 0.02],
        0.10,
        0.025,
        JointConfig::new([0.0, 0.8, -0.9, 0.0, 0.1, 0.0]),
        JointConfig::new([0.0, 1.1, -1.7, 0.0, 0.6, 0.0]),
    )
}

/// The Niryo Ned2 testbed arm (reach ≈ 440 mm).
///
/// Noted failure behaviour (paper §IV, category 4): when it cannot compute
/// a trajectory it *throws an exception and halts immediately* — modelled
/// by the testbed's arm wrapper.
pub fn ned2() -> ArmModel {
    let chain = DhChain::new(
        [
            DhParam::new(0.0, 0.1065, FRAC_PI_2, 0.0),
            DhParam::new(0.221, 0.0, 0.0, 0.0),
            DhParam::new(0.18, 0.0, 0.0, 0.0),
            DhParam::new(0.0, 0.0, FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.055, -FRAC_PI_2, 0.0),
            DhParam::new(0.0, 0.04, 0.0, 0.0),
        ],
        Pose::IDENTITY,
    );
    ArmModel::new(
        "Ned2",
        chain,
        [
            JointLimits::new(-2.96, 2.96),
            JointLimits::new(-1.83, 0.61),
            JointLimits::new(-1.34, 1.57),
            JointLimits::new(-2.09, 2.09),
            JointLimits::new(-1.92, 1.92),
            JointLimits::new(-2.53, 2.53),
        ],
        [0.045, 0.035, 0.03, 0.025, 0.025, 0.02],
        0.08,
        0.02,
        JointConfig::new([0.0, 0.5, -0.8, 0.0, 0.3, 0.0]),
        JointConfig::new([0.0, 0.55, -1.3, 0.0, 0.75, 0.0]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_match_vendor_order_of_magnitude() {
        // `max_reach` is a provable upper bound (sum of row norms), so it
        // must dominate the datasheet reach without wildly exceeding it:
        // UR3e 500 mm, UR5e 850 mm, ViperX 750 mm, Ned2 440 mm.
        for (arm, datasheet) in [
            (ur3e(), 0.5),
            (ur5e(), 0.85),
            (viperx300(), 0.75),
            (ned2(), 0.44),
        ] {
            let r = arm.chain().max_reach();
            assert!(
                r >= datasheet,
                "{}: bound {r:.3} below datasheet {datasheet}",
                arm.name()
            );
            assert!(
                r <= datasheet * 2.0,
                "{}: bound {r:.3} implausibly large",
                arm.name()
            );
        }
    }

    #[test]
    fn home_and_sleep_are_within_limits() {
        for arm in [ur3e(), ur5e(), viperx300(), ned2()] {
            assert!(
                arm.within_limits(&arm.home_configuration()),
                "{} home",
                arm.name()
            );
            assert!(
                arm.within_limits(&arm.sleep_configuration()),
                "{} sleep",
                arm.name()
            );
        }
    }

    #[test]
    fn sleep_is_more_compact_than_home() {
        // Stowed arms should tuck the tool closer to the base than the
        // ready pose — that's what makes the cuboid sleep volume small.
        for arm in [ur3e(), viperx300(), ned2()] {
            let base = arm.chain().base().translation;
            let home_d = arm.tool_position(&arm.home_configuration()).distance(base);
            let sleep_d = arm.tool_position(&arm.sleep_configuration()).distance(base);
            assert!(
                sleep_d < home_d + 0.05,
                "{}: sleep {sleep_d:.3} should not extend beyond home {home_d:.3}",
                arm.name()
            );
        }
    }

    #[test]
    fn arms_stay_above_severely_negative_z_at_home() {
        for arm in [ur3e(), viperx300(), ned2()] {
            let low = arm.lowest_point(&arm.home_configuration(), None);
            assert!(low > -0.25, "{} dips to {low}", arm.name());
        }
    }

    #[test]
    fn names_are_the_paper_names() {
        assert_eq!(ur3e().name(), "UR3e");
        assert_eq!(ur5e().name(), "UR5e");
        assert_eq!(viperx300().name(), "ViperX");
        assert_eq!(ned2().name(), "Ned2");
    }

    #[test]
    fn ur5e_outreaches_ur3e() {
        assert!(ur5e().max_reach() > ur3e().max_reach());
    }
}
