//! The study runner: executes each catalogued bug against a RABIT
//! configuration and scores detection against the damage oracle.

use crate::catalog::{catalog, Bug, BugCategory};
use rabit_core::{DamageEvent, Severity};
use rabit_testbed::{workflows, RabitStage, Testbed};
use rabit_tracer::Tracer;

/// Outcome of one bug under one configuration.
#[derive(Debug)]
pub struct BugOutcome {
    /// The bug's id.
    pub id: &'static str,
    /// §IV category.
    pub category: BugCategory,
    /// Table V severity.
    pub severity: Severity,
    /// Whether RABIT raised an alert (device faults do not count — the
    /// paper's detection rate measures RABIT's own checks).
    pub detected: bool,
    /// The alert text, if any (including device faults).
    pub alert: Option<String>,
    /// Whether the alert was a device fault rather than a RABIT check.
    pub device_fault: bool,
    /// Physical damage that occurred during the (guarded) run.
    pub damage: Vec<DamageEvent>,
}

/// Aggregated study results for one configuration.
#[derive(Debug)]
pub struct StudyResult {
    /// The configuration evaluated.
    pub stage: RabitStage,
    /// Per-bug outcomes, in catalog order.
    pub outcomes: Vec<BugOutcome>,
}

impl StudyResult {
    /// Number of detected bugs.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Detection rate over the 16 bugs.
    pub fn detection_rate(&self) -> f64 {
        self.detected() as f64 / self.outcomes.len() as f64
    }

    /// `(total, detected)` per severity class — one row of Table V.
    pub fn severity_row(&self, severity: Severity) -> (usize, usize) {
        let total = self
            .outcomes
            .iter()
            .filter(|o| o.severity == severity)
            .count();
        let detected = self
            .outcomes
            .iter()
            .filter(|o| o.severity == severity && o.detected)
            .count();
        (total, detected)
    }
}

/// Runs one bug on a fresh testbed under `stage`.
pub fn run_bug(bug: &Bug, stage: RabitStage) -> BugOutcome {
    let mut tb = Testbed::new();
    let wf = bug.buggy_workflow(&tb.locations);
    let mut rabit = tb.rabit(stage);
    let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
    let (detected, device_fault) = match &report.alert {
        Some(alert) => (alert.is_rabit_detection(), !alert.is_rabit_detection()),
        None => (false, false),
    };
    BugOutcome {
        id: bug.id,
        category: bug.category,
        severity: bug.severity,
        detected,
        alert: report.alert.as_ref().map(ToString::to_string),
        device_fault,
        damage: tb.lab.damage_log().to_vec(),
    }
}

/// Runs the whole 16-bug study under one configuration.
pub fn run_study(stage: RabitStage) -> StudyResult {
    let outcomes = catalog().iter().map(|bug| run_bug(bug, stage)).collect();
    StudyResult { stage, outcomes }
}

/// Runs the study with every bug on its own thread (each gets a fresh
/// testbed, so the runs are fully independent). Results are identical to
/// [`run_study`]; wall-clock time is not — this is the regression-suite
/// fast path a lab runs before each deployment.
pub fn run_study_parallel(stage: RabitStage) -> StudyResult {
    let bugs = catalog();
    let mut outcomes: Vec<Option<BugOutcome>> = Vec::new();
    outcomes.resize_with(bugs.len(), || None);
    std::thread::scope(|scope| {
        for (slot, bug) in outcomes.iter_mut().zip(bugs.iter()) {
            scope.spawn(move || {
                *slot = Some(run_bug(bug, stage));
            });
        }
    });
    StudyResult {
        stage,
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("worker filled slot"))
            .collect(),
    }
}

/// Runs the safe workflows under `stage` and returns the number of false
/// positives (alerts raised on safe behaviour). The paper: "throughout
/// testing, RABIT never produced any false positives."
pub fn false_positives(stage: RabitStage) -> usize {
    let mut count = 0;
    for builder in [workflows::fig5_safe_workflow, workflows::device_tour] {
        let mut tb = Testbed::new();
        let wf = builder(&tb.locations);
        let mut rabit = tb.rabit(stage);
        let report = Tracer::guarded(&mut tb.lab, &mut rabit).run(&wf);
        if report.alert.is_some() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DetectedFrom;

    #[test]
    fn baseline_detects_8_of_16() {
        let result = run_study(RabitStage::Baseline);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from.expected_at(RabitStage::Baseline),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 8);
        assert!((result.detection_rate() - 0.50).abs() < 1e-9);
    }

    #[test]
    fn modified_detects_12_of_16() {
        let result = run_study(RabitStage::Modified);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from.expected_at(RabitStage::Modified),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 12);
        assert!((result.detection_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn simulator_detects_13_of_16() {
        let result = run_study(RabitStage::ModifiedWithSimulator);
        for (o, bug) in result.outcomes.iter().zip(catalog()) {
            assert_eq!(
                o.detected,
                bug.detected_from
                    .expected_at(RabitStage::ModifiedWithSimulator),
                "{}: alert {:?}, damage {:?}",
                o.id,
                o.alert,
                o.damage
            );
        }
        assert_eq!(result.detected(), 13);
        assert!((result.detection_rate() - 0.8125).abs() < 1e-9);
    }

    #[test]
    fn table_v_rows_reproduce() {
        // Table V reports the modified configuration.
        let result = run_study(RabitStage::Modified);
        assert_eq!(result.severity_row(Severity::Low), (3, 1));
        assert_eq!(result.severity_row(Severity::MediumLow), (1, 1));
        assert_eq!(result.severity_row(Severity::MediumHigh), (6, 4));
        assert_eq!(result.severity_row(Severity::High), (6, 6));
    }

    #[test]
    fn parallel_study_matches_serial() {
        let serial = run_study(RabitStage::Modified);
        let parallel = run_study_parallel(RabitStage::Modified);
        assert_eq!(parallel.detected(), serial.detected());
        for (a, b) in serial.outcomes.iter().zip(parallel.outcomes.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.detected, b.detected);
            assert_eq!(a.alert, b.alert);
            assert_eq!(a.damage.len(), b.damage.len());
        }
    }

    #[test]
    fn no_false_positives_in_any_configuration() {
        for stage in [
            RabitStage::Baseline,
            RabitStage::Modified,
            RabitStage::ModifiedWithSimulator,
        ] {
            assert_eq!(false_positives(stage), 0, "false positives at {stage:?}");
        }
    }

    #[test]
    fn detected_bugs_cause_no_damage_when_guarded() {
        // RABIT stops the experiment BEFORE the unsafe command executes,
        // so a detected bug must leave the lab unharmed — except for
        // malfunction-style detections, which fire after execution.
        let result = run_study(RabitStage::Modified);
        for o in &result.outcomes {
            if o.detected {
                assert!(
                    o.damage.is_empty(),
                    "{} was detected yet caused damage: {:?}",
                    o.id,
                    o.damage
                );
            }
        }
    }

    #[test]
    fn undetected_physical_bugs_do_damage() {
        // The undetected residue either damages the lab (Bug B/C/D
        // classes) or halts on a device fault (Ned2).
        let result = run_study(RabitStage::Baseline);
        for o in &result.outcomes {
            if o.detected || o.device_fault {
                continue;
            }
            let expects_damage = !matches!(o.id, "concurrent_motion");
            if expects_damage {
                assert!(
                    !o.damage.is_empty(),
                    "{} went undetected but caused no damage either",
                    o.id
                );
            }
        }
    }

    #[test]
    fn ned2_bug_is_a_device_fault() {
        let bug = catalog()
            .into_iter()
            .find(|b| b.id == "ned2_infeasible_high")
            .unwrap();
        let outcome = run_bug(&bug, RabitStage::Baseline);
        assert!(!outcome.detected);
        assert!(
            outcome.device_fault,
            "Ned2 throws and halts: {:?}",
            outcome.alert
        );
        assert!(outcome.damage.is_empty(), "the exception prevented damage");
        assert_eq!(bug.detected_from, DetectedFrom::Never);
    }

    #[test]
    fn silent_skip_is_caught_only_by_the_simulator() {
        let bug = catalog()
            .into_iter()
            .find(|b| b.id == "silent_skip_path")
            .unwrap();
        let base = run_bug(&bug, RabitStage::Modified);
        assert!(!base.detected, "{:?}", base.alert);
        assert!(
            base.damage.iter().any(|d| d.description.contains("grid")),
            "the skipped waypoint must cause the grid collision: {:?}",
            base.damage
        );
        let with_sim = run_bug(&bug, RabitStage::ModifiedWithSimulator);
        assert!(with_sim.detected, "{:?}", with_sim.alert);
        assert!(with_sim.damage.is_empty());
    }
}
